#!/usr/bin/env bash
# CI entry point: tiered gates with per-stage timing.
#
# Usage: ./ci.sh [--quick]
#
#   --quick   format + build + tier-1 tests + at-serve protocol unit
#             tests (the inner-loop subset); CI proper runs every stage.
#
# Stages:
#   fmt          — cargo fmt --check over the whole workspace
#   build        — release build of every crate
#   tier1        — the full test suite (ROADMAP.md's tier-1 bar)
#   robustness   — seeded fault-injection scenarios + golden spectra +
#                  property tests (tests/faults.rs, tests/golden_spectrum.rs;
#                  the scenario seed 4242 is pinned inside the tests so the
#                  tier is bit-reproducible)
#   lint         — clippy -D warnings on every workspace crate, including
#                  at-dsp, at-linalg, and at-obs
#   serve        — the networked location service: wire-protocol unit +
#                  property tests (decoder totality, bit-exact round trips)
#                  and the loopback server tests (parity, shedding,
#                  deadlines, drain), then loadgen --smoke — a seconds-scale
#                  sustained/overload/mixed/drain run that fails on
#                  throughput collapse, inert admission control, broken
#                  keyed parity, a resident gauge over the session cap, or
#                  dropped in-flight requests (full runs refresh
#                  BENCH_SERVE.json)
#   serve-sessions — the multi-process ingestion tier: six AP connections +
#                  concurrent app readers (tests/serve_sessions.rs: keyed
#                  parity, idle/cap eviction, silent-AP quorum errors, the
#                  session-store golden fixture) plus the barrier-driven
#                  store interleaving tests (no torn spectra)
#   bench-smoke  — perf_report --smoke: the observed per-stage latency
#                  budget (detect/spectrum/fusion, from the at-obs metrics
#                  the instrumented pipeline records) must stay within 3x of
#                  the committed BENCH_PERF.json baseline
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

STAGE_NAMES=()
STAGE_SECS=()

# stage <name> <command...> — run one gate, timed; any failure aborts.
stage() {
    local name="$1"
    shift
    echo "== [$name] $* =="
    local t0 t1
    t0=$SECONDS
    "$@"
    t1=$SECONDS
    STAGE_NAMES+=("$name")
    STAGE_SECS+=("$((t1 - t0))")
}

robustness() {
    cargo test -q --test faults
    cargo test -q --test golden_spectrum
    cargo test -q -p at-core --test proptests
}

serve() {
    cargo test -q -p at-serve
    cargo run --release -q -p at-bench --bin loadgen -- --smoke
}

serve_sessions() {
    cargo test -q --test serve_sessions
    cargo test -q -p at-serve --test store_interleave
}

stage fmt cargo fmt --all --check
stage build cargo build --release
stage tier1 cargo test -q

if [[ $QUICK -eq 1 ]]; then
    # The wire protocol is the one subsystem whose bugs tier-1 cannot see
    # (the facade tests drive it through a healthy path only), so its
    # unit + property tests ride in the inner loop too. Cheap: no server
    # sockets, just encode/decode — including the keyed-frame
    # version-gating properties.
    stage proto cargo test -q -p at-serve --lib
    stage proto-props cargo test -q -p at-serve --test proto_proptests
else
    stage robustness robustness
    stage serve serve
    stage serve-sessions serve_sessions
    # Whole workspace except the vendored registry stand-ins (vendor/*),
    # which mirror upstream APIs verbatim and are not held to our lints.
    stage lint cargo clippy -q --workspace --exclude rand --exclude proptest \
        --exclude criterion --all-targets -- -D warnings
    stage bench-smoke cargo run --release -q -p at-bench --bin perf_report -- --smoke
fi

echo
echo "ci.sh: all gates passed$([[ $QUICK -eq 1 ]] && echo ' (--quick subset)')"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-12s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
done
