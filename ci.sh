#!/usr/bin/env bash
# CI entry point: tiered gates with per-stage timing.
#
# Usage: ./ci.sh [--quick] [--stage <name>]
#
#   --quick         format + build + tier-1 tests + at-serve protocol and
#                   codec unit tests (the inner-loop subset); CI proper
#                   runs every stage.
#   --stage <name>  run exactly one gate in isolation (any name from the
#                   list below, including the quick-only ones) — the
#                   debug loop for a single red gate.
#
# Stages:
#   fmt          — cargo fmt --check over the whole workspace
#   build        — release build of every crate
#   tier1        — the full test suite (ROADMAP.md's tier-1 bar)
#   proto        — at-serve wire-protocol unit tests (--quick and --stage)
#   proto-props  — wire-protocol property tests: decoder totality,
#                  bit-exact round trips, version gating
#   codec        — the protocol-v3 spectrum codec: quantize/delta/varint
#                  unit tests plus the codec property tests (decompressor
#                  totality on arbitrary bytes, lossless bit-exactness,
#                  quantization error bounds, compressed-frame version
#                  gating)
#   replay       — the capture-and-replay journal: reader property tests
#                  (totality on arbitrary bytes, truncation at every
#                  offset, bit-flip rejection), the record→replay
#                  end-to-end tier (tests/replay_end_to_end.rs), and
#                  replay_check --smoke, which replays the committed
#                  golden journals (tests/fixtures/replay_office/ and the
#                  epoch-spanning replay_reconfig/) through a fresh
#                  pipeline and fails on any bit divergence from the
#                  recorded fixes (regenerate an intentionally changed
#                  baseline with UPDATE_GOLDEN=1; missing fixtures exit 2)
#   topology     — the topology-epoch machinery: at-config unit tests
#                  (canonical bytes, fingerprints, op application), the
#                  Reconfigure/TopologyInfo property tests (decoder
#                  totality, frame and op round trips, arbitrary op
#                  sequences never panicking config or store), and the
#                  live remove/move/re-add e2e tier under a concurrent
#                  storm (tests/topology.rs: surviving-quorum fixes
#                  bit-exact vs the in-process server, typed refusals
#                  for bad ops / departed ids / cold joiners)
#   robustness   — seeded fault-injection scenarios + golden spectra +
#                  property tests (tests/faults.rs, tests/golden_spectrum.rs;
#                  the scenario seed 4242 is pinned inside the tests so the
#                  tier is bit-reproducible)
#   lint         — clippy -D warnings on every workspace crate, including
#                  at-dsp, at-linalg, and at-obs
#   serve        — the networked location service: wire-protocol unit +
#                  property tests (decoder totality, bit-exact round trips)
#                  and the loopback server tests (parity, shedding,
#                  deadlines, drain), then loadgen --smoke — a seconds-scale
#                  sustained/overload/mixed/drain run that fails on
#                  throughput collapse, inert admission control, broken
#                  keyed parity, a resident gauge over the session cap,
#                  dropped in-flight requests, a quantized uplink over the
#                  0.15x byte budget, a median compressed fix ≥ 1 mm from
#                  the raw path, or a lossless replay that is not bit-exact
#                  (full runs refresh BENCH_SERVE.json)
#   serve-sessions — the multi-process ingestion tier: six AP connections +
#                  concurrent app readers (tests/serve_sessions.rs: keyed
#                  parity, idle/cap eviction, silent-AP quorum errors, the
#                  session-store golden fixture) plus the barrier-driven
#                  store interleaving tests (no torn spectra)
#   bench-smoke  — perf_report --smoke: the observed per-stage latency
#                  budget (detect/spectrum/fusion, from the at-obs metrics
#                  the instrumented pipeline records) must stay within 3x of
#                  the committed BENCH_PERF.json baseline
set -euo pipefail
cd "$(dirname "$0")"

# The single source of truth for stage names: usage, the unknown-stage
# error, and tests/ci_sh.rs all key off this list (run_stage's dispatch
# must cover exactly these names).
STAGES=(fmt build tier1 proto proto-props codec replay topology robustness serve serve-sessions lint bench-smoke)

usage() {
    echo "usage: ./ci.sh [--quick] [--stage <name>]" >&2
    echo "valid stages: ${STAGES[*]}" >&2
}

QUICK=0
ONLY=""
while [[ $# -gt 0 ]]; do
    case "$1" in
    --quick) QUICK=1 ;;
    --stage)
        shift
        if [[ $# -eq 0 ]]; then
            usage
            exit 2
        fi
        ONLY="$1"
        ;;
    *)
        usage
        exit 2
        ;;
    esac
    shift
done

STAGE_NAMES=()
STAGE_SECS=()

# stage <name> <command...> — run one gate, timed; any failure aborts.
stage() {
    local name="$1"
    shift
    echo "== [$name] $* =="
    local t0 t1
    t0=$SECONDS
    "$@"
    t1=$SECONDS
    STAGE_NAMES+=("$name")
    STAGE_SECS+=("$((t1 - t0))")
}

robustness() {
    cargo test -q --test faults
    cargo test -q --test golden_spectrum
    cargo test -q -p at-core --test proptests
}

codec_gate() {
    cargo test -q -p at-serve --lib codec::
    cargo test -q -p at-serve --test codec_proptests
}

replay_gate() {
    cargo test -q -p at-replay --test journal_proptests
    cargo test -q --test replay_end_to_end
    cargo run --release -q -p at-bench --bin replay_check -- --smoke
}

topology_gate() {
    cargo test -q -p at-config
    cargo test -q -p at-serve --test topology_proptests
    cargo test -q --test topology
}

serve() {
    cargo test -q -p at-serve
    cargo run --release -q -p at-bench --bin loadgen -- --smoke
}

serve_sessions() {
    cargo test -q --test serve_sessions
    cargo test -q -p at-serve --test store_interleave
}

lint() {
    # Whole workspace except the vendored registry stand-ins (vendor/*),
    # which mirror upstream APIs verbatim and are not held to our lints.
    cargo clippy -q --workspace --exclude rand --exclude proptest \
        --exclude criterion --all-targets -- -D warnings
}

# run_stage <name> — dispatch one gate by its public name.
run_stage() {
    case "$1" in
    fmt) stage fmt cargo fmt --all --check ;;
    build) stage build cargo build --release ;;
    tier1) stage tier1 cargo test -q ;;
    proto) stage proto cargo test -q -p at-serve --lib ;;
    proto-props) stage proto-props cargo test -q -p at-serve --test proto_proptests ;;
    codec) stage codec codec_gate ;;
    replay) stage replay replay_gate ;;
    topology) stage topology topology_gate ;;
    robustness) stage robustness robustness ;;
    serve) stage serve serve ;;
    serve-sessions) stage serve-sessions serve_sessions ;;
    lint) stage lint lint ;;
    bench-smoke) stage bench-smoke cargo run --release -q -p at-bench --bin perf_report -- --smoke ;;
    *)
        echo "ci.sh: unknown stage '$1'" >&2
        usage
        exit 2
        ;;
    esac
}

if [[ -n $ONLY ]]; then
    run_stage "$ONLY"
elif [[ $QUICK -eq 1 ]]; then
    run_stage fmt
    run_stage build
    run_stage tier1
    # The wire protocol and its codec are the one subsystem whose bugs
    # tier-1 cannot see (the facade tests drive them through a healthy
    # path only), so their unit + property tests ride in the inner loop
    # too. Cheap: no server sockets, just encode/decode — including the
    # keyed-frame and compressed-frame version-gating properties.
    run_stage proto
    run_stage proto-props
    run_stage codec
    # Bit-exact replay of the committed golden journal rides in the inner
    # loop too: it is the one gate that notices a *numerical* behavior
    # change anywhere in the MUSIC/fusion/session path, and tier-1 just
    # ran the builds it needs.
    run_stage replay
    # Topology epochs reconfigure a *live* server; the gate is cheap
    # (synthetic spectra, loopback) and the epoch/fingerprint machinery
    # cross-cuts config, store, wire, and replay — inner loop material.
    run_stage topology
else
    run_stage fmt
    run_stage build
    run_stage tier1
    run_stage codec
    run_stage replay
    run_stage topology
    run_stage robustness
    run_stage serve
    run_stage serve-sessions
    run_stage lint
    run_stage bench-smoke
fi

echo
echo "ci.sh: all gates passed$([[ $QUICK -eq 1 ]] && echo ' (--quick subset)')$([[ -n $ONLY ]] && echo " (--stage $ONLY)")"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-14s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
done
