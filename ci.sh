#!/usr/bin/env bash
# CI entry point: tier-1 verify, the robustness tier, and lint gates.
#
# Usage: ./ci.sh
#
# Stages:
#   1. tier-1 verify   — release build + full test suite (ROADMAP.md)
#   2. robustness tier — seeded fault-injection scenarios + golden spectra
#                        (tests/faults.rs, tests/golden_spectrum.rs; the
#                        scenario seed 4242 is pinned inside the tests so
#                        the tier is bit-reproducible)
#   3. clippy          — -D warnings on every crate this layer touches
set -euo pipefail
cd "$(dirname "$0")"

echo "== [1/3] tier-1 verify: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== [2/3] robustness tier (fixed seed 4242) =="
cargo test -q --test faults
cargo test -q --test golden_spectrum
cargo test -q -p at-core --test proptests

echo "== [3/3] clippy -D warnings on touched crates =="
cargo clippy -q -p at-core -p at-channel -p at-frontend -p at-testbed \
    -p at-bench -p arraytrack --all-targets -- -D warnings

echo "ci.sh: all gates passed"
