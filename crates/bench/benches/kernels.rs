//! Criterion microbenchmarks for ArrayTrack's hot kernels.
//!
//! The paper's latency budget (§4.4) hinges on the server-side processing
//! time `Tp`; these benches pin down where it goes: eigendecomposition,
//! MUSIC spectrum scan, multi-AP grid synthesis, packet detection, and the
//! channel simulator itself.

use at_channel::geometry::pt;
use at_channel::{AntennaArray, ChannelSim, Transmitter};
use at_core::music::{music_analysis_from_rxx, MusicConfig};
use at_core::synthesis::{localize, ApObservation, ApPose, SearchRegion};
use at_core::AoaSpectrum;
use at_dsp::detector::MatchedFilter;
use at_dsp::preamble::{Preamble, SAMPLE_RATE_HZ};
use at_dsp::SnapshotBlock;
use at_linalg::{eigh, CMatrix, CVector, Complex64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A deterministic 8×8 Hermitian PSD matrix shaped like a real Rxx.
fn sample_rxx() -> CMatrix {
    let mut r = CMatrix::zeros(8, 8);
    for k in 0..3 {
        let theta = 0.7 + k as f64;
        let v = CVector::from_fn(8, |m| {
            Complex64::cis(m as f64 * std::f64::consts::PI * theta.cos())
        });
        r.add_outer_assign(&v, 1.0 / (k + 1) as f64);
    }
    for i in 0..8 {
        r[(i, i)] += Complex64::real(0.01);
    }
    r
}

/// A deterministic snapshot block for one source.
fn sample_block() -> SnapshotBlock {
    SnapshotBlock::new(
        (0..8)
            .map(|m| {
                (0..10)
                    .map(|t| Complex64::cis(m as f64 * 1.1 + t as f64 * 0.3))
                    .collect()
            })
            .collect(),
    )
}

fn bench_eig(c: &mut Criterion) {
    let rxx = sample_rxx();
    c.bench_function("eigh_8x8_hermitian", |b| {
        b.iter(|| eigh(black_box(&rxx)).unwrap())
    });
}

fn bench_music(c: &mut Criterion) {
    let rxx = sample_rxx();
    let cfg = MusicConfig::default();
    c.bench_function("music_spectrum_720_bins", |b| {
        b.iter(|| music_analysis_from_rxx(black_box(&rxx), &cfg))
    });
}

fn bench_correlation_matrix(c: &mut Criterion) {
    let block = sample_block();
    c.bench_function("correlation_matrix_8x10", |b| {
        b.iter(|| black_box(&block).correlation_matrix())
    });
}

/// The six-AP, 20×10 m, 10 cm-grid synthesis fixture shared by the
/// exhaustive and engine benches.
fn synthesis_fixture() -> (Vec<ApObservation>, SearchRegion) {
    let spectrum = AoaSpectrum::from_fn(720, |t| (-((t - 1.0) / 0.1).powi(2)).exp() + 1e-4);
    let observations: Vec<ApObservation> = (0..6)
        .map(|i| ApObservation {
            pose: ApPose {
                center: pt(i as f64 * 4.0, if i % 2 == 0 { 0.0 } else { 10.0 }),
                axis_angle: i as f64 * 0.5,
            },
            spectrum: spectrum.clone(),
        })
        .collect();
    let region = SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0));
    (observations, region)
}

fn bench_synthesis(c: &mut Criterion) {
    // Six APs around a 20×10 m region, 10 cm grid (the paper's setting).
    let (observations, region) = synthesis_fixture();
    c.bench_function("synthesis_grid_10cm_6aps", |b| {
        b.iter(|| localize(black_box(&observations), region))
    });
}

fn bench_engine(c: &mut Criterion) {
    use at_core::LocalizationEngine;
    let (observations, region) = synthesis_fixture();
    let poses: Vec<ApPose> = observations.iter().map(|o| o.pose).collect();
    c.bench_function("engine_build_10cm_6aps", |b| {
        b.iter(|| LocalizationEngine::new(black_box(&poses), region, 720))
    });
    let engine = LocalizationEngine::new(&poses, region, 720);
    let obs: Vec<(usize, &AoaSpectrum)> = observations
        .iter()
        .enumerate()
        .map(|(i, o)| (i, &o.spectrum))
        .collect();
    c.bench_function("engine_localize_10cm_6aps", |b| {
        b.iter(|| black_box(&engine).localize(black_box(&obs)))
    });
}

fn bench_planar_kernels(c: &mut Criterion) {
    use at_core::steering::SteeringTable;
    use at_core::{LocalizationEngine, LocalizeScratch};
    use at_linalg::NoiseSubspace;

    // The SoA MUSIC sweep: aᴴ·E_N·E_Nᴴ·a over split re/im slabs for all
    // 720 steering vectors — the inner loop of every spectrum scan.
    let rxx = sample_rxx();
    let eig = eigh(&rxx).unwrap();
    let noise = NoiseSubspace::from_eigen(&eig, 3);
    let table = SteeringTable::new(8, 720);
    c.bench_function("planar_music_sweep_720_bins", |b| {
        b.iter(|| black_box(&table).scan_projection(black_box(&noise)))
    });

    // The warm query with an explicit scratch arena: after the first
    // iteration every buffer has grown to shape, so this is the
    // steady-state allocation-free path the serving layer runs.
    let (observations, region) = synthesis_fixture();
    let poses: Vec<ApPose> = observations.iter().map(|o| o.pose).collect();
    let engine = LocalizationEngine::new(&poses, region, 720);
    let obs: Vec<(usize, &AoaSpectrum)> = observations
        .iter()
        .enumerate()
        .map(|(i, o)| (i, &o.spectrum))
        .collect();
    let mut scratch = LocalizeScratch::new();
    c.bench_function("engine_localize_warm_scratch", |b| {
        b.iter(|| black_box(&engine).localize_with(black_box(&obs), &mut scratch))
    });
}

fn bench_estimators(c: &mut Criterion) {
    use at_core::estimators::{bartlett_spectrum_from_rxx, mvdr_spectrum_from_rxx};
    let rxx = sample_rxx();
    c.bench_function("bartlett_spectrum_720_bins", |b| {
        b.iter(|| bartlett_spectrum_from_rxx(black_box(&rxx), 720))
    });
    c.bench_function("mvdr_spectrum_720_bins", |b| {
        b.iter(|| mvdr_spectrum_from_rxx(black_box(&rxx), 720))
    });
}

fn bench_tracker(c: &mut Criterion) {
    use at_core::tracking::{Tracker, TrackerConfig};
    c.bench_function("kalman_update", |b| {
        let mut t = Tracker::new(TrackerConfig::default());
        t.update(pt(0.0, 0.0), 0.1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.update(pt((i % 100) as f64 * 0.01, 0.0), 0.1)
        })
    });
}

fn bench_detector(c: &mut Criterion) {
    let p = Preamble::new();
    let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ).with_threshold(0.15);
    let mut rx = vec![Complex64::ZERO; 200];
    rx.extend(p.reference(SAMPLE_RATE_HZ));
    rx.extend(vec![Complex64::ZERO; 200]);
    c.bench_function("matched_filter_1040_samples", |b| {
        b.iter(|| mf.detect(black_box(&rx)))
    });
}

fn bench_channel(c: &mut Criterion) {
    let fp = at_testbed::office::office_floorplan();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(pt(6.0, 23.0), 0.55, 8).with_offrow_element();
    let tx = Transmitter::at(pt(20.0, 12.0));
    c.bench_function("channel_trace_office", |b| {
        b.iter(|| sim.paths(black_box(&tx), &array))
    });
    let preamble = Preamble::new();
    c.bench_function("channel_receive_10_snapshots", |b| {
        b.iter(|| {
            sim.receive(
                black_box(&tx),
                &array,
                |t| preamble.eval(t),
                at_dsp::preamble::LTS0_START_S,
                10.0 / SAMPLE_RATE_HZ,
                SAMPLE_RATE_HZ,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_eig, bench_music, bench_correlation_matrix,
              bench_synthesis, bench_engine, bench_planar_kernels,
              bench_detector, bench_channel, bench_estimators, bench_tracker
}
criterion_main!(benches);
