//! Binary wrapper for the `ablation` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::ablation::run()
}
