//! Runs the complete evaluation: every reproduced table and figure, in
//! paper order. Individual binaries exist for each (see DESIGN.md §3).
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let t0 = Instant::now();
    #[allow(clippy::type_complexity)]
    let experiments: &[(&str, fn() -> std::io::Result<()>)] = &[
        ("fig07", at_bench::experiments::fig07::run),
        ("tab01", at_bench::experiments::tab01::run),
        ("fig09", at_bench::experiments::fig09::run),
        ("fig13", at_bench::experiments::fig13::run),
        ("fig14", at_bench::experiments::fig14::run),
        ("fig15", at_bench::experiments::fig15::run),
        ("fig16", at_bench::experiments::fig16::run),
        ("fig17", at_bench::experiments::fig17::run),
        ("fig18", at_bench::experiments::fig18::run),
        ("fig19", at_bench::experiments::fig19::run),
        ("fig20", at_bench::experiments::fig20::run),
        ("low_snr", at_bench::experiments::low_snr::run),
        ("collision", at_bench::experiments::collision::run),
        ("latency", at_bench::experiments::latency::run),
        ("perf", at_bench::experiments::perf::run),
        ("heightA", at_bench::experiments::height_appendix::run),
        ("ablation", at_bench::experiments::ablation::run),
        ("baselines", at_bench::experiments::baselines::run),
        ("circular", at_bench::experiments::circular::run),
        ("elevation", at_bench::experiments::elevation::run),
        ("estimators", at_bench::experiments::estimators::run),
        ("reachability", at_bench::experiments::reachability::run),
        ("robustness", at_bench::experiments::robustness::run),
    ];
    for (name, run) in experiments {
        let t = Instant::now();
        run()?;
        eprintln!("[{name}] done in {:.1} s", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "all experiments done in {:.1} s",
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}
