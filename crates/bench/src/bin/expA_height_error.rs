//! Binary wrapper for the `height_appendix` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::height_appendix::run()
}
