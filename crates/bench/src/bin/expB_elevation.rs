//! Binary wrapper for the `elevation` extension experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::elevation::run()
}
