//! Binary wrapper for the `baselines` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::baselines::run()
}
