//! Binary wrapper for the `circular` extension experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::circular::run()
}
