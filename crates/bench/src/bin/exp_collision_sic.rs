//! Binary wrapper for the `collision` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::collision::run()
}
