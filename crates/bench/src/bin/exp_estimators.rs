//! Binary wrapper for the `estimators` extension experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::estimators::run()
}
