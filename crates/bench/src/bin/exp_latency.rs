//! Binary wrapper for the `latency` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::latency::run()
}
