//! Binary wrapper for the `low_snr` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::low_snr::run()
}
