//! Binary wrapper for the `reachability` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::reachability::run()
}
