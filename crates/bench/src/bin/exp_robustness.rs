//! Binary wrapper for the `robustness` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::robustness::run()
}
