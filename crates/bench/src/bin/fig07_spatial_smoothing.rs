//! Binary wrapper for the `fig07` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig07::run()
}
