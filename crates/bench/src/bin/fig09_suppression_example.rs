//! Binary wrapper for the `fig09` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig09::run()
}
