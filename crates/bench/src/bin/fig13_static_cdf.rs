//! Binary wrapper for the `fig13` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig13::run()
}
