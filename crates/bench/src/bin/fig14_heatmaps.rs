//! Binary wrapper for the `fig14` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig14::run()
}
