//! Binary wrapper for the `fig15` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig15::run()
}
