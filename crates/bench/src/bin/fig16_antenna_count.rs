//! Binary wrapper for the `fig16` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig16::run()
}
