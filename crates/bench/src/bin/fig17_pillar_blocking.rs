//! Binary wrapper for the `fig17` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig17::run()
}
