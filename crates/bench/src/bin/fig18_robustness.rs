//! Binary wrapper for the `fig18` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig18::run()
}
