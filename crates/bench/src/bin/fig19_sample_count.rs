//! Binary wrapper for the `fig19` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig19::run()
}
