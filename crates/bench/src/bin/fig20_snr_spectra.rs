//! Binary wrapper for the `fig20` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::fig20::run()
}
