//! Load generator for the `at-serve` networked location service:
//! sustained-throughput, overload-shedding, and graceful-drain phases
//! over loopback TCP.
//!
//! - default: full run, refreshes `BENCH_SERVE.json` at the repo root;
//! - `--smoke`: seconds-scale CI gate (non-zero exit when throughput
//!   collapses or the shed/drain behaviors disappear).
fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        at_bench::experiments::serve_load::run_smoke()
    } else {
        at_bench::experiments::serve_load::run()
    }
}
