//! Localization-engine performance baseline: cold vs warm query latency on
//! the Fig. 15 workload, plus the observed per-stage latency budget.
//!
//! - default: full run, refreshes `BENCH_PERF.json` at the repo root;
//! - `--smoke`: tiny-workload CI gate comparing the observed stage budget
//!   against the committed baseline (non-zero exit on regression).
fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        at_bench::experiments::perf::run_smoke()
    } else {
        at_bench::experiments::perf::run()
    }
}
