//! Localization-engine performance baseline: cold vs warm query latency on
//! the Fig. 15 workload. Refreshes `BENCH_PERF.json` at the repo root.
fn main() -> std::io::Result<()> {
    at_bench::experiments::perf::run()
}
