//! The bit-exact replay regression gate.
//!
//! Replays the committed golden journals through a fresh in-process
//! pipeline and fails (non-zero exit) on any divergence from the
//! recorded outcomes — a numerical-behavior change anywhere in the
//! MUSIC/fusion/session path shows up here as a different bit pattern.
//!
//! Two fixtures are checked:
//! - `tests/fixtures/replay_office/` — the steady-state six-AP office
//!   session (topology epoch 0 throughout);
//! - `tests/fixtures/replay_reconfig/` — the same deployment taken
//!   through a remove → move → re-add epoch sequence, pinning the
//!   topology-epoch machinery (journal epoch records, store/health
//!   remaps, per-epoch engine rebuilds).
//!
//! - `--smoke`: in-process replay only (the CI gate);
//! - default: additionally spawns a live server per fixture and replays
//!   the journal over the wire through real client sessions (the
//!   reconfig fixture drives live `Reconfigure` frames);
//! - `UPDATE_GOLDEN=1`: re-records both fixtures from the scripted
//!   scenarios, then verifies they replay cleanly. Commit the result
//!   when a numerical change is *intended*.
//!
//! Exit codes: 0 clean, 1 divergence/error, 2 fixture missing.

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

use at_replay::{
    replay_in_process, replay_wire, Journal, JournalError, RecorderStats, ReplayReport, WireOptions,
};
use at_serve::ServeConfig;
use at_testbed::replay::{
    golden_deployment, golden_experiment, golden_service, golden_session_policy, record_golden,
    record_reconfig_golden,
};

/// Segment size for the committed fixtures: small enough that the golden
/// journals span several files, keeping the reader's cross-segment
/// validation on the tested path.
const GOLDEN_ROTATE_BYTES: u64 = 64 << 10;

/// Exit status when a fixture directory is absent or empty — distinct
/// from a real divergence so CI wrappers can tell "regenerate" from
/// "regression".
const EXIT_MISSING_FIXTURE: u8 = 2;

struct Fixture {
    /// Directory name under `tests/fixtures/`.
    name: &'static str,
    /// The scripted scenario that (re)records it.
    record: fn(&std::path::Path, u64) -> io::Result<RecorderStats>,
}

const FIXTURES: [Fixture; 2] = [
    Fixture {
        name: "replay_office",
        record: record_golden,
    },
    Fixture {
        name: "replay_reconfig",
        record: record_reconfig_golden,
    },
];

fn fixture_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/fixtures/{name}"))
}

fn print_report(mode: &str, report: &ReplayReport) {
    println!(
        "{mode}: {} records, {} submits, {} queries ({} compared, {} skipped), \
         {} divergences{}",
        report.records,
        report.submits,
        report.queries,
        report.compared,
        report.skipped,
        report.divergences,
        if report.truncated_tail {
            " [truncated tail]"
        } else {
            ""
        },
    );
    for d in &report.divergence_details {
        println!("  query seq {} key {}: {}", d.query_seq, d.key, d.detail);
    }
}

fn gate(mode: &str, report: &ReplayReport) -> bool {
    print_report(mode, report);
    if report.truncated_tail {
        eprintln!("{mode}: FAIL — golden journal has a truncated tail");
        return false;
    }
    if report.compared == 0 {
        eprintln!("{mode}: FAIL — nothing compared (empty or outcome-less journal)");
        return false;
    }
    if report.divergences > 0 {
        eprintln!(
            "{mode}: FAIL — {} recorded outcome(s) did not reproduce bit-exactly",
            report.divergences
        );
        return false;
    }
    true
}

/// True when the open failure means "no fixture here" (as opposed to a
/// corrupt one): the directory is absent or holds no segments.
fn fixture_missing(e: &JournalError) -> bool {
    match e {
        JournalError::NoSegments => true,
        JournalError::Io(e) => e.kind() == io::ErrorKind::NotFound,
        _ => false,
    }
}

fn check_fixture(fixture: &Fixture, smoke: bool) -> Result<(), ExitCode> {
    let dir = fixture_dir(fixture.name);

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        if dir.exists() {
            if let Err(e) = std::fs::remove_dir_all(&dir) {
                eprintln!("cannot clear {}: {e}", dir.display());
                return Err(ExitCode::FAILURE);
            }
        }
        match (fixture.record)(&dir, GOLDEN_ROTATE_BYTES) {
            Ok(stats) => println!(
                "recorded {}: {} records, {} bytes, {} segment(s)",
                fixture.name, stats.records, stats.bytes, stats.segments
            ),
            Err(e) => {
                eprintln!("recording {} failed: {e}", fixture.name);
                return Err(ExitCode::FAILURE);
            }
        }
    }

    let journal = match Journal::open(&dir) {
        Ok(j) => j,
        Err(e) if fixture_missing(&e) => {
            eprintln!(
                "golden fixture missing at {}; regenerate it with \
                 UPDATE_GOLDEN=1 cargo run --release -p at-bench --bin replay_check",
                dir.display()
            );
            return Err(ExitCode::from(EXIT_MISSING_FIXTURE));
        }
        Err(e) => {
            eprintln!("cannot open golden journal at {} ({e})", dir.display());
            return Err(ExitCode::FAILURE);
        }
    };
    println!(
        "{}: {} segment(s), {} records, fingerprint {:#018x}",
        fixture.name,
        journal.segments,
        journal.records.len(),
        journal.meta.fingerprint
    );

    let dep = golden_deployment();
    let cfg = golden_experiment();
    let service = golden_service(&dep, &cfg);
    let session = golden_session_policy();

    let mode = format!("{} in-process", fixture.name);
    let in_process = match replay_in_process(&journal, &service, session) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{mode} replay failed: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if !gate(&mode, &in_process) {
        return Err(ExitCode::FAILURE);
    }
    if smoke {
        return Ok(());
    }

    // Full mode: the same journal through a live server over loopback
    // (the reconfig fixture drives the server through its recorded
    // remove/move/add sequence).
    let serve_cfg = ServeConfig {
        session,
        ..ServeConfig::default()
    };
    let server = match at_serve::spawn(service.clone(), serve_cfg, "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot spawn replay target server: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let addr = server.addr().to_string();
    let wire = replay_wire(&journal, &addr, &service, session, &WireOptions::default());
    server.shutdown();
    let mode = format!("{} wire", fixture.name);
    match wire {
        Ok(r) if gate(&mode, &r) => Ok(()),
        Ok(_) => Err(ExitCode::FAILURE),
        Err(e) => {
            eprintln!("{mode} replay failed: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    for fixture in &FIXTURES {
        if let Err(code) = check_fixture(fixture, smoke) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
