//! The bit-exact replay regression gate.
//!
//! Replays the committed golden journal (`tests/fixtures/replay_office/`)
//! through a fresh in-process pipeline and fails (non-zero exit) on any
//! divergence from the recorded outcomes — a numerical-behavior change
//! anywhere in the MUSIC/fusion/session path shows up here as a
//! different bit pattern.
//!
//! - `--smoke`: in-process replay only (the CI gate);
//! - default: additionally spawns a live server and replays the journal
//!   over the wire through real client sessions;
//! - `UPDATE_GOLDEN=1`: re-records the fixture from the scripted office
//!   scenario, then verifies it replays cleanly. Commit the result when
//!   a numerical change is *intended*.

use std::path::PathBuf;
use std::process::ExitCode;

use at_replay::{replay_in_process, replay_wire, Journal, ReplayReport, WireOptions};
use at_serve::ServeConfig;
use at_testbed::replay::{
    golden_deployment, golden_experiment, golden_service, golden_session_policy, record_golden,
};

/// Segment size for the committed fixture: small enough that the golden
/// journal spans several files, keeping the reader's cross-segment
/// validation on the tested path.
const GOLDEN_ROTATE_BYTES: u64 = 64 << 10;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/replay_office")
}

fn print_report(mode: &str, report: &ReplayReport) {
    println!(
        "{mode}: {} records, {} submits, {} queries ({} compared, {} skipped), \
         {} divergences{}",
        report.records,
        report.submits,
        report.queries,
        report.compared,
        report.skipped,
        report.divergences,
        if report.truncated_tail {
            " [truncated tail]"
        } else {
            ""
        },
    );
    for d in &report.divergence_details {
        println!("  query seq {} key {}: {}", d.query_seq, d.key, d.detail);
    }
}

fn gate(mode: &str, report: &ReplayReport) -> bool {
    print_report(mode, report);
    if report.truncated_tail {
        eprintln!("{mode}: FAIL — golden journal has a truncated tail");
        return false;
    }
    if report.compared == 0 {
        eprintln!("{mode}: FAIL — nothing compared (empty or outcome-less journal)");
        return false;
    }
    if report.divergences > 0 {
        eprintln!(
            "{mode}: FAIL — {} recorded outcome(s) did not reproduce bit-exactly",
            report.divergences
        );
        return false;
    }
    true
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dir = fixture_dir();

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        if dir.exists() {
            if let Err(e) = std::fs::remove_dir_all(&dir) {
                eprintln!("cannot clear {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        match record_golden(&dir, GOLDEN_ROTATE_BYTES) {
            Ok(stats) => println!(
                "recorded golden journal: {} records, {} bytes, {} segment(s)",
                stats.records, stats.bytes, stats.segments
            ),
            Err(e) => {
                eprintln!("golden recording failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let journal = match Journal::open(&dir) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "cannot open golden journal at {} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo run --release -p at-bench --bin replay_check",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "golden journal: {} segment(s), {} records, fingerprint {:#018x}",
        journal.segments,
        journal.records.len(),
        journal.meta.fingerprint
    );

    let dep = golden_deployment();
    let cfg = golden_experiment();
    let service = golden_service(&dep, &cfg);

    let in_process = match replay_in_process(&journal, &service) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("in-process replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !gate("in-process", &in_process) {
        return ExitCode::FAILURE;
    }
    if smoke {
        return ExitCode::SUCCESS;
    }

    // Full mode: the same journal through a live server over loopback.
    let serve_cfg = ServeConfig {
        session: golden_session_policy(),
        ..ServeConfig::default()
    };
    let server = match at_serve::spawn(service.clone(), serve_cfg, "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot spawn replay target server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr().to_string();
    let wire = replay_wire(&journal, &addr, &service, &WireOptions::default());
    server.shutdown();
    match wire {
        Ok(r) if gate("wire", &r) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("wire replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}
