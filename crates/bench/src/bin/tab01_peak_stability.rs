//! Binary wrapper for the `tab01` experiment (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    at_bench::experiments::tab01::run()
}
