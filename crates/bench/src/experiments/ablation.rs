//! Ablation study over ArrayTrack's design choices (DESIGN.md's extras).
//!
//! Toggles each pipeline stage independently at 3 and 6 APs:
//! geometry weighting, symmetry removal, multipath suppression (frames),
//! smoothing group count, forward–backward smoothing, and grid pitch —
//! quantifying what each contributes to the headline numbers.

use crate::report::{f3, Report};
use at_core::music::MusicConfig;
use at_testbed::{compute_all_spectra, localization_sweep, Deployment, ExperimentConfig};

struct Variant {
    label: &'static str,
    cfg: ExperimentConfig,
}

/// Runs the ablations.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("ablation")?;
    report.section("Pipeline ablations (DESIGN.md extras)");

    let dep = Deployment::office(42);
    let base = ExperimentConfig::arraytrack(42);

    let mut variants = vec![Variant {
        label: "full ArrayTrack",
        cfg: base,
    }];
    {
        let mut c = base;
        c.pipeline.weighting = false;
        variants.push(Variant {
            label: "- geometry weighting",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.pipeline.symmetry = at_core::pipeline::SymmetryMode::Off;
        c.capture.offrow = false;
        variants.push(Variant {
            label: "- symmetry resolution",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.pipeline.symmetry = at_core::pipeline::SymmetryMode::WholeSide;
        variants.push(Variant {
            label: "whole-side symmetry removal (paper-literal)",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.frames = 1;
        variants.push(Variant {
            label: "- multipath suppression (1 frame)",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.pipeline.music = MusicConfig {
            smoothing_groups: 1,
            ..MusicConfig::default()
        };
        variants.push(Variant {
            label: "- spatial smoothing (NG=1)",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.pipeline.music = MusicConfig {
            smoothing_groups: 3,
            ..MusicConfig::default()
        };
        variants.push(Variant {
            label: "NG=3",
            cfg: c,
        });
    }
    {
        let mut c = base;
        c.pipeline.music = MusicConfig {
            forward_backward: true,
            ..MusicConfig::default()
        };
        variants.push(Variant {
            label: "+ forward-backward smoothing",
            cfg: c,
        });
    }

    let sizes = [3usize, 6];
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for v in &variants {
        let spectra = compute_all_spectra(&dep, &v.cfg);
        let stats = localization_sweep(&dep, &spectra, &sizes, v.cfg.grid_step, v.cfg.threads);
        rows.push(vec![
            v.label.to_string(),
            f3(stats[&3].median()),
            f3(stats[&3].mean()),
            f3(stats[&6].median()),
            f3(stats[&6].mean()),
        ]);
        for &k in &sizes {
            csv_rows.push(vec![
                v.label.to_string(),
                k.to_string(),
                f3(stats[&k].median()),
                f3(stats[&k].mean()),
            ]);
        }
    }
    report.table(
        &[
            "variant",
            "3AP med(m)",
            "3AP mean(m)",
            "6AP med(m)",
            "6AP mean(m)",
        ],
        &rows,
    );
    report.csv(
        "results",
        &["variant", "aps", "median_m", "mean_m"],
        csv_rows,
    )?;
    report.line("expected: removing symmetry removal or suppression hurts most at 3 APs");
    Ok(())
}
