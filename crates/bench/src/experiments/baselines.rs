//! RSSI baselines vs. ArrayTrack (the §5 related-work comparison, made
//! quantitative on our common simulated channel).
//!
//! Log-distance trilateration lands in the meters regime (TIX: 5.4 m; Lim
//! et al.: ~3 m) and RSS fingerprinting around a meter (Horus: 0.6 m with
//! dense training) — both far behind ArrayTrack's tens of centimeters.

use crate::report::{f3, thin_cdf, Report};
use at_testbed::baselines::{fit_path_loss, measure_rss, trilaterate, FingerprintDb};
use at_testbed::{
    compute_all_spectra, localization_sweep, CaptureConfig, Deployment, ErrorStats,
    ExperimentConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the comparison.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("baselines")?;
    report.section("ArrayTrack vs RSSI baselines on the same channel");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig::default();
    let mut rng = StdRng::seed_from_u64(8080);
    let sigma_db = 2.0;

    // Baseline 1: log-distance trilateration.
    let model = fit_path_loss(&dep, &cfg);
    report.line(format!(
        "fitted path-loss model: exponent {:.2}, rss0 {:.1} dB",
        model.exponent, model.rss0
    ));
    let tri_errors: Vec<f64> = dep
        .clients
        .iter()
        .map(|&c| {
            let rss = measure_rss(&dep, c, &cfg, sigma_db, &mut rng);
            trilaterate(&dep, &model, &rss, 0.5).distance(c)
        })
        .collect();
    let tri = ErrorStats::new(tri_errors);

    // Baseline 2: RADAR-style fingerprinting on a 2 m training grid.
    let db = FingerprintDb::build(&dep, &cfg, 2.0);
    report.line(format!(
        "fingerprint database: {} training points",
        db.len()
    ));
    let fp_errors: Vec<f64> = dep
        .clients
        .iter()
        .map(|&c| {
            let rss = measure_rss(&dep, c, &cfg, sigma_db, &mut rng);
            db.localize(&rss, 3).distance(c)
        })
        .collect();
    let fp = ErrorStats::new(fp_errors);

    // ArrayTrack at 6 APs for the same clients.
    let at_cfg = ExperimentConfig::arraytrack(42);
    let spectra = compute_all_spectra(&dep, &at_cfg);
    let at_stats = localization_sweep(&dep, &spectra, &[6], at_cfg.grid_step, at_cfg.threads);
    let at6 = &at_stats[&6];

    let rows = vec![
        vec![
            "RSSI trilateration".into(),
            f3(tri.median()),
            f3(tri.mean()),
            "TIX 5.4 m / Lim ~3 m".into(),
        ],
        vec![
            "RSSI fingerprinting (2 m grid, 3-NN)".into(),
            f3(fp.median()),
            f3(fp.mean()),
            "RADAR ~m / Horus 0.6 m".into(),
        ],
        vec![
            "ArrayTrack (6 APs)".into(),
            f3(at6.median()),
            f3(at6.mean()),
            "paper 0.23 m median".into(),
        ],
    ];
    report.table(&["system", "median(m)", "mean(m)", "literature"], &rows);

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (label, stats) in [
        ("trilateration", &tri),
        ("fingerprint", &fp),
        ("arraytrack6", at6),
    ] {
        for (e, f) in thin_cdf(&stats.cdf_points(), 100) {
            csv_rows.push(vec![label.into(), f3(e), f3(f)]);
        }
    }
    report.csv("cdf", &["system", "error_m", "cdf"], csv_rows)?;
    report.line(format!(
        "shape: ArrayTrack beats fingerprinting by {:.1}x and trilateration by {:.1}x on median error",
        fp.median() / at6.median(),
        tri.median() / at6.median()
    ));
    Ok(())
}
