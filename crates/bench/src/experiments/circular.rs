//! Extension experiment: linear vs. circular arrays (paper §6 discussion).
//!
//! The paper weighs the trade-off qualitatively: "circular array resolves
//! 360 degrees while linear resolves 180 degrees, [but] twice the number
//! of antennas is needed for circular array to achieve the same level of
//! resolution accuracy, while linear array has the problem of symmetry
//! ambiguity". This experiment makes it quantitative on the simulated
//! office: same 8 antennas per AP, arranged in a row vs. on a circle.

use crate::report::{f1, f3, Report};
use at_channel::geometry::angle_diff;
use at_channel::{AntennaArray, ChannelSim, Transmitter};
use at_core::music::{music_analysis_positions, music_spectrum, MusicConfig};
use at_core::steering::circular_frame_positions;
use at_core::AoaSpectrum;
use at_dsp::awgn::NoiseSource;
use at_dsp::preamble::{Preamble, LTS0_START_S};
use at_dsp::SnapshotBlock;
use at_testbed::{localization_sweep, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;

/// Captures 10 snapshots from `client` at an AP with the given array.
fn capture(
    dep: &Deployment,
    array: &AntennaArray,
    client: at_channel::Point,
    rng: &mut StdRng,
) -> SnapshotBlock {
    let sim = ChannelSim::new(&dep.floorplan);
    let p = Preamble::new();
    let tx = Transmitter::at(client);
    let mut streams = sim.receive(
        &tx,
        array,
        |t| p.eval(t),
        LTS0_START_S + 1.0e-6,
        10.0 / at_dsp::SAMPLE_RATE_HZ,
        at_dsp::SAMPLE_RATE_HZ,
    );
    let noise = NoiseSource::with_power(1e-10);
    for s in &mut streams {
        noise.corrupt(s, rng);
    }
    SnapshotBlock::new(streams)
}

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("circular")?;
    report.section("Linear vs circular 8-antenna arrays (paper §6 discussion)");

    let dep = Deployment::office(42);

    // Part 1: single-AP ambiguity microbenchmark in free space.
    let free = Deployment::free_space(42);
    let mut rng = StdRng::seed_from_u64(4242);
    let mut lin_ghosts = 0;
    let mut circ_ghosts = 0;
    let mut lin_err = 0.0;
    let mut circ_err = 0.0;
    let trials = 24;
    let circ_positions = circular_frame_positions(8);
    for k in 0..trials {
        let theta = 0.3 + k as f64 * (TAU - 0.6) / trials as f64;
        let lin_array = AntennaArray::ula(at_channel::geometry::pt(0.0, 0.0), 0.0, 8);
        let circ_array = AntennaArray::uca(at_channel::geometry::pt(0.0, 0.0), 0.0, 8);
        let client = lin_array.point_at(theta, 12.0);

        let lin_spec = music_spectrum(
            &capture(&free, &lin_array, client, &mut rng),
            &MusicConfig::default(),
        );
        let circ_block = capture(&free, &circ_array, client, &mut rng);
        let circ_spec = music_analysis_positions(
            &circ_block.correlation_matrix(),
            &circ_positions,
            &MusicConfig {
                smoothing_groups: 1,
                ..MusicConfig::default()
            },
        )
        .spectrum;

        let fold_err = |spec: &AoaSpectrum| -> f64 {
            spec.find_peaks(0.5)
                .first()
                .map(|p| angle_diff(p.theta, theta).min(angle_diff(p.theta, TAU - theta)))
                .unwrap_or(f64::INFINITY)
        };
        lin_err += fold_err(&lin_spec).to_degrees() / trials as f64;
        circ_err += fold_err(&circ_spec).to_degrees() / trials as f64;
        // Ghost: a ≥half-power peak at the mirror bearing.
        if lin_spec.has_peak_near(TAU - theta, 0.1, 0.5) {
            lin_ghosts += 1;
        }
        if circ_spec.has_peak_near(TAU - theta, 0.1, 0.5) && angle_diff(theta, TAU - theta) > 0.2 {
            circ_ghosts += 1;
        }
    }
    report.table(
        &["array", "mean |bearing err|(°)", "mirror ghosts"],
        &[
            vec![
                "linear-8".into(),
                f3(lin_err),
                format!("{lin_ghosts}/{trials}"),
            ],
            vec![
                "circular-8".into(),
                f3(circ_err),
                format!("{circ_ghosts}/{trials}"),
            ],
        ],
    );

    // Part 2: office localization at 3 and 6 APs.
    let music_nosmooth = MusicConfig {
        smoothing_groups: 1,
        ..MusicConfig::default()
    };
    let mut variants: Vec<(&str, Vec<Vec<AoaSpectrum>>)> = Vec::new();
    for circular in [false, true] {
        let mut rng = StdRng::seed_from_u64(777);
        let spectra: Vec<Vec<AoaSpectrum>> = dep
            .clients
            .iter()
            .map(|&client| {
                (0..dep.aps.len())
                    .map(|ap| {
                        let pose = dep.aps[ap].pose;
                        if circular {
                            let array = AntennaArray::uca(pose.center, pose.axis_angle, 8);
                            let block = capture(&dep, &array, client, &mut rng);
                            music_analysis_positions(
                                &block.correlation_matrix(),
                                &circ_positions,
                                &music_nosmooth,
                            )
                            .spectrum
                        } else {
                            let array = AntennaArray::ula(pose.center, pose.axis_angle, 8);
                            let block = capture(&dep, &array, client, &mut rng);
                            music_spectrum(&block, &MusicConfig::default())
                        }
                    })
                    .collect()
            })
            .collect();
        variants.push((
            if circular {
                "circular-8"
            } else {
                "linear-8 (NG=2)"
            },
            spectra,
        ));
    }

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (label, spectra) in &variants {
        let stats = localization_sweep(
            &dep,
            spectra,
            &[3, 6],
            0.2,
            at_testbed::experiments::default_threads(),
        );
        rows.push(vec![
            label.to_string(),
            f3(stats[&3].median()),
            f3(stats[&3].mean()),
            f3(stats[&6].median()),
            f3(stats[&6].mean()),
        ]);
        for k in [3usize, 6] {
            csv_rows.push(vec![
                label.to_string(),
                k.to_string(),
                f3(stats[&k].median()),
                f3(stats[&k].mean()),
            ]);
        }
    }
    report.table(
        &[
            "array",
            "3AP med(m)",
            "3AP mean(m)",
            "6AP med(m)",
            "6AP mean(m)",
        ],
        &rows,
    );
    report.csv("results", &["array", "aps", "median_m", "mean_m"], csv_rows)?;
    report.line(format!(
        "paper §6 trade-off: circular kills the {}-of-{trials} linear mirror ghosts, \
         but loses the smoothing aperture in coherent multipath",
        lin_ghosts
    ));
    report.line(f1(lin_err) + "° vs " + &f1(circ_err) + "° single-AP bearing error");
    Ok(())
}
