//! §4.3.5: AoA extraction from colliding packets via successive
//! interference cancellation.
//!
//! Two clients transmit overlapping frames; as long as the preambles
//! themselves don't overlap, ArrayTrack recovers the AoA of both — the
//! second spectrum contains both clients' bearings and the first client's
//! peaks are cancelled out of it.

use crate::report::{f1, Report};
use at_channel::geometry::angle_diff;
use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use at_core::sic::{preamble_collision_probability, process_collision, SicConfig};
use at_dsp::awgn::NoiseSource;
use at_dsp::preamble::{Frame, PREAMBLE_S, SAMPLE_RATE_HZ};
use at_linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("collision")?;
    report.section("Colliding packets: SIC recovers both AoAs (paper §4.3.5)");

    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(at_channel::geometry::pt(0.0, 0.0), 0.0, 8);
    let theta_a = 60f64.to_radians();
    let theta_b = 115f64.to_radians();
    let client_a = array.point_at(theta_a, 9.0);
    let client_b = array.point_at(theta_b, 12.0);

    let mut rng = StdRng::seed_from_u64(77);
    let frame_a = Frame::with_random_body(8, &mut rng); // 32 µs body
    let frame_b = Frame::with_random_body(8, &mut rng);

    // Client B starts while A's body is still on the air.
    let offset_s = PREAMBLE_S + 6.0e-6;
    let total_s = offset_s + frame_b.duration() + 4.0e-6;

    let rx_a = sim.receive(
        &Transmitter::at(client_a),
        &array,
        |t| frame_a.eval(t),
        0.0,
        total_s,
        SAMPLE_RATE_HZ,
    );
    let rx_b = sim.receive(
        &Transmitter::at(client_b),
        &array,
        |t| frame_b.eval(t - offset_s),
        0.0,
        total_s,
        SAMPLE_RATE_HZ,
    );
    let noise = NoiseSource::with_power(1e-10);
    let streams: Vec<Vec<Complex64>> = rx_a
        .into_iter()
        .zip(rx_b)
        .map(|(a, b)| {
            let mut s: Vec<Complex64> = a.into_iter().zip(b).map(|(x, y)| x + y).collect();
            noise.corrupt(&mut s, &mut rng);
            s
        })
        .collect();

    let result = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default())
        .expect("collision processing");
    report.line(format!(
        "detected preambles at samples {} and {} (offset truth {})",
        result.starts.0,
        result.starts.1,
        (offset_s * SAMPLE_RATE_HZ).round()
    ));

    let peak_err = |spec: &at_core::AoaSpectrum, truth: f64| -> f64 {
        spec.find_peaks(0.3)
            .iter()
            .map(|p| {
                angle_diff(p.theta, truth).min(angle_diff(p.theta, std::f64::consts::TAU - truth))
            })
            .fold(f64::INFINITY, f64::min)
            .to_degrees()
    };
    let err_a = peak_err(&result.first, theta_a);
    let err_b = peak_err(&result.second, theta_b);
    // Did cancellation remove client A's bearing from spectrum 2?
    let a_in_second = result.second.has_peak_near(theta_a, 5f64.to_radians(), 0.3)
        || result
            .second
            .has_peak_near(std::f64::consts::TAU - theta_a, 5f64.to_radians(), 0.3);

    report.table(
        &["quantity", "value"],
        &[
            vec!["client A bearing error (°)".into(), f1(err_a)],
            vec!["client B bearing error (°)".into(), f1(err_b)],
            vec![
                "A's peak cancelled from B's spectrum".into(),
                (!a_in_second).to_string(),
            ],
        ],
    );

    // The paper's 0.6 % preamble-collision probability for 1000 B frames.
    let airtime = PREAMBLE_S / 0.006;
    report.line(format!(
        "preamble-collision probability at {:.2} ms airtime: {:.2}% (paper: 0.6%)",
        airtime * 1e3,
        100.0 * preamble_collision_probability(airtime, PREAMBLE_S)
    ));
    report.csv(
        "summary",
        &["err_a_deg", "err_b_deg", "a_cancelled"],
        vec![vec![f1(err_a), f1(err_b), (!a_in_second).to_string()]],
    )?;
    Ok(())
}
