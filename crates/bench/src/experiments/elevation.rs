//! Extension experiment: 3D localization with a vertical array (the
//! paper's §4.3.1 future work, implemented).
//!
//! Horizontal arrays fix `(x, y)` exactly as in the paper; one additional
//! vertically-oriented 8-element array per site estimates elevation, which
//! combined with the 2D fix yields the client height — removing the
//! height-difference error source Appendix A quantifies.

use crate::report::{f3, Report};
use at_channel::geometry::pt;
use at_channel::{AntennaArray, ChannelSim, Transmitter};
use at_core::elevation::{estimate_elevation, height_from_elevation};
use at_core::music::MusicConfig;
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::synthesis::{localize, ApObservation};
use at_dsp::awgn::NoiseSource;
use at_dsp::preamble::{Preamble, LTS0_START_S};
use at_dsp::SnapshotBlock;
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("elevation")?;
    report.section("3D localization with a vertical array (paper §4.3.1 future work)");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let region = dep.search_region().with_resolution(0.2);
    let vertical_site = pt(24.0, 12.0); // mast in the middle of the office
    let vertical_height = 2.5;

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut rng = StdRng::seed_from_u64(31415);
    for (client_xy, client_h) in [
        (pt(15.0, 15.0), 1.0f64),
        (pt(30.0, 8.0), 1.5),
        (pt(20.0, 12.0), 0.3),
        (pt(36.0, 16.0), 2.0),
        (pt(10.0, 7.0), 1.2),
    ] {
        let tx = Transmitter::at(client_xy).with_height(client_h);

        // 2D fix from the six horizontal APs (the paper's pipeline).
        let obs: Vec<ApObservation> = (0..dep.aps.len())
            .map(|ap| {
                let block = dep.capture_frame(ap, client_xy, &tx, &cfg, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame(&block, &pipeline),
                }
            })
            .collect();
        let xy = localize(&obs, region).position;

        // Elevation from the vertical mast.
        let mast = AntennaArray::vertical(vertical_site, 8).with_height(vertical_height);
        let sim = ChannelSim::new(&dep.floorplan);
        let p = Preamble::new();
        let mut streams = sim.receive(
            &tx,
            &mast,
            |t| p.eval(t),
            LTS0_START_S + 1.0e-6,
            10.0 / at_dsp::SAMPLE_RATE_HZ,
            at_dsp::SAMPLE_RATE_HZ,
        );
        let noise = NoiseSource::with_power(cfg.noise_power);
        for s in &mut streams {
            noise.corrupt(s, &mut rng);
        }
        let block = SnapshotBlock::new(streams);
        let elevation = estimate_elevation(&block, &MusicConfig::default());

        let (h_est, el_deg) = match elevation {
            Some(e) => (
                height_from_elevation(vertical_site, vertical_height, xy, e.elevation),
                e.elevation.to_degrees(),
            ),
            None => (f64::NAN, f64::NAN),
        };
        let err2d = xy.distance(client_xy);
        let err_h = (h_est - client_h).abs();
        let err3d = (err2d * err2d + err_h * err_h).sqrt();
        rows.push(vec![
            format!("({:.0},{:.0},{:.1})", client_xy.x, client_xy.y, client_h),
            f3(err2d),
            format!("{el_deg:.1}"),
            f3(h_est),
            f3(err_h),
            f3(err3d),
        ]);
        csv_rows.push(vec![
            f3(client_xy.x),
            f3(client_xy.y),
            f3(client_h),
            f3(err2d),
            f3(h_est),
            f3(err3d),
        ]);
    }
    report.table(
        &[
            "client (x,y,h)",
            "2D err(m)",
            "elevation(°)",
            "ĥ(m)",
            "height err(m)",
            "3D err(m)",
        ],
        &rows,
    );
    report.csv(
        "results",
        &["x", "y", "h", "err2d_m", "h_est_m", "err3d_m"],
        csv_rows,
    )?;
    report.line("paper §4.3.1: a vertical array estimates elevation directly, enabling 3D fixes");
    Ok(())
}
