//! Extension experiment: why MUSIC? Bartlett vs. MVDR vs. MUSIC on the
//! same captures.
//!
//! The paper adopts MUSIC as "best of breed" without a head-to-head; this
//! experiment supplies one: per-spectrum resolution metrics and full-office
//! 6-AP localization error with each estimator slotted into the same
//! pipeline position (no weighting/symmetry/suppression, to isolate the
//! estimator itself).

use crate::report::{f1, f3, Report};
use at_channel::Transmitter;
use at_core::estimators::{bartlett_spectrum, main_lobe_width, mvdr_spectrum};
use at_core::music::{music_spectrum, MusicConfig};
use at_core::AoaSpectrum;
use at_testbed::{localization_sweep, CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Copy)]
enum Estimator {
    Bartlett,
    Mvdr,
    Music,
}

impl Estimator {
    fn name(self) -> &'static str {
        match self {
            Estimator::Bartlett => "Bartlett",
            Estimator::Mvdr => "MVDR (Capon)",
            Estimator::Music => "MUSIC (NG=2)",
        }
    }

    fn spectrum(self, block: &at_dsp::SnapshotBlock) -> AoaSpectrum {
        match self {
            Estimator::Bartlett => bartlett_spectrum(block, 720),
            Estimator::Mvdr => mvdr_spectrum(block, 720),
            Estimator::Music => music_spectrum(block, &MusicConfig::default()),
        }
    }
}

/// Runs the comparison.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("estimators")?;
    report.section("AoA estimator comparison: Bartlett vs MVDR vs MUSIC");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };
    let estimators = [Estimator::Bartlett, Estimator::Mvdr, Estimator::Music];

    // Per-spectrum sharpness on one LoS capture.
    let mut rng = StdRng::seed_from_u64(2718);
    let client = at_channel::geometry::pt(9.0, 16.5);
    let tx = Transmitter::at(client);
    let block = dep.capture_frame(0, client, &tx, &cfg, &mut rng);
    let mut sharp_rows = Vec::new();
    for e in estimators {
        let spec = e.spectrum(&block);
        sharp_rows.push(vec![
            e.name().to_string(),
            f1(main_lobe_width(&spec).to_degrees()),
            spec.find_peaks(0.5).len().to_string(),
        ]);
    }
    report.table(
        &["estimator", "main lobe width(°)", "half-power peaks"],
        &sharp_rows,
    );

    // Full-office localization, 3 and 6 APs, estimator isolated.
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for e in estimators {
        let mut rng = StdRng::seed_from_u64(314);
        let spectra: Vec<Vec<AoaSpectrum>> = dep
            .clients
            .iter()
            .map(|&c| {
                (0..dep.aps.len())
                    .map(|ap| {
                        let tx = Transmitter::at(c);
                        let b = dep.capture_frame(ap, c, &tx, &cfg, &mut rng);
                        e.spectrum(&b)
                    })
                    .collect()
            })
            .collect();
        let stats = localization_sweep(
            &dep,
            &spectra,
            &[3, 6],
            0.2,
            at_testbed::experiments::default_threads(),
        );
        rows.push(vec![
            e.name().to_string(),
            f3(stats[&3].median()),
            f3(stats[&3].mean()),
            f3(stats[&6].median()),
            f3(stats[&6].mean()),
        ]);
        for k in [3usize, 6] {
            csv_rows.push(vec![
                e.name().to_string(),
                k.to_string(),
                f3(stats[&k].median()),
                f3(stats[&k].mean()),
            ]);
        }
    }
    report.table(
        &[
            "estimator",
            "3AP med(m)",
            "3AP mean(m)",
            "6AP med(m)",
            "6AP mean(m)",
        ],
        &rows,
    );
    report.csv(
        "results",
        &["estimator", "aps", "median_m", "mean_m"],
        csv_rows,
    )?;
    report.line("expected: MUSIC's sharper spectra translate into better fusion accuracy");
    Ok(())
}
