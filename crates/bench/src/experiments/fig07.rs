//! Figure 7: the effect of spatial smoothing on AoA spectra.
//!
//! The paper shows MUSIC spectra for a near-LoS client with no smoothing
//! and with `NG ∈ {2, 3, 4}` subarray groups: without smoothing, coherent
//! multipath produces false peaks; more groups denoise but shrink the
//! effective aperture. We reproduce the sweep for one LoS office client
//! and report peak structure per `NG`.

use crate::report::{f1, f3, Report};
use at_channel::Transmitter;
use at_core::music::{music_analysis, MusicConfig};
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig07")?;
    report.section("Spatial smoothing sweep (paper Fig. 7)");

    let dep = Deployment::office(42);
    // A client close to AP 1 and in its line of sight.
    let ap = 0;
    let client = at_channel::geometry::pt(9.0, 16.5);
    let truth = dep.aps[ap].pose.bearing_to(client).to_degrees();
    report.line(format!(
        "client at {client:?}, AP {} at {:?}, ground-truth bearing {:.1}°",
        ap + 1,
        dep.aps[ap].pose.center,
        truth
    ));

    let cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let tx = Transmitter::at(client);
    let block = dep.capture_frame(ap, client, &tx, &cfg, &mut rng);

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for ng in 1..=4usize {
        let analysis = music_analysis(
            &block,
            &MusicConfig {
                smoothing_groups: ng,
                ..MusicConfig::default()
            },
        );
        let spec = analysis.spectrum.normalized();
        let peaks = spec.find_peaks(0.1);
        let top: Vec<String> = peaks
            .iter()
            .take(4)
            .map(|p| format!("{:.1}°({:.2})", p.theta.to_degrees(), p.power))
            .collect();
        let direct_visible = spec.has_peak_near(truth.to_radians(), 5f64.to_radians(), 0.1)
            || spec.has_peak_near(
                std::f64::consts::TAU - truth.to_radians(),
                5f64.to_radians(),
                0.1,
            );
        rows.push(vec![
            ng.to_string(),
            analysis.effective_antennas.to_string(),
            peaks.len().to_string(),
            direct_visible.to_string(),
            top.join(" "),
        ]);
        for (i, v) in spec.values().iter().enumerate() {
            // Store only the unmirrored half for compactness.
            if i <= spec.bins() / 2 {
                csv_rows.push(vec![
                    ng.to_string(),
                    f1(spec.theta_of(i).to_degrees()),
                    f3(*v),
                ]);
            }
        }
    }
    report.table(
        &[
            "NG",
            "eff_antennas",
            "peaks",
            "direct_visible",
            "top peaks (deg, power)",
        ],
        &rows,
    );
    report.csv("spectra", &["ng", "theta_deg", "power"], csv_rows)?;
    report.line("paper: NG=1 distorted; NG=2 good compromise; NG≥3 loses direct-path detail");
    Ok(())
}
