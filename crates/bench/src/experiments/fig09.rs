//! Figure 9: a worked multipath-suppression example.
//!
//! Two AoA spectra from frames a few centimeters apart are fed to the
//! suppression algorithm; the output keeps the stable direct-path peak and
//! drops the moved reflection peaks.

use crate::report::{f1, f3, Report};
use at_channel::Transmitter;
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::suppression::{suppress_multipath, SuppressionConfig};
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig09")?;
    report.section("Multipath suppression example (paper Fig. 9)");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };
    let pipeline = ApPipelineConfig {
        symmetry: at_core::pipeline::SymmetryMode::Off,
        weighting: false,
        ..ApPipelineConfig::arraytrack(8)
    };

    // Search the deployment for a demonstrative case — one where the
    // reflections actually move between jittered frames (the paper, too,
    // picked an illustrative example for its figure).
    let mut chosen = None;
    'outer: for seed in 99..120u64 {
        for (ci, &client) in dep.clients.iter().enumerate() {
            for ap in 0..dep.aps.len() {
                let mut rng = StdRng::seed_from_u64(seed);
                let tx = Transmitter::at(client);
                let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 3, 0.05, &mut rng);
                let spectra: Vec<_> = blocks.iter().map(|b| process_frame(b, &pipeline)).collect();
                let before = spectra[0].normalized().find_peaks(0.05).len();
                let out = suppress_multipath(&spectra, &SuppressionConfig::default());
                let after = out.normalized().find_peaks(0.05).len();
                let truth = dep.aps[ap].pose.bearing_to(client);
                let direct_kept = out.has_peak_near(truth, 0.1, 0.1)
                    || out.has_peak_near(std::f64::consts::TAU - truth, 0.1, 0.1);
                if after < before && direct_kept {
                    chosen = Some((ci, ap, seed));
                    break 'outer;
                }
            }
        }
    }
    let (ci, ap, seed) = chosen.expect("a demonstrative suppression case exists");
    let client = dep.clients[ci];
    let truth = dep.aps[ap].pose.bearing_to(client);
    report.line(format!("client {ci} at {client:?}, AP {}", ap + 1));

    let mut rng = StdRng::seed_from_u64(seed);
    let tx = Transmitter::at(client);
    let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 3, 0.05, &mut rng);
    let spectra: Vec<_> = blocks.iter().map(|b| process_frame(b, &pipeline)).collect();

    let describe = |label: &str, s: &at_core::AoaSpectrum| {
        let peaks = s.normalized().find_peaks(0.05);
        let txt: Vec<String> = peaks
            .iter()
            .take(5)
            .map(|p| format!("{:.1}°({:.2})", p.theta.to_degrees(), p.power))
            .collect();
        report.line(format!("{label}: {} peaks: {}", peaks.len(), txt.join(" ")));
        peaks.len()
    };

    let before = describe("primary (frame 1)", &spectra[0]);
    describe("frame 2", &spectra[1]);
    describe("frame 3", &spectra[2]);
    let suppressed = suppress_multipath(&spectra, &SuppressionConfig::default());
    let after = describe("suppressed output", &suppressed);

    report.line(format!(
        "ground-truth direct bearing {:.1}° (or mirror {:.1}°); peaks {} -> {}",
        truth.to_degrees(),
        (std::f64::consts::TAU - truth).to_degrees(),
        before,
        after
    ));

    // CSV: primary and suppressed spectra for plotting.
    let norm_primary = spectra[0].normalized();
    let norm_out = suppressed.normalized();
    let rows: Vec<Vec<String>> = (0..norm_primary.bins())
        .map(|i| {
            vec![
                f1(norm_primary.theta_of(i).to_degrees()),
                f3(norm_primary.values()[i]),
                f3(norm_out.values()[i]),
            ]
        })
        .collect();
    report.csv("spectra", &["theta_deg", "primary", "suppressed"], rows)?;
    Ok(())
}
