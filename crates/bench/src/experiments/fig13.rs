//! Figure 13: CDFs of raw (unoptimized) location error for 3–6 APs.
//!
//! Plain MUSIC + smoothing spectra (no weighting, symmetry removal, or
//! suppression), fused with eq. 8 across every AP subset of each size and
//! all 41 clients. The paper reports medians 75/~40/~30/26 cm and means
//! 317/…/38 cm from three to six APs — the headline shape being a large
//! mean (mirror-ambiguity outliers) that shrinks dramatically with AP
//! count.

use crate::report::{f3, thin_cdf, Report};
use at_testbed::{compute_all_spectra, localization_sweep, Deployment, ExperimentConfig};

/// Runs the experiment and returns the per-size stats for reuse.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig13")?;
    report.section("Static localization, unoptimized spectra (paper Fig. 13)");

    let dep = Deployment::office(42);
    let cfg = ExperimentConfig::unoptimized(42);
    report.line(format!(
        "{} clients x {} APs, {} snapshot(s)/frame, grid {} m",
        dep.clients.len(),
        dep.aps.len(),
        cfg.capture.snapshots,
        cfg.grid_step
    ));

    let spectra = compute_all_spectra(&dep, &cfg);
    let sizes = [3usize, 4, 5, 6];
    let stats = localization_sweep(&dep, &spectra, &sizes, cfg.grid_step, cfg.threads);

    let paper_median = [0.75, f64::NAN, f64::NAN, 0.26];
    let paper_mean = [3.17, f64::NAN, f64::NAN, 0.38];
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (i, (&k, s)) in stats.iter().enumerate() {
        rows.push(vec![
            k.to_string(),
            s.len().to_string(),
            f3(s.median()),
            f3(s.mean()),
            f3(s.percentile(95.0)),
            if paper_median[i].is_nan() {
                "-".into()
            } else {
                f3(paper_median[i])
            },
            if paper_mean[i].is_nan() {
                "-".into()
            } else {
                f3(paper_mean[i])
            },
        ]);
        for (e, f) in thin_cdf(&s.cdf_points(), 200) {
            csv_rows.push(vec![k.to_string(), f3(e), f3(f)]);
        }
    }
    report.table(
        &[
            "APs",
            "n",
            "median(m)",
            "mean(m)",
            "p95(m)",
            "paper med",
            "paper mean",
        ],
        &rows,
    );
    report.csv("cdf", &["aps", "error_m", "cdf"], csv_rows)?;

    // Shape checks the reproduction must satisfy.
    let med3 = stats[&3].median();
    let med6 = stats[&6].median();
    let mean3 = stats[&3].mean();
    let mean6 = stats[&6].mean();
    report.line(format!(
        "shape: median 3AP {med3:.2} m > median 6AP {med6:.2} m: {}; mean 3AP {mean3:.2} m >> mean 6AP {mean6:.2} m: {}",
        med3 > med6,
        mean3 > 2.0 * mean6
    ));
    Ok(())
}
