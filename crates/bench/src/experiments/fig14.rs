//! Figure 14: likelihood heatmaps for one client with 1–6 APs.
//!
//! Shows how heatmap fusion sharpens the location estimate as APs are
//! added: with one AP the likelihood is a bearing fan; with six it
//! collapses to a spot at the client.

use crate::report::{f3, Report};
use at_core::synthesis::{heatmap, ApObservation, SearchRegion};
use at_testbed::{compute_spectrum, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig14")?;
    report.section("Heatmap fusion with 1-6 APs (paper Fig. 14)");

    let dep = Deployment::office(42);
    let cfg = ExperimentConfig::arraytrack(42);
    let client = dep.clients[3];
    report.line(format!("client ground truth: {client:?}"));

    let mut rng = StdRng::seed_from_u64(2024);
    let spectra: Vec<_> = (0..dep.aps.len())
        .map(|ap| compute_spectrum(&dep, ap, client, &cfg, &mut rng))
        .collect();

    // Coarse heatmap grid for the CSV (plotting resolution).
    let region = SearchRegion::new(
        at_channel::geometry::pt(0.0, 0.0),
        at_channel::geometry::pt(at_testbed::office::WIDTH, at_testbed::office::DEPTH),
    )
    .with_resolution(0.5);

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for n in 1..=dep.aps.len() {
        let obs: Vec<ApObservation> = (0..n)
            .map(|ap| ApObservation {
                pose: dep.aps[ap].pose,
                spectrum: spectra[ap].clone(),
            })
            .collect();
        let map = heatmap(&obs, region);
        let (top, _) = map.top_cells(1)[0];
        // Peak concentration: likelihood mass within 1 m of the top cell.
        let total: f64 = map.values.iter().sum();
        let near: f64 = (0..map.ny)
            .flat_map(|iy| (0..map.nx).map(move |ix| (ix, iy)))
            .filter(|&(ix, iy)| map.region.cell_center(ix, iy).distance(top) <= 1.0)
            .map(|(ix, iy)| map.at(ix, iy))
            .sum();
        rows.push(vec![
            n.to_string(),
            format!("({:.1}, {:.1})", top.x, top.y),
            f3(top.distance(client)),
            f3(near / total),
        ]);
        for iy in 0..map.ny {
            for ix in 0..map.nx {
                let p = map.region.cell_center(ix, iy);
                csv_rows.push(vec![
                    n.to_string(),
                    f3(p.x),
                    f3(p.y),
                    format!("{:.5e}", map.at(ix, iy)),
                ]);
            }
        }
    }
    report.table(
        &["APs", "heatmap peak", "peak error (m)", "mass within 1 m"],
        &rows,
    );
    report.csv("heatmap", &["aps", "x", "y", "likelihood"], csv_rows)?;
    report.line("paper: likelihood concentrates onto the true location as APs accumulate");
    Ok(())
}
