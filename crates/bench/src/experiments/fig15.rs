//! Figure 15: full-ArrayTrack vs. unoptimized CDFs for 3–6 APs.
//!
//! The optimized pipeline (geometry weighting + symmetry removal +
//! multipath suppression over 3 semi-static frames) against the raw
//! spectra of Fig. 13. Paper headlines: 6 APs improve from 38 cm to 31 cm
//! mean (23 cm → 26 cm median band); 3 APs improve from 317 cm to 107 cm
//! mean and 75 cm → 57 cm median — the big win coming from removing
//! mirror-ambiguity and reflection false positives.

use crate::report::{f3, thin_cdf, Report};
use at_testbed::{compute_all_spectra, localization_sweep, Deployment, ExperimentConfig};

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig15")?;
    report.section("Semi-static localization, full ArrayTrack vs unoptimized (paper Fig. 15)");

    let dep = Deployment::office(42);
    let sizes = [3usize, 4, 5, 6];

    let opt_cfg = ExperimentConfig::arraytrack(42);
    let raw_cfg = ExperimentConfig::unoptimized(42);
    report.line("computing optimized spectra (3 frames, suppression, weighting, symmetry)...");
    let opt_spectra = compute_all_spectra(&dep, &opt_cfg);
    report.line("computing unoptimized spectra...");
    let raw_spectra = compute_all_spectra(&dep, &raw_cfg);

    let opt = localization_sweep(
        &dep,
        &opt_spectra,
        &sizes,
        opt_cfg.grid_step,
        opt_cfg.threads,
    );
    let raw = localization_sweep(
        &dep,
        &raw_spectra,
        &sizes,
        raw_cfg.grid_step,
        raw_cfg.threads,
    );

    let paper = [
        // (aps, arraytrack median, arraytrack mean, raw mean)
        (3, 0.57, 1.07, 3.17),
        (4, f64::NAN, f64::NAN, f64::NAN),
        (5, f64::NAN, f64::NAN, f64::NAN),
        (6, 0.23, 0.31, 0.38),
    ];
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (i, &k) in sizes.iter().enumerate() {
        let o = &opt[&k];
        let r = &raw[&k];
        rows.push(vec![
            k.to_string(),
            f3(o.median()),
            f3(o.mean()),
            f3(r.median()),
            f3(r.mean()),
            if paper[i].1.is_nan() {
                "-".into()
            } else {
                format!("{:.2}/{:.2}", paper[i].1, paper[i].2)
            },
        ]);
        for (e, f) in thin_cdf(&o.cdf_points(), 200) {
            csv_rows.push(vec![k.to_string(), "arraytrack".into(), f3(e), f3(f)]);
        }
        for (e, f) in thin_cdf(&r.cdf_points(), 200) {
            csv_rows.push(vec![k.to_string(), "unoptimized".into(), f3(e), f3(f)]);
        }
    }
    report.table(
        &[
            "APs",
            "AT med(m)",
            "AT mean(m)",
            "raw med(m)",
            "raw mean(m)",
            "paper AT med/mean",
        ],
        &rows,
    );
    report.csv("cdf", &["aps", "variant", "error_m", "cdf"], csv_rows)?;

    // Headline percentile claims at 6 APs: 90/95/98 % within 80/90/102 cm.
    let o6 = &opt[&6];
    report.line(format!(
        "6 APs: p90 {:.2} m (paper 0.80), p95 {:.2} m (paper 0.90), p98 {:.2} m (paper 1.02)",
        o6.percentile(90.0),
        o6.percentile(95.0),
        o6.percentile(98.0)
    ));
    // Shape checks.
    let gain3 = raw[&3].mean() / opt[&3].mean();
    let gain6 = raw[&6].mean() / opt[&6].mean();
    report.line(format!(
        "shape: 3-AP mean improves {gain3:.1}x (paper ~3x); 6-AP mean improves {gain6:.2}x (paper ~1.2x); gain larger with fewer APs: {}",
        gain3 > gain6
    ));
    Ok(())
}
