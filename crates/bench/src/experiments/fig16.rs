//! Figure 16: location error vs. antennas per AP (4, 6, 8).
//!
//! Fewer antennas mean a smaller effective aperture after spatial
//! smoothing, fewer capturable multipath bearings, and broader peaks. The
//! paper reports mean errors of 138 / 60 / 31 cm for 4 / 6 / 8 antennas at
//! six APs.

use crate::report::{f3, thin_cdf, Report};
use at_core::pipeline::ApPipelineConfig;
use at_testbed::{
    compute_all_spectra, localization_sweep, CaptureConfig, Deployment, ExperimentConfig,
};

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig16")?;
    report.section("Effect of antennas per AP (paper Fig. 16)");

    let dep = Deployment::office(42);
    // 16 antennas: the prototype's full diversity-synthesis capacity
    // (§3 footnote 3) — beyond what the paper's Fig. 16 plots. No off-row
    // element (all ports carry in-row antennas) so symmetry stays mirrored;
    // the paper's caveat that calibration/imperfections eventually dominate
    // applies here.
    let paper_mean = [(4usize, 1.38), (6, 0.60), (8, 0.31), (16, f64::NAN)];
    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for &(elements, paper) in &paper_mean {
        let mut cfg = ExperimentConfig::arraytrack(42);
        cfg.capture = CaptureConfig {
            elements,
            offrow: elements <= 8,
            ..cfg.capture
        };
        cfg.pipeline = ApPipelineConfig::arraytrack(elements);
        if elements > 8 {
            cfg.pipeline.symmetry = at_core::pipeline::SymmetryMode::Off;
        }
        let spectra = compute_all_spectra(&dep, &cfg);
        let stats = localization_sweep(&dep, &spectra, &[6], cfg.grid_step, cfg.threads);
        let s = &stats[&6];
        rows.push(vec![
            elements.to_string(),
            f3(s.median()),
            f3(s.mean()),
            f3(s.percentile(95.0)),
            if paper.is_nan() {
                "-".into()
            } else {
                f3(paper)
            },
        ]);
        for (e, f) in thin_cdf(&s.cdf_points(), 100) {
            csv_rows.push(vec![elements.to_string(), f3(e), f3(f)]);
        }
    }

    report.table(
        &[
            "antennas",
            "median(m)",
            "mean(m)",
            "p95(m)",
            "paper mean(m)",
        ],
        &rows,
    );
    report.csv("cdf", &["antennas", "error_m", "cdf"], csv_rows)?;
    report.line("shape: error decreases with antenna count; 4→6 gap larger than 6→8");
    Ok(())
}
