//! Figure 17: direct-path survival behind concrete pillars.
//!
//! Three clients in line with an AP, blocked by zero, one, and two
//! pillars. The paper's finding: even behind two pillars the direct-path
//! signal remains among the three strongest AoA peaks, which is why the
//! synthesis step still localizes blocked clients.

use crate::report::{f1, f3, Report};
use at_channel::floorplan::Pillar;
use at_channel::geometry::{pt, seg};
use at_channel::{AntennaArray, ChannelSim, Floorplan, Material, Transmitter};
use at_core::music::{music_analysis, MusicConfig};
use at_dsp::awgn::NoiseSource;
use at_dsp::preamble::{Preamble, LTS0_START_S};
use at_dsp::SnapshotBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig17")?;
    report.section("Direct path vs pillar blocking (paper Fig. 17)");

    // A bespoke scene: AP at origin, client 12 m away on a known bearing,
    // a reflector wall to create competing peaks, and 0/1/2 pillars placed
    // on the direct line.
    let ap_center = pt(0.0, 0.0);
    let array = AntennaArray::ula(ap_center, 0.0, 8);
    let client = array.point_at(60f64.to_radians(), 12.0);
    let truth_deg: f64 = 60.0;

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for pillars in 0..=2usize {
        let mut fp = Floorplan::empty()
            .with_wall(seg(pt(-30.0, 14.0), pt(40.0, 14.0)), Material::CONCRETE)
            .with_wall(seg(pt(-30.0, -6.0), pt(40.0, -6.0)), Material::METAL)
            .with_wall(seg(pt(16.0, -6.0), pt(16.0, 14.0)), Material::DRYWALL);
        // Place pillars at 1/3 and 2/3 of the direct line.
        for k in 0..pillars {
            let f = (k as f64 + 1.0) / 3.0;
            let c = pt(client.x * f, client.y * f);
            fp = fp.with_pillar(Pillar::concrete(c, 0.35));
        }
        let sim = ChannelSim::new(&fp);
        let tx = Transmitter::at(client);
        let p = Preamble::new();
        let mut rng = StdRng::seed_from_u64(17 + pillars as u64);
        let mut streams = sim.receive(
            &tx,
            &array,
            |t| p.eval(t),
            LTS0_START_S + 0.5e-6,
            10.0 / at_dsp::SAMPLE_RATE_HZ,
            at_dsp::SAMPLE_RATE_HZ,
        );
        let noise = NoiseSource::with_power(1e-10);
        for s in &mut streams {
            noise.corrupt(s, &mut rng);
        }
        let block = SnapshotBlock::new(streams);
        let analysis = music_analysis(&block, &MusicConfig::default());
        let spec = analysis.spectrum.normalized();
        let peaks = spec.find_peaks(0.02);
        // Rank of the direct-path peak among all peaks (mirror-aware).
        let rank = peaks.iter().position(|pk| {
            let d = at_channel::geometry::angle_diff(pk.theta, truth_deg.to_radians());
            let dm = at_channel::geometry::angle_diff(
                pk.theta,
                std::f64::consts::TAU - truth_deg.to_radians(),
            );
            d.min(dm) < 5f64.to_radians()
        });
        let direct_power = rank.map(|r| peaks[r].power).unwrap_or(0.0);
        rows.push(vec![
            pillars.to_string(),
            peaks.len().to_string(),
            rank.map(|r| (r + 1).to_string()).unwrap_or("-".into()),
            f3(direct_power),
            (rank.map(|r| r < 3).unwrap_or(false)).to_string(),
        ]);
        for i in 0..=spec.bins() / 2 {
            csv_rows.push(vec![
                pillars.to_string(),
                f1(spec.theta_of(i).to_degrees()),
                f3(spec.values()[i]),
            ]);
        }
    }
    report.table(
        &[
            "pillars",
            "peaks",
            "direct rank",
            "direct power",
            "in top-3",
        ],
        &rows,
    );
    report.csv("spectra", &["pillars", "theta_deg", "power"], csv_rows)?;
    report.line("paper: direct path weakens with blocking but stays in the top three peaks");
    Ok(())
}
