//! Figure 18: robustness to client height and antenna orientation.
//!
//! Three CDFs at six APs / eight antennas: the baseline, clients lowered
//! to the floor (1.5 m height difference → median 23 cm → 26 cm), and
//! clients with 90°-rotated antennas (polarization loss → median 23 cm →
//! 50 cm).

use crate::report::{f3, thin_cdf, Report};
use at_channel::Transmitter;
use at_testbed::{compute_all_spectra, localization_sweep, Deployment, ExperimentConfig};

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig18")?;
    report.section("Robustness: client height and antenna orientation (paper Fig. 18)");

    let dep = Deployment::office(42);
    let variants: [(&str, Transmitter, f64); 3] = [
        (
            "original",
            Transmitter::at(at_channel::geometry::pt(0.0, 0.0)),
            0.23,
        ),
        (
            "floor height (Δh=1.5m)",
            Transmitter::at(at_channel::geometry::pt(0.0, 0.0)).with_height(0.0),
            0.26,
        ),
        (
            "90° polarization",
            Transmitter::at(at_channel::geometry::pt(0.0, 0.0))
                .with_polarization_mismatch(std::f64::consts::FRAC_PI_2),
            0.50,
        ),
    ];

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut medians = Vec::new();
    for (label, tx, paper_median) in variants {
        let mut cfg = ExperimentConfig::arraytrack(42);
        cfg.tx = tx;
        // Run at a paper-like operating SNR (≈15-25 dB rather than this
        // simulator's conservative default) so the 20 dB polarization loss
        // bites the way §4.3.2 reports.
        cfg.capture.noise_power = 1e-9;
        let spectra = compute_all_spectra(&dep, &cfg);
        let stats = localization_sweep(&dep, &spectra, &[6], cfg.grid_step, cfg.threads);
        let s = &stats[&6];
        medians.push(s.median());
        rows.push(vec![
            label.to_string(),
            f3(s.median()),
            f3(s.mean()),
            f3(s.percentile(95.0)),
            f3(paper_median),
        ]);
        for (e, f) in thin_cdf(&s.cdf_points(), 100) {
            csv_rows.push(vec![label.to_string(), f3(e), f3(f)]);
        }
    }
    report.table(
        &[
            "variant",
            "median(m)",
            "mean(m)",
            "p95(m)",
            "paper median(m)",
        ],
        &rows,
    );
    report.csv("cdf", &["variant", "error_m", "cdf"], csv_rows)?;
    report.line(format!(
        "shape: height penalty small ({:.0}% worse), polarization penalty larger ({:.0}% worse)",
        100.0 * (medians[1] / medians[0] - 1.0),
        100.0 * (medians[2] / medians[0] - 1.0),
    ));
    Ok(())
}
