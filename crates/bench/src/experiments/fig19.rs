//! Figure 19: AoA spectrum stability vs. number of preamble samples.
//!
//! 30 packets from the same client, spectra computed from N ∈ {1, 5, 10,
//! 100} samples each. The paper's takeaway: by N = 5 the spectra are
//! already stable, so ArrayTrack's 10-sample operating point (250 ns of
//! signal) is comfortably conservative.

use crate::report::{f1, f3, Report};
use at_channel::Transmitter;
use at_core::music::{music_spectrum, MusicConfig};
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig19")?;
    report.section("Spectrum stability vs sample count (paper Fig. 19)");

    let dep = Deployment::office(42);
    let ap = 0;
    let client = at_channel::geometry::pt(10.0, 14.0);
    let truth = dep.aps[ap].pose.bearing_to(client).to_degrees();
    let packets = 30;

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for n in [1usize, 5, 10, 100] {
        let cfg = CaptureConfig {
            snapshots: n,
            offrow: false,
            // ~10 dB SNR: low enough that noise averaging across samples
            // is visible, as in the paper's microbenchmark.
            noise_power: 1e-7,
            ..CaptureConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(500 + n as u64);
        let tx = Transmitter::at(client);
        // 30 packets; track the strongest-peak bearing of each spectrum.
        let mut bearings = Vec::with_capacity(packets);
        for _ in 0..packets {
            let block = dep.capture_frame(ap, client, &tx, &cfg, &mut rng);
            let spec = music_spectrum(&block, &MusicConfig::default());
            if let Some(p) = spec.find_peaks(0.5).first() {
                // Fold the mirror ambiguity for spread measurement.
                let deg = p.theta.to_degrees();
                bearings.push(if deg > 180.0 { 360.0 - deg } else { deg });
            }
        }
        let mean = bearings.iter().sum::<f64>() / bearings.len() as f64;
        let var = bearings
            .iter()
            .map(|b| (b - mean) * (b - mean))
            .sum::<f64>()
            / bearings.len() as f64;
        let spread = var.sqrt();
        rows.push(vec![
            n.to_string(),
            bearings.len().to_string(),
            f1(mean),
            f3(spread),
            f1(truth.min(360.0 - truth)),
        ]);
        for b in &bearings {
            csv_rows.push(vec![n.to_string(), f3(*b)]);
        }
    }
    report.table(
        &[
            "samples",
            "packets",
            "mean bearing(°)",
            "stddev(°)",
            "truth(°)",
        ],
        &rows,
    );
    report.csv("bearings", &["samples", "bearing_deg"], csv_rows)?;
    report.line("paper: spectra stabilize by N=5; ArrayTrack uses N=10 (250 ns of samples)");
    Ok(())
}
