//! Figure 20: AoA spectrum sharpness vs. SNR.
//!
//! The client's transmit power is stepped down so the capture SNR falls
//! from 15 dB through 8 and 2 dB to below 0 dB; the paper observes spectra
//! staying sharp down to ≈0 dB and growing large side lobes below that.

use crate::report::{f1, f3, Report};
use at_channel::{ChannelSim, Transmitter};
use at_core::music::{music_spectrum, MusicConfig};
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("fig20")?;
    report.section("Spectrum sharpness vs SNR (paper Fig. 20)");

    let dep = Deployment::office(42);
    let ap = 0;
    let client = at_channel::geometry::pt(10.0, 14.0);
    let base_cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };

    // Reference received power at unit amplitude → amplitude for target SNR.
    let sim = ChannelSim::new(&dep.floorplan);
    let array = dep.aps[ap].array(&base_cfg);
    let p_unit = sim.received_power(&Transmitter::at(client), &array);

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for snr_db in [15.0f64, 8.0, 2.0, -3.0] {
        let target_p = base_cfg.noise_power * 10f64.powf(snr_db / 10.0);
        let amplitude = (target_p / p_unit).sqrt();
        let cfg = CaptureConfig {
            tx_amplitude: amplitude,
            ..base_cfg
        };
        let mut rng = StdRng::seed_from_u64(3000 + snr_db.abs() as u64);
        let tx = Transmitter::at(client).with_amplitude(1.0);
        // Average over several packets (one packet's noise realization is
        // too variable to rank SNRs reliably). Metrics: number of
        // half-power side lobes (the paper's visual) and the strongest-
        // peak bearing RMSE against ground truth.
        let packets = 10;
        let truth = dep.aps[ap].pose.bearing_to(client);
        let mut lobes = 0.0;
        let mut sq_err = 0.0;
        let mut last_spec = None;
        for _ in 0..packets {
            let block = dep.capture_frame(ap, client, &tx, &cfg, &mut rng);
            let spec = music_spectrum(&block, &MusicConfig::default()).normalized();
            lobes += spec.find_peaks(0.5).len() as f64 / packets as f64;
            if let Some(p) = spec.find_peaks(0.5).first() {
                let e = at_channel::geometry::angle_diff(p.theta, truth).min(
                    at_channel::geometry::angle_diff(p.theta, std::f64::consts::TAU - truth),
                );
                sq_err += e * e / packets as f64;
            }
            last_spec = Some(spec);
        }
        let spec = last_spec.expect("at least one packet");
        rows.push(vec![f1(snr_db), f3(sq_err.sqrt().to_degrees()), f1(lobes)]);
        for i in 0..=spec.bins() / 2 {
            csv_rows.push(vec![
                f1(snr_db),
                f1(spec.theta_of(i).to_degrees()),
                f3(spec.values()[i]),
            ]);
        }
    }
    report.table(
        &["SNR(dB)", "bearing RMSE(°)", "half-power lobes (avg)"],
        &rows,
    );
    report.csv("spectra", &["snr_db", "theta_deg", "power"], csv_rows)?;
    report.line("paper: sharp spectra at 15/8/2 dB; large side lobes below 0 dB");
    Ok(())
}
