//! Appendix A: bearing error from the AP–client height difference.
//!
//! Closed-form `(cos φ)⁻¹ − 1` plus a simulation cross-check: the measured
//! bearing shift of the full MUSIC pipeline for a client 1.5 m below the
//! AP at 5 m and 10 m.

use crate::report::{f1, f3, Report};
use at_channel::height::bearing_error_fraction;
use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use at_core::music::{music_spectrum, MusicConfig};
use at_dsp::awgn::NoiseSource;
use at_dsp::SnapshotBlock;
use at_linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measures the strongest-peak bearing for a client at the given
/// horizontal distance and height difference.
fn measured_bearing(distance: f64, dh: f64, seed: u64) -> f64 {
    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(at_channel::geometry::pt(0.0, 0.0), 0.0, 8);
    let theta = 55f64.to_radians();
    let client = array.point_at(theta, distance);
    let tx = Transmitter::at(client).with_height(array.height - dh);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut streams = sim.receive(
        &tx,
        &array,
        |t| Complex64::cis(std::f64::consts::TAU * 1e6 * t),
        0.0,
        10.0 / at_dsp::SAMPLE_RATE_HZ,
        at_dsp::SAMPLE_RATE_HZ,
    );
    let noise = NoiseSource::with_power(1e-12);
    for s in &mut streams {
        noise.corrupt(s, &mut rng);
    }
    let block = SnapshotBlock::new(streams);
    let spec = music_spectrum(&block, &MusicConfig::default());
    let p = spec.find_peaks(0.5)[0].theta.to_degrees();
    if p > 180.0 {
        360.0 - p
    } else {
        p
    }
}

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("heightA")?;
    report.section("Height-difference bearing error (paper Appendix A)");

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (d, paper_pct) in [(5.0f64, 4.0f64), (10.0, 1.0)] {
        let closed = bearing_error_fraction(1.5, d) * 100.0;
        let flat = measured_bearing(d, 0.0, 9000 + d as u64);
        let tall = measured_bearing(d, 1.5, 9100 + d as u64);
        // Convert the bearing shift into the paper's phase-difference error
        // metric: Δ(cosθ)/cosθ.
        let sim_pct = ((tall.to_radians().cos() / flat.to_radians().cos()) - 1.0).abs() * 100.0;
        rows.push(vec![
            f1(d),
            f3(closed),
            f3(sim_pct),
            f1(paper_pct),
            f1(flat),
            f1(tall),
        ]);
        csv_rows.push(vec![f1(d), f3(closed), f3(sim_pct), f1(paper_pct)]);
    }
    report.table(
        &[
            "distance(m)",
            "closed-form err %",
            "simulated err %",
            "paper %",
            "bearing flat(°)",
            "bearing Δh=1.5m(°)",
        ],
        &rows,
    );
    report.csv(
        "errors",
        &[
            "distance_m",
            "closed_form_pct",
            "simulated_pct",
            "paper_pct",
        ],
        csv_rows,
    )?;
    report.line("shape: % error shrinks with distance; a 1.5 m offset costs only a few percent");
    Ok(())
}
