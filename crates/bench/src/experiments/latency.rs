//! §4.4 / Figure 21: the end-to-end latency budget.
//!
//! `Td` and `Tt` are deterministic protocol arithmetic; `Tl` is the
//! paper's measured WARP↔PC bus latency (modeled); `Tp` we *measure* on
//! this machine by timing the actual Rust pipeline — MUSIC for six APs
//! plus the full grid-search + hill-climbing synthesis the paper timed at
//! 100 ms in Matlab on a 2.80 GHz Xeon.

use crate::report::{f3, Report};
use at_channel::Transmitter;
use at_core::latency::{frame_airtime, traffic_bps, transfer_time, LatencyModel};
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::synthesis::{localize, ApObservation};
use at_core::AoaSpectrum;
use at_testbed::experiments::localization_engine;
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("latency")?;
    report.section("End-to-end latency budget (paper §4.4, Fig. 21)");

    // Measure Tp natively: 6 AP spectra + synthesis at the paper's 10 cm
    // grid over the full office.
    let dep = Deployment::office(42);
    let cfg = CaptureConfig::default();
    let client = dep.clients[10];
    let mut rng = StdRng::seed_from_u64(4242);
    let tx = Transmitter::at(client);
    let blocks: Vec<_> = (0..6)
        .map(|ap| dep.capture_frame(ap, client, &tx, &cfg, &mut rng))
        .collect();

    let t_music = Instant::now();
    let observations: Vec<ApObservation> = blocks
        .iter()
        .enumerate()
        .map(|(ap, b)| ApObservation {
            pose: dep.aps[ap].pose,
            spectrum: process_frame(b, &ApPipelineConfig::arraytrack(8)),
        })
        .collect();
    let music_s = t_music.elapsed().as_secs_f64();

    let t_synth = Instant::now();
    let region = dep.search_region(); // 10 cm grid, as in the paper
    let est = localize(&observations, region);
    let synth_s = t_synth.elapsed().as_secs_f64();
    let tp = music_s + synth_s;

    report.line(format!(
        "measured Tp on this machine: MUSIC x6 = {:.1} ms, synthesis (10 cm grid + hill climb) = {:.1} ms, total {:.1} ms",
        music_s * 1e3,
        synth_s * 1e3,
        tp * 1e3
    ));
    report.line(format!(
        "location estimate error in this run: {:.2} m",
        est.position.distance(client)
    ));

    // The query-scale path: a prebuilt engine amortizes the grid geometry
    // across clients, so the steady-state Tp only pays MUSIC + a
    // coarse-to-fine table search.
    let bins = observations[0].spectrum.bins();
    let t_build = Instant::now();
    let engine = localization_engine(&dep, 0.1, bins);
    let build_s = t_build.elapsed().as_secs_f64();
    let obs: Vec<(usize, &AoaSpectrum)> = observations
        .iter()
        .enumerate()
        .map(|(i, o)| (i, &o.spectrum))
        .collect();
    let t_warm = Instant::now();
    let est_engine = engine.localize(&obs);
    let warm_s = t_warm.elapsed().as_secs_f64();
    let tp_engine = music_s + warm_s;
    report.line(format!(
        "engine-accelerated Tp: one-time engine build {:.1} ms, then MUSIC x6 = {:.1} ms + coarse-to-fine synthesis = {:.2} ms, total {:.1} ms per query",
        build_s * 1e3,
        music_s * 1e3,
        warm_s * 1e3,
        tp_engine * 1e3
    ));
    report.line(format!(
        "engine estimate agrees with the exhaustive path to {:.4} m",
        est_engine.position.distance(est.position)
    ));

    let airtime = frame_airtime(1500, 54e6);
    let model = LatencyModel::paper_defaults(airtime, tp);
    let rows = vec![
        vec![
            "T (1500 B @ 54 Mbit/s)".into(),
            f3(airtime * 1e3),
            "0.222".into(),
        ],
        vec![
            "Td detection".into(),
            f3(model.detection * 1e3),
            "0.016".into(),
        ],
        vec![
            "Tt transfer (10 smp x 8 radios @ 1 Mbit/s)".into(),
            f3(transfer_time(10, 8, 1e6) * 1e3),
            "2.56".into(),
        ],
        vec!["Tl bus".into(), f3(model.bus * 1e3), "30".into()],
        vec![
            "Tp processing".into(),
            f3(tp * 1e3),
            "100 (Matlab/Xeon)".into(),
        ],
        vec![
            "Tp processing (warm engine)".into(),
            f3(tp_engine * 1e3),
            "-".into(),
        ],
        vec![
            "added latency (Td+Tt+Tl+Tp-T)".into(),
            f3(model.added_latency().as_secs_f64() * 1e3),
            "~130 (,~100 excl. bus)".into(),
        ],
    ];
    report.table(&["stage", "measured/modeled (ms)", "paper (ms)"], &rows);
    report.csv(
        "budget",
        &["stage", "ms"],
        rows.iter().map(|r| vec![r[0].clone(), r[1].clone()]),
    )?;

    report.line(format!(
        "ArrayTrack traffic overhead at 100 ms refresh: {:.4} Mbit/s (paper: 0.0256)",
        traffic_bps(10, 8, 0.1) / 1e6
    ));
    Ok(())
}
