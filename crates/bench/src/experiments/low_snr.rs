//! §4.3.4: packet detection rate vs. SNR.
//!
//! The full-preamble matched filter (all ten short + two long training
//! symbols) against classic Schmidl–Cox, swept from +10 dB down to −15 dB.
//! The paper's claim: detection works down to −10 dB SNR.

use crate::report::{f1, f3, Report};
use at_dsp::awgn::NoiseSource;
use at_dsp::detector::{MatchedFilter, SchmidlCox};
use at_dsp::preamble::{Preamble, SAMPLE_RATE_HZ};
use at_linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("low_snr")?;
    report.section("Packet detection rate vs SNR (paper §4.3.4)");

    let p = Preamble::new();
    let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ).with_threshold(0.15);
    let sc = SchmidlCox::new(SAMPLE_RATE_HZ);
    let trials = 40;
    let pad = 400usize;

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for snr_db in [10.0f64, 5.0, 0.0, -5.0, -10.0, -15.0] {
        let mut mf_hits = 0;
        let mut sc_hits = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(4000 + t + (snr_db.abs() * 7.0) as u64);
            let mut rx = vec![Complex64::ZERO; pad];
            rx.extend(p.reference(SAMPLE_RATE_HZ));
            rx.extend(vec![Complex64::ZERO; pad]);
            NoiseSource::for_snr_db(snr_db).corrupt(&mut rx, &mut rng);
            if let Some(d) = mf.detect(&rx) {
                if d.start.abs_diff(pad) <= 2 {
                    mf_hits += 1;
                }
            }
            if let Some(d) = sc.detect(&rx) {
                if d.start >= pad.saturating_sub(64) && d.start <= pad + 320 {
                    sc_hits += 1;
                }
            }
        }
        let mf_rate = mf_hits as f64 / trials as f64;
        let sc_rate = sc_hits as f64 / trials as f64;
        rows.push(vec![f1(snr_db), f3(mf_rate), f3(sc_rate)]);
        csv_rows.push(vec![f1(snr_db), f3(mf_rate), f3(sc_rate)]);
    }
    report.table(
        &["SNR(dB)", "matched-filter rate", "Schmidl-Cox rate"],
        &rows,
    );
    report.csv(
        "rates",
        &["snr_db", "matched_filter", "schmidl_cox"],
        csv_rows,
    )?;
    report.line("paper: full-preamble detection keeps working at -10 dB; Schmidl-Cox does not");
    Ok(())
}
