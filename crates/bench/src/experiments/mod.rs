//! One module per reproduced table/figure (see DESIGN.md §3 for the
//! experiment index).

pub mod ablation;
pub mod baselines;
pub mod circular;
pub mod collision;
pub mod elevation;
pub mod estimators;
pub mod fig07;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod height_appendix;
pub mod latency;
pub mod low_snr;
pub mod perf;
pub mod reachability;
pub mod robustness;
pub mod serve_load;
pub mod tab01;
