//! Performance baseline: the query-scale localization engine vs the
//! exhaustive reference path, on the Fig. 15 workload (six APs, the full
//! 48 m x 24 m office, 10 cm grid).
//!
//! Writes `BENCH_PERF.json` at the repo root so the speedup claim in
//! DESIGN.md is backed by a committed, reproducible measurement
//! (`cargo run --release -p at-bench --bin perf_report`).

use crate::report::{f3, Report};
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::synthesis::{localize, ApObservation};
use at_core::AoaSpectrum;
use at_testbed::experiments::{
    compute_all_spectra, localization_engine, ExperimentConfig,
};
use at_testbed::Deployment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::time::Instant;

/// Rounds of the 41-client query sweep (41 x 3 = 123 queries per path,
/// above the >= 100 the acceptance bar asks for).
const ROUNDS: usize = 3;

/// Where the committed JSON baseline lives (repo root).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PERF.json");

/// Percentile of a sample set, nearest-rank on the sorted copy.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("perf")?;
    report.section("Localization-engine performance baseline (Fig. 15 workload)");

    let dep = Deployment::office(7);
    let mut cfg = ExperimentConfig::arraytrack(7);
    cfg.frames = 1; // one frame per (client, AP): the timing target is
                    // localization, not capture realism
    let spectra = compute_all_spectra(&dep, &cfg);
    let bins = spectra[0][0].bins();
    let region = dep.search_region(); // 10 cm grid, as in the paper

    // Per-frame MUSIC cost (the shared front half of both paths).
    let client = dep.clients[10];
    let tx = at_channel::Transmitter::at(client);
    let mut rng = StdRng::seed_from_u64(7777);
    let block = dep.capture_frame(0, client, &tx, &cfg.capture, &mut rng);
    let music_ms: Vec<f64> = (0..20)
        .map(|_| {
            let t = Instant::now();
            let s = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            assert_eq!(s.bins(), bins);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let music_p50 = percentile(&music_ms, 0.5);

    // One-time engine build for the deployment.
    let t_build = Instant::now();
    let engine = localization_engine(&dep, 0.1, bins);
    let build_ms = t_build.elapsed().as_secs_f64() * 1e3;

    // Cold path: the exhaustive grid scan + hill climb, per query.
    // Warm path: the prebuilt engine's coarse-to-fine search.
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    let mut max_disagreement = 0.0f64;
    for _ in 0..ROUNDS {
        for (ci, client_spectra) in spectra.iter().enumerate() {
            let observations: Vec<ApObservation> = client_spectra
                .iter()
                .enumerate()
                .map(|(ap, s)| ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: s.clone(),
                })
                .collect();
            let t = Instant::now();
            let cold = localize(&observations, region);
            cold_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let obs: Vec<(usize, &AoaSpectrum)> =
                client_spectra.iter().enumerate().collect();
            let t = Instant::now();
            let warm = engine.localize(&obs);
            warm_ms.push(t.elapsed().as_secs_f64() * 1e3);

            max_disagreement = max_disagreement.max(warm.position.distance(cold.position));
            let _ = ci;
        }
    }
    let queries = cold_ms.len();
    let cold_p50 = percentile(&cold_ms, 0.5);
    let cold_p95 = percentile(&cold_ms, 0.95);
    let warm_p50 = percentile(&warm_ms, 0.5);
    let warm_p95 = percentile(&warm_ms, 0.95);
    let speedup = cold_p50 / warm_p50;

    let rows = vec![
        vec!["MUSIC per frame p50".into(), f3(music_p50)],
        vec!["engine build (one-time)".into(), f3(build_ms)],
        vec!["cold localize p50".into(), f3(cold_p50)],
        vec!["cold localize p95".into(), f3(cold_p95)],
        vec!["warm engine localize p50".into(), f3(warm_p50)],
        vec!["warm engine localize p95".into(), f3(warm_p95)],
        vec!["speedup (cold p50 / warm p50)".into(), format!("{speedup:.1}x")],
    ];
    report.table(&["metric", "ms"], &rows);
    report.line(format!(
        "{queries} queries per path; engine vs exhaustive position disagreement <= {max_disagreement:.2e} m"
    ));
    report.csv(
        "baseline",
        &["metric", "ms"],
        rows.iter().map(|r| vec![r[0].clone(), r[1].clone()]),
    )?;

    let json = format!(
        "{{\n  \"workload\": \"office 48x24 m, 6 APs, 41 clients, 10 cm grid, {bins}-bin spectra\",\n  \"queries\": {queries},\n  \"music_per_frame_ms_p50\": {music_p50:.3},\n  \"engine_build_ms\": {build_ms:.3},\n  \"cold_localize_ms\": {{ \"p50\": {cold_p50:.3}, \"p95\": {cold_p95:.3} }},\n  \"warm_engine_localize_ms\": {{ \"p50\": {warm_p50:.3}, \"p95\": {warm_p95:.3} }},\n  \"speedup_warm_vs_cold_p50\": {speedup:.2},\n  \"max_position_disagreement_m\": {max_disagreement:.6}\n}}\n"
    );
    let mut f = std::fs::File::create(BASELINE_PATH)?;
    f.write_all(json.as_bytes())?;
    report.line(format!("  -> wrote {BASELINE_PATH}"));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[42.0], 0.95), 42.0);
    }
}
