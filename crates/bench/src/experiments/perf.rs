//! Performance baseline: the query-scale localization engine vs the
//! exhaustive reference path, on the Fig. 15 workload (six APs, the full
//! 48 m x 24 m office, 10 cm grid) — plus the observed per-stage latency
//! budget (detection / spectrum / fusion, the paper's §4.4 table) read
//! from the `at-obs` metrics the instrumented pipeline records.
//!
//! Two entry points:
//!
//! - [`run`] (default) writes `BENCH_PERF.json` at the repo root so the
//!   speedup claim in DESIGN.md is backed by a committed, reproducible
//!   measurement (`cargo run --release -p at-bench --bin perf_report`);
//! - [`run_smoke`] (`perf_report --smoke`) is the CI bench-smoke gate: a
//!   tiny workload (3 clients, 50 cm grid) whose observed stage budget
//!   must stay within [`SMOKE_TOLERANCE`]× of the committed baseline.
//!   `AT_SMOKE_INJECT_MS` inflates the observed stages — the hook the CI
//!   self-test uses to prove the gate actually fails on a regression.

use crate::report::{f3, Report};
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::synthesis::{localize, ApObservation};
use at_core::AoaSpectrum;
use at_dsp::detector::MatchedFilter;
use at_dsp::preamble::Preamble;
use at_obs::{LatencyBudget, MetricsSnapshot};
use at_testbed::experiments::{compute_all_spectra, localization_engine, ExperimentConfig};
use at_testbed::Deployment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::time::Instant;

/// Rounds of the 41-client query sweep (41 x 3 = 123 queries per path,
/// above the >= 100 the acceptance bar asks for).
const ROUNDS: usize = 3;

/// Where the committed JSON baseline lives (repo root).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PERF.json");

/// Smoke gate: observed stage p50 must be `<= baseline * SMOKE_TOLERANCE +
/// SMOKE_SLACK_MS`. Generous on purpose — the gate exists to catch real
/// regressions (an accidental O(n²), a lost cache), not scheduler noise.
const SMOKE_TOLERANCE: f64 = 3.0;

/// Absolute slack absorbing timer granularity on near-zero stages, ms.
const SMOKE_SLACK_MS: f64 = 0.05;

/// Smoke gate on the warm engine query itself: the observed warm p50 must
/// stay `<= baseline * WARM_QUERY_TOLERANCE`. Tighter than the stage gate
/// because the warm path is the tentpole the zero-allocation work exists
/// to protect, and the measurement (a median over hundreds of sub-ms
/// queries) is far less noisy than one-shot stage timings.
const WARM_QUERY_TOLERANCE: f64 = 1.25;

/// Percentile of a sample set, nearest-rank on the sorted copy.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Exercises the preamble detector a few times so the `detect` stage
/// histogram has observations (the front half of the paper's `Td`).
fn exercise_detector(reps: usize) {
    let p = Preamble::new();
    let mf = MatchedFilter::new(&p, at_dsp::SAMPLE_RATE_HZ);
    let mut rx = vec![at_linalg::Complex64::ZERO; 200];
    rx.extend(p.reference(at_dsp::SAMPLE_RATE_HZ));
    rx.extend(vec![at_linalg::Complex64::ZERO; 200]);
    let mut rng = StdRng::seed_from_u64(424_242);
    at_dsp::awgn::NoiseSource::for_snr_db(10.0).corrupt(&mut rx, &mut rng);
    for _ in 0..reps {
        assert!(mf.detect(&rx).is_some(), "clean preamble must detect");
    }
}

/// Writes the full metrics snapshot next to the other experiment outputs,
/// in both export formats.
fn write_snapshot(report: &Report, name: &str, snap: &MetricsSnapshot) -> std::io::Result<()> {
    for (ext, body) in [("prom", snap.to_prometheus()), ("json", snap.to_json())] {
        let path = report.dir().join(format!("{name}.{ext}"));
        std::fs::write(&path, body)?;
        report.line(format!("  -> wrote {}", path.display()));
    }
    Ok(())
}

/// First number following `"key":` in a JSON document. Good enough for the
/// flat documents this module itself writes; not a general parser.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pos = json.find(&format!("\"{key}\""))?;
    let rest = &json[pos..];
    let tail = rest[rest.find(':')? + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// `extract_number`, scoped to the object that follows `"section":` — the
/// committed baseline holds several `"p50"` keys (cold and warm), and a
/// bare search would always land on the first one.
fn extract_nested(json: &str, section: &str, key: &str) -> Option<f64> {
    let pos = json.find(&format!("\"{section}\""))?;
    let rest = &json[pos..];
    let open = rest.find('{')?;
    let close = rest[open..].find('}')? + open;
    extract_number(&rest[open..=close], key)
}

/// The host the numbers were taken on, embedded in the baseline JSON so a
/// committed measurement can be told apart from a rerun on different
/// hardware (the multi-core re-baseline rule in ROADMAP.md keys off it).
pub(crate) fn host_context_json() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let threads = at_core::parallel::available_threads();
    format!("\"host\": {{ \"cores\": {cores}, \"engine_threads\": {threads} }}")
}

/// The committed baseline's per-stage budget, from `BENCH_PERF.json`.
fn baseline_budget(json: &str) -> Option<LatencyBudget> {
    Some(LatencyBudget {
        detect_ms: extract_number(json, "detect")?,
        spectrum_ms: extract_number(json, "spectrum")?,
        fusion_ms: extract_number(json, "fusion")?,
    })
}

/// Runs the full baseline experiment and refreshes `BENCH_PERF.json`.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("perf")?;
    report.section("Localization-engine performance baseline (Fig. 15 workload)");

    let dep = Deployment::office(7);
    let mut cfg = ExperimentConfig::arraytrack(7);
    cfg.frames = 1; // one frame per (client, AP): the timing target is
                    // localization, not capture realism
    let spectra = compute_all_spectra(&dep, &cfg);
    let bins = spectra[0][0].bins();
    let region = dep.search_region(); // 10 cm grid, as in the paper

    exercise_detector(20);

    // Per-frame MUSIC cost (the shared front half of both paths).
    let client = dep.clients[10];
    let tx = at_channel::Transmitter::at(client);
    let mut rng = StdRng::seed_from_u64(7777);
    let block = dep.capture_frame(0, client, &tx, &cfg.capture, &mut rng);
    let music_ms: Vec<f64> = (0..20)
        .map(|_| {
            let t = Instant::now();
            let s = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            assert_eq!(s.bins(), bins);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let music_p50 = percentile(&music_ms, 0.5);

    // One-time engine build for the deployment.
    let t_build = Instant::now();
    let engine = localization_engine(&dep, 0.1, bins);
    let build_ms = t_build.elapsed().as_secs_f64() * 1e3;

    // Cold path: the exhaustive grid scan + hill climb, per query.
    // Warm path: the prebuilt engine's coarse-to-fine search.
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    let mut max_disagreement = 0.0f64;
    for _ in 0..ROUNDS {
        for (ci, client_spectra) in spectra.iter().enumerate() {
            let observations: Vec<ApObservation> = client_spectra
                .iter()
                .enumerate()
                .map(|(ap, s)| ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: s.clone(),
                })
                .collect();
            let t = Instant::now();
            let cold = localize(&observations, region);
            cold_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let obs: Vec<(usize, &AoaSpectrum)> = client_spectra.iter().enumerate().collect();
            let t = Instant::now();
            let warm = engine.localize(&obs);
            warm_ms.push(t.elapsed().as_secs_f64() * 1e3);

            max_disagreement = max_disagreement.max(warm.position.distance(cold.position));
            let _ = ci;
        }
    }
    let queries = cold_ms.len();
    let cold_p50 = percentile(&cold_ms, 0.5);
    let cold_p95 = percentile(&cold_ms, 0.95);
    let warm_p50 = percentile(&warm_ms, 0.5);
    let warm_p95 = percentile(&warm_ms, 0.95);
    let speedup = cold_p50 / warm_p50;

    // The observed per-stage budget, straight from the instrumented
    // pipeline's metrics (not re-measured here): the paper's §4.4 table.
    let snap = at_obs::global().snapshot();
    let budget =
        LatencyBudget::from_snapshot(&snap).expect("detect/spectrum/fusion stages all ran above");
    write_snapshot(&report, "perf_metrics", &snap)?;

    let rows = vec![
        vec!["MUSIC per frame p50".into(), f3(music_p50)],
        vec!["engine build (one-time)".into(), f3(build_ms)],
        vec!["cold localize p50".into(), f3(cold_p50)],
        vec!["cold localize p95".into(), f3(cold_p95)],
        vec!["warm engine localize p50".into(), f3(warm_p50)],
        vec!["warm engine localize p95".into(), f3(warm_p95)],
        vec![
            "speedup (cold p50 / warm p50)".into(),
            format!("{speedup:.1}x"),
        ],
        vec!["stage budget: detect p50".into(), f3(budget.detect_ms)],
        vec!["stage budget: spectrum p50".into(), f3(budget.spectrum_ms)],
        vec!["stage budget: fusion p50".into(), f3(budget.fusion_ms)],
    ];
    report.table(&["metric", "ms"], &rows);
    report.line(format!(
        "{queries} queries per path; engine vs exhaustive position disagreement <= {max_disagreement:.2e} m"
    ));
    report.csv(
        "baseline",
        &["metric", "ms"],
        rows.iter().map(|r| vec![r[0].clone(), r[1].clone()]),
    )?;

    let json = format!(
        "{{\n  \"workload\": \"office 48x24 m, 6 APs, 41 clients, 10 cm grid, {bins}-bin spectra\",\n  {},\n  \"queries\": {queries},\n  \"music_per_frame_ms_p50\": {music_p50:.3},\n  \"engine_build_ms\": {build_ms:.3},\n  \"cold_localize_ms\": {{ \"p50\": {cold_p50:.3}, \"p95\": {cold_p95:.3} }},\n  \"warm_engine_localize_ms\": {{ \"p50\": {warm_p50:.3}, \"p95\": {warm_p95:.3} }},\n  \"speedup_warm_vs_cold_p50\": {speedup:.2},\n  \"max_position_disagreement_m\": {max_disagreement:.6},\n  \"stage_budget_ms\": {{ \"detect\": {:.3}, \"spectrum\": {:.3}, \"fusion\": {:.3} }}\n}}\n",
        host_context_json(),
        budget.detect_ms,
        budget.spectrum_ms,
        budget.fusion_ms,
    );
    let mut f = std::fs::File::create(BASELINE_PATH)?;
    f.write_all(json.as_bytes())?;
    report.line(format!("  -> wrote {BASELINE_PATH}"));
    Ok(())
}

/// The CI bench-smoke gate: a seconds-scale workload whose observed stage
/// budget is compared against the committed `BENCH_PERF.json` baseline.
/// Returns an error (non-zero exit) listing every regressed stage.
pub fn run_smoke() -> std::io::Result<()> {
    let report = Report::new("perf_smoke")?;
    report.section("bench-smoke: per-stage latency budget vs BENCH_PERF.json");

    // Tiny workload: 3 clients, 50 cm fusion grid, one frame each.
    let mut dep = Deployment::office(7);
    dep.clients.truncate(3);
    let mut cfg = ExperimentConfig::arraytrack(7);
    cfg.frames = 1;
    exercise_detector(10);
    let spectra = compute_all_spectra(&dep, &cfg);
    let bins = spectra[0][0].bins();
    let engine = localization_engine(&dep, 0.5, bins);
    let mut warm_ms = Vec::new();
    for round in 0..5 {
        for client_spectra in &spectra {
            let obs: Vec<(usize, &AoaSpectrum)> = client_spectra.iter().enumerate().collect();
            let t = Instant::now();
            let est = engine.localize(&obs);
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            // Round 0 is warm-up (engine caches, scratch arenas, metric
            // handles); the gate only sees warmed queries.
            if round > 0 {
                warm_ms.push(elapsed_ms);
            }
            assert!(est.position.x.is_finite() && est.position.y.is_finite());
        }
    }
    let mut warm_p50 = percentile(&warm_ms, 0.5);

    let snap = at_obs::global().snapshot();
    let mut observed =
        LatencyBudget::from_snapshot(&snap).expect("smoke workload ran every gated stage");
    write_snapshot(&report, "smoke_metrics", &snap)?;

    // Regression-injection hook for the gate's own CI self-test.
    if let Ok(inject) = std::env::var("AT_SMOKE_INJECT_MS") {
        let ms: f64 = inject.parse().map_err(|e| {
            std::io::Error::other(format!("bad AT_SMOKE_INJECT_MS {inject:?}: {e}"))
        })?;
        report.line(format!(
            "  !! injecting {ms} ms into every stage (AT_SMOKE_INJECT_MS)"
        ));
        observed.detect_ms += ms;
        observed.spectrum_ms += ms;
        observed.fusion_ms += ms;
        warm_p50 += ms;
    }

    // A fresh checkout (or a clean machine) has no committed baseline yet;
    // the gate has nothing to compare against, so it passes with a note
    // instead of failing the whole CI run on a missing file.
    let baseline_text = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            report.line(format!(
                "no committed baseline at {BASELINE_PATH}; run \
                 `cargo run --release -p at-bench --bin perf_report` to create \
                 one. Gate passes vacuously."
            ));
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let baseline = baseline_budget(&baseline_text).ok_or_else(|| {
        std::io::Error::other("BENCH_PERF.json has no stage_budget_ms; rerun perf_report")
    })?;

    report.table(
        &["stage", "observed p50 ms", "baseline p50 ms", "limit ms"],
        &observed
            .stage_ms()
            .iter()
            .zip(baseline.stage_ms())
            .map(|(&(stage, got), (_, base))| {
                vec![
                    stage.into(),
                    f3(got),
                    f3(base),
                    f3(base * SMOKE_TOLERANCE + SMOKE_SLACK_MS),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut violations: Vec<String> = observed
        .regressions_vs(&baseline, SMOKE_TOLERANCE, SMOKE_SLACK_MS)
        .into_iter()
        .map(|v| v.to_string())
        .collect();

    // The warm-query gate: the smoke workload's 50 cm grid is strictly
    // cheaper than the committed baseline's 10 cm one, so a warm query
    // that can't beat 1.25x the committed full-workload p50 has lost an
    // order of magnitude somewhere (a cache, the scratch arenas, the
    // coarse-to-fine bound).
    match extract_nested(&baseline_text, "warm_engine_localize_ms", "p50") {
        Some(base_warm) => {
            let limit = base_warm * WARM_QUERY_TOLERANCE;
            report.table(
                &["query", "observed p50 ms", "baseline p50 ms", "limit ms"],
                &[vec![
                    "warm engine localize".into(),
                    f3(warm_p50),
                    f3(base_warm),
                    f3(limit),
                ]],
            );
            if warm_p50 > limit {
                violations.push(format!(
                    "warm engine localize p50 {warm_p50:.3} ms > \
                     {WARM_QUERY_TOLERANCE}x committed baseline {base_warm:.3} ms"
                ));
            }
        }
        None => report.line("baseline has no warm_engine_localize_ms.p50; warm-query gate skipped"),
    }

    if violations.is_empty() {
        report.line(format!("bench-smoke gate passed: {observed}"));
        Ok(())
    } else {
        for v in &violations {
            report.line(format!("FAIL: {v}"));
        }
        Err(std::io::Error::other(format!(
            "bench-smoke gate failed: {} metric(s) regressed past tolerance",
            violations.len(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[42.0], 0.95), 42.0);
    }

    #[test]
    fn extract_number_reads_flat_json() {
        let j = "{ \"a\": 1.5, \"nested\": { \"detect\": 0.025, \"spectrum\": 7e-2 } }";
        assert_eq!(extract_number(j, "a"), Some(1.5));
        assert_eq!(extract_number(j, "detect"), Some(0.025));
        assert_eq!(extract_number(j, "spectrum"), Some(0.07));
        assert_eq!(extract_number(j, "missing"), None);
    }

    #[test]
    fn extract_nested_scopes_to_its_section() {
        let j = "{ \"cold_localize_ms\": { \"p50\": 25.5, \"p95\": 28.7 },\n  \
                 \"warm_engine_localize_ms\": { \"p50\": 0.913, \"p95\": 1.127 } }";
        assert_eq!(
            extract_nested(j, "warm_engine_localize_ms", "p50"),
            Some(0.913)
        );
        assert_eq!(extract_nested(j, "cold_localize_ms", "p50"), Some(25.5));
        assert_eq!(extract_nested(j, "warm_engine_localize_ms", "p99"), None);
        assert_eq!(extract_nested(j, "missing_section", "p50"), None);
        // A bare extract_number would land on the cold section's p50.
        assert_eq!(extract_number(j, "p50"), Some(25.5));
    }

    #[test]
    fn host_context_names_this_machine() {
        let h = host_context_json();
        assert!(h.starts_with("\"host\""), "got {h}");
        assert!(extract_number(&h, "cores").is_some(), "got {h}");
        assert!(extract_number(&h, "engine_threads").is_some(), "got {h}");
    }

    #[test]
    fn baseline_budget_roundtrips_the_written_shape() {
        let j =
            "\"stage_budget_ms\": { \"detect\": 0.020, \"spectrum\": 0.070, \"fusion\": 0.900 }";
        let b = baseline_budget(j).unwrap();
        assert_eq!(b.detect_ms, 0.020);
        assert_eq!(b.spectrum_ms, 0.070);
        assert_eq!(b.fusion_ms, 0.900);
    }

    #[test]
    fn smoke_gate_fails_on_injected_regression() {
        // The exact comparison run_smoke performs, with a 10 ms injection
        // on a sub-ms baseline: every stage must violate.
        let baseline = LatencyBudget {
            detect_ms: 0.02,
            spectrum_ms: 0.07,
            fusion_ms: 0.9,
        };
        let observed = LatencyBudget {
            detect_ms: baseline.detect_ms + 10.0,
            spectrum_ms: baseline.spectrum_ms + 10.0,
            fusion_ms: baseline.fusion_ms + 10.0,
        };
        let v = observed.regressions_vs(&baseline, SMOKE_TOLERANCE, SMOKE_SLACK_MS);
        assert_eq!(v.len(), 3, "injected regression must trip every stage");
        // And an honest run (identical to baseline) passes.
        assert!(baseline
            .regressions_vs(&baseline, SMOKE_TOLERANCE, SMOKE_SLACK_MS)
            .is_empty());
    }
}
