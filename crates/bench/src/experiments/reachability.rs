//! §1's AP-density claim, measured in the simulated office.
//!
//! The paper's second enabling observation: "transmissions from most
//! locations in our testbed reach seven or more production network APs,
//! with all but about five percent of locations reaching five or more".
//! And because ArrayTrack needs no decode, "an AP can extract information
//! from a single packet at a lower SNR than what is required to receive
//! and decode the packet", letting *more* APs cooperate.
//!
//! We place the six ArrayTrack APs plus auxiliary listener positions and
//! count, per client, how many sites hear it (a) at decode SNR (~+10 dB)
//! and (b) at ArrayTrack's detection SNR (−10 dB, §4.3.4).

use crate::report::{f1, Report};
use at_channel::geometry::pt;
use at_channel::{AntennaArray, ChannelSim, Transmitter};
use at_dsp::linear_to_db;
use at_testbed::{CaptureConfig, Deployment};

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("reachability")?;
    report.section("AP reachability at decode vs detection SNR (paper §1)");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig::default();
    // The 6 testbed APs plus 4 auxiliary listener sites, mimicking a
    // production WLAN's density.
    let mut sites: Vec<at_channel::Point> = dep.aps.iter().map(|a| a.pose.center).collect();
    sites.extend([
        pt(12.0, 12.0),
        pt(24.0, 20.0),
        pt(36.0, 6.0),
        pt(44.0, 20.0),
    ]);

    let sim = ChannelSim::new(&dep.floorplan);
    let noise_db = 10.0 * cfg.noise_power.log10();
    let decode_snr_db = 10.0;
    let detect_snr_db = -10.0;

    let mut decode_counts = vec![0usize; sites.len() + 1];
    let mut detect_counts = vec![0usize; sites.len() + 1];
    for &client in &dep.clients {
        let tx = Transmitter::at(client);
        let mut decode = 0;
        let mut detect = 0;
        for &site in &sites {
            let array = AntennaArray::ula(site, 0.0, 2);
            let p = sim.received_power(&tx, &array);
            let snr = linear_to_db(p) - noise_db;
            if snr >= decode_snr_db {
                decode += 1;
            }
            if snr >= detect_snr_db {
                detect += 1;
            }
        }
        decode_counts[decode] += 1;
        detect_counts[detect] += 1;
    }

    let at_least = |counts: &[usize], k: usize| -> f64 {
        100.0 * counts[k..].iter().sum::<usize>() as f64 / dep.clients.len() as f64
    };
    let mut rows = Vec::new();
    for k in [3usize, 5, 7, 10] {
        rows.push(vec![
            format!("≥ {k} APs"),
            f1(at_least(&decode_counts, k)),
            f1(at_least(&detect_counts, k)),
        ]);
    }
    report.table(
        &[
            "reachability",
            "% clients @ decode SNR (+10 dB)",
            "% @ detect SNR (−10 dB)",
        ],
        &rows,
    );
    report.csv(
        "reachability",
        &["k", "decode_pct", "detect_pct"],
        [3usize, 5, 7, 10].iter().map(|&k| {
            vec![
                k.to_string(),
                f1(at_least(&decode_counts, k)),
                f1(at_least(&detect_counts, k)),
            ]
        }),
    )?;
    report.line(
        "paper: most locations reach 7+, ~95% reach 5+; detection-without-decode \
         lets strictly more APs cooperate",
    );
    Ok(())
}
