//! Robustness: accuracy vs. failed APs / dead antenna elements (a Fig.
//! 14-style degradation curve for the fault-injection layer).
//!
//! Two sweeps over the office deployment, both under seeded
//! [`FaultPlan`]s so the committed `results/robustness_curve.csv` is
//! reproducible bit-for-bit:
//!
//! - **ap_outage** — `k` of 6 APs powered off (drawn per trial seed); the
//!   survivors fuse through the server's quorum path. Clients whose
//!   surviving deployment cannot support a fix are counted as typed
//!   failures, never panics.
//! - **antenna_dropout** — `k` of 8 in-row elements dead at *every* AP
//!   (drawn per AP); spectra are re-acquired through the fault-injected
//!   capture path, so the crippled aperture degrades MUSIC itself.
//!
//! Regenerate with `cargo run --release -p at-bench --bin exp_robustness`.

use crate::report::{f3, Report};
use at_core::faults::FaultPlan;
use at_core::pipeline::ArrayTrackServer;
use at_core::AoaSpectrum;
use at_testbed::acquire::{acquire_spectrum, AcquireConfig};
use at_testbed::{compute_all_spectra, parallel_map, Deployment, ErrorStats, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outage trials per failure count (different random AP subsets).
const OUTAGE_TRIALS: u64 = 5;

/// One sweep row: failure level → outcome statistics.
struct SweepRow {
    failed: usize,
    attempts: usize,
    fixes: usize,
    stats: Option<ErrorStats>,
}

impl SweepRow {
    fn to_csv(&self, sweep: &str) -> Vec<String> {
        let (median, mean, p90) = match &self.stats {
            Some(s) => (f3(s.median()), f3(s.mean()), f3(s.percentile(90.0))),
            None => ("nan".into(), "nan".into(), "nan".into()),
        };
        vec![
            sweep.into(),
            self.failed.to_string(),
            self.attempts.to_string(),
            self.fixes.to_string(),
            f3(self.fixes as f64 / self.attempts.max(1) as f64),
            median,
            mean,
            p90,
        ]
    }

    fn to_table(&self) -> Vec<String> {
        let mut row = vec![
            self.failed.to_string(),
            format!("{}/{}", self.fixes, self.attempts),
        ];
        match &self.stats {
            Some(s) => row.extend([f3(s.median()), f3(s.mean()), f3(s.percentile(90.0))]),
            None => row.extend(["-".into(), "-".into(), "-".into()]),
        }
        row
    }
}

/// Fuses per-client spectra from the live APs through the degradation
/// path, tallying typed quorum failures instead of dying on them.
fn fuse_clients(
    dep: &Deployment,
    spectra: &[Vec<Option<AoaSpectrum>>],
    live: &[usize],
) -> (Vec<f64>, usize, usize) {
    let mut server = ArrayTrackServer::new(dep.search_region());
    for ap in 0..dep.aps.len() {
        if !live.contains(&ap) {
            for _ in 0..server.policy().down_after {
                server.report_acquisition_failure(ap);
            }
        }
    }
    let mut errors = Vec::new();
    let (mut attempts, mut fixes) = (0, 0);
    for (ci, per_ap) in spectra.iter().enumerate() {
        server.clear();
        for &ap in live {
            if let Some(spec) = &per_ap[ap] {
                server.add_observation_from(ap, dep.aps[ap].pose, spec.clone(), 0);
            }
        }
        attempts += 1;
        if let Ok(est) = server.try_localize() {
            fixes += 1;
            errors.push(est.position.distance(dep.clients[ci]));
        }
    }
    (errors, attempts, fixes)
}

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("robustness")?;
    report.section("Graceful degradation: accuracy vs failed APs / dead elements");

    let dep = Deployment::office(42);
    let mut cfg = ExperimentConfig::arraytrack(42);
    cfg.frames = 2; // suppression over a pair keeps the sweep affordable
    let n_aps = dep.aps.len();

    report.line("computing healthy spectra (shared by the outage sweep)...");
    let healthy: Vec<Vec<Option<AoaSpectrum>>> = compute_all_spectra(&dep, &cfg)
        .into_iter()
        .map(|per_ap| per_ap.into_iter().map(Some).collect())
        .collect();

    // ---- Sweep 1: AP outages. -------------------------------------------
    let mut outage_rows = Vec::new();
    for failed in 0..=n_aps {
        let trials = if failed == 0 || failed == n_aps {
            1 // only one subset exists
        } else {
            OUTAGE_TRIALS
        };
        let (mut errors, mut attempts, mut fixes) = (Vec::new(), 0, 0);
        for trial in 0..trials {
            let plan = FaultPlan::random_outages(n_aps, failed, 0xA110 + trial);
            let (e, a, f) = fuse_clients(&dep, &healthy, &plan.live_aps());
            errors.extend(e);
            attempts += a;
            fixes += f;
        }
        outage_rows.push(SweepRow {
            failed,
            attempts,
            fixes,
            stats: (!errors.is_empty()).then(|| ErrorStats::new(errors)),
        });
    }
    report.line("AP outage sweep (k of 6 APs down, survivors fuse):");
    report.table(
        &["APs down", "fixes", "median(m)", "mean(m)", "p90(m)"],
        &outage_rows
            .iter()
            .map(SweepRow::to_table)
            .collect::<Vec<_>>(),
    );

    // ---- Sweep 2: antenna element dropout. ------------------------------
    let dead_counts = [0usize, 1, 2, 3, 4, 6, 8];
    let mut dropout_rows = Vec::new();
    for &dead in &dead_counts {
        let plan =
            FaultPlan::random_dead_elements(n_aps, cfg.capture.elements, dead, 0xE1E + dead as u64);
        let acq = AcquireConfig::default();
        // Re-acquire every (client, AP) spectrum through the crippled
        // arrays; a `None` is a typed acquisition failure (all-dead AP).
        let clients: Vec<usize> = (0..dep.clients.len()).collect();
        let spectra: Vec<Vec<Option<AoaSpectrum>>> =
            parallel_map(&clients, cfg.threads, |_, &ci| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (1000 + ci as u64));
                (0..n_aps)
                    .map(|ap| {
                        acquire_spectrum(&dep, ap, ci, &cfg, &plan, &acq, &mut rng)
                            .ok()
                            .map(|a| a.spectrum)
                    })
                    .collect()
            });
        let live: Vec<usize> = (0..n_aps).collect();
        let (errors, attempts, fixes) = fuse_clients(&dep, &spectra, &live);
        dropout_rows.push(SweepRow {
            failed: dead,
            attempts,
            fixes,
            stats: (!errors.is_empty()).then(|| ErrorStats::new(errors)),
        });
        report.line(format!("  dropout {dead}/8 done"));
    }
    report.line("antenna dropout sweep (k of 8 in-row elements dead at every AP):");
    report.table(
        &["elems dead", "fixes", "median(m)", "mean(m)", "p90(m)"],
        &dropout_rows
            .iter()
            .map(SweepRow::to_table)
            .collect::<Vec<_>>(),
    );

    let csv: Vec<Vec<String>> = outage_rows
        .iter()
        .map(|r| r.to_csv("ap_outage"))
        .chain(dropout_rows.iter().map(|r| r.to_csv("antenna_dropout")))
        .collect();
    report.csv(
        "curve",
        &[
            "sweep", "failed", "clients", "fixes", "fix_rate", "median_m", "mean_m", "p90_m",
        ],
        csv,
    )?;

    // Headline shape checks mirrored by the robustness test tier.
    let med = |rows: &[SweepRow], k: usize| {
        rows.iter()
            .find(|r| r.failed == k)
            .and_then(|r| r.stats.as_ref())
            .map(ErrorStats::median)
            .unwrap_or(f64::NAN)
    };
    report.line(format!(
        "shape: outage medians 0→{:.2} m, 3→{:.2} m (ratio {:.2}x); full outage fix rate {}",
        med(&outage_rows, 0),
        med(&outage_rows, 3),
        med(&outage_rows, 3) / med(&outage_rows, 0),
        outage_rows.last().map_or(0, |r| r.fixes),
    ));
    Ok(())
}
