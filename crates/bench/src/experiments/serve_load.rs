//! Load generation against the networked location service (`at-serve`):
//! sustained-throughput, overload, and graceful-drain phases over loopback
//! TCP, committed to `BENCH_SERVE.json` at the repo root.
//!
//! Three phases:
//!
//! 1. **sustained** — concurrent clients with pre-filled six-AP sessions
//!    issue localize requests back to back; reports responses/sec and the
//!    client-observed p50/p95/p99 round-trip latency.
//! 2. **overload** — a deliberately tiny server (one worker, depth-1
//!    queues) under a 32-client storm with client retry disabled: offered
//!    load beyond capacity must *shed* (typed `Overloaded` frames, shed
//!    counter > 0) while the server keeps answering — proven by a
//!    ping + localize after the storm.
//! 3. **drain** — a request is parked mid-batch-window while the server
//!    shuts down; graceful drain must still answer it with a fix.
//!
//! `--smoke` runs the same three phases at CI scale (seconds, not
//! minutes) and exits non-zero if the sustained throughput collapses
//! below [`SMOKE_MIN_RPS`] or the shed/drain behaviors disappear.

use crate::report::Report;
use at_channel::geometry::pt;
use at_core::health::HealthPolicy;
use at_core::synthesis::SearchRegion;
use at_core::AoaSpectrum;
use at_serve::{
    spawn, AdaptivePolicy, BatchPolicy, Client, ClientConfig, ClientError, ServeConfig,
    ServiceConfig,
};
use at_testbed::office;
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Where the committed JSON results live (repo root).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json");

/// Spectrum resolution of the workload (the paper pipeline's MUSIC scan).
const BINS: usize = 720;

/// Smoke gate: the sustained phase must clear this rate. Far below the
/// committed baseline on purpose — the gate catches collapse (a lost
/// batch path, an accidental serial queue), not scheduler noise.
const SMOKE_MIN_RPS: f64 = 100.0;

/// Percentile of a sample set, nearest-rank on the sorted copy.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The office deployment's geometry as a wire service (synthetic lobe
/// spectra stand in for the radio path: the load target is the server,
/// not the channel simulator).
fn office_service() -> ServiceConfig {
    ServiceConfig {
        poses: office::ap_poses()
            .into_iter()
            .map(|(center, axis_angle)| at_core::synthesis::ApPose { center, axis_angle })
            .collect(),
        region: SearchRegion::new(pt(0.0, 0.0), pt(office::WIDTH, office::DEPTH)),
        bins: BINS,
        policy: HealthPolicy::default(),
    }
}

/// A clean single-lobe spectrum aimed from AP `ap` at `target`.
fn lobe_spectrum(
    service: &ServiceConfig,
    ap: usize,
    target: at_channel::geometry::Point,
) -> AoaSpectrum {
    let bearing = service.poses[ap].bearing_to(target);
    AoaSpectrum::from_fn(BINS, |t| {
        let d = at_channel::geometry::angle_diff(t, bearing);
        (-(d / 0.22).powi(2)).exp() + 0.01
    })
}

/// Connects and fills a session with all six AP spectra for `target`.
fn primed_client(
    addr: SocketAddr,
    service: &ServiceConfig,
    target: at_channel::geometry::Point,
    cfg: ClientConfig,
) -> Client {
    let mut c = Client::connect(addr, cfg).expect("connect");
    for ap in 0..service.poses.len() {
        c.submit(ap as u32, 0, &lobe_spectrum(service, ap, target))
            .expect("submit");
    }
    c
}

struct SustainedResult {
    clients: usize,
    workers: usize,
    responses: usize,
    seconds: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Sustained phase: `clients` threads, `per_client` localize requests
/// each, against a production-shaped server.
fn run_sustained(report: &Report, clients: usize, per_client: usize) -> SustainedResult {
    let service = office_service();
    let cfg_workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let cfg = ServeConfig {
        workers: cfg_workers,
        admission_depth: 128,
        exec_depth: 8,
        batch: BatchPolicy::default(),
        adaptive: Some(AdaptivePolicy::default()),
        retry_after_ms: 5,
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let service = service.clone();
            thread::spawn(move || {
                let target = pt(
                    4.0 + (ci as f64 * 5.3) % (office::WIDTH - 8.0),
                    3.0 + (ci as f64 * 2.9) % (office::DEPTH - 6.0),
                );
                let mut c = primed_client(addr, &service, target, ClientConfig::default());
                let mut latencies_ms = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    c.localize(None).expect("sustained fix");
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.fixes as usize, clients * per_client);

    let result = SustainedResult {
        clients,
        workers: cfg_workers,
        responses: latencies.len(),
        seconds,
        rps: latencies.len() as f64 / seconds,
        p50_ms: percentile(&latencies, 0.5),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
    };
    report.line(format!(
        "  sustained: {} responses in {:.2} s = {:.0} rps; latency p50 {:.2} / p95 {:.2} / p99 {:.2} ms",
        result.responses, result.seconds, result.rps, result.p50_ms, result.p95_ms, result.p99_ms,
    ));
    result
}

struct OverloadResult {
    clients: usize,
    offered: usize,
    fixes: usize,
    shed: usize,
    responsive_after: bool,
}

/// Overload phase: a storm against a deliberately tiny server.
fn run_overload(report: &Report, clients: usize, per_client: usize) -> OverloadResult {
    let service = office_service();
    let cfg = ServeConfig {
        workers: 1,
        admission_depth: 1,
        exec_depth: 1,
        batch: BatchPolicy {
            window: Duration::from_millis(1),
            max_batch: 2,
        },
        adaptive: None,
        retry_after_ms: 5,
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let fixes = Arc::new(AtomicUsize::new(0));
    let sheds = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let service = service.clone();
            let fixes = Arc::clone(&fixes);
            let sheds = Arc::clone(&sheds);
            thread::spawn(move || {
                let target = pt(6.0 + ci as f64 % 30.0, 4.0 + ci as f64 % 15.0);
                // Retry disabled: every shed surfaces as Overloaded.
                let cfg = ClientConfig {
                    max_attempts: 1,
                    ..ClientConfig::default()
                };
                let mut c = primed_client(addr, &service, target, cfg);
                for _ in 0..per_client {
                    match c.localize(None) {
                        Ok(_) => fixes.fetch_add(1, Ordering::Relaxed),
                        Err(ClientError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error under overload: {e}"),
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread");
    }

    // Still fully responsive after the storm?
    let mut c = primed_client(addr, &service, pt(10.0, 5.0), ClientConfig::default());
    let responsive_after = c.ping(7).is_ok() && c.localize(None).is_ok();
    let stats = server.shutdown();

    let result = OverloadResult {
        clients,
        offered: clients * per_client,
        fixes: fixes.load(Ordering::Relaxed),
        shed: sheds.load(Ordering::Relaxed),
        responsive_after,
    };
    assert_eq!(result.fixes + result.shed, result.offered);
    assert_eq!(stats.shed, result.shed as u64);
    report.line(format!(
        "  overload: {} offered -> {} fixes, {} shed (typed Overloaded), responsive after: {}",
        result.offered, result.fixes, result.shed, result.responsive_after,
    ));
    result
}

/// Drain phase: shutdown must answer the request parked in the batcher.
fn run_drain(report: &Report) -> bool {
    let service = office_service();
    let cfg = ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 8,
        },
        adaptive: None,
        ..ServeConfig::default()
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();
    let in_flight = thread::spawn(move || {
        let mut c = primed_client(addr, &service, pt(14.0, 9.0), ClientConfig::default());
        c.localize(None)
    });
    thread::sleep(Duration::from_millis(80));
    let stats = server.shutdown();
    let drained = in_flight.join().expect("drain thread").is_ok() && stats.fixes == 1;
    report.line(format!(
        "  drain: in-flight request answered during shutdown: {drained}"
    ));
    drained
}

fn write_json(
    sustained: &SustainedResult,
    overload: &OverloadResult,
    drained: bool,
) -> std::io::Result<()> {
    // Host context rides along so the committed numbers can be traced to
    // the machine that produced them: the ROADMAP's "multi-core loadgen
    // baseline" item asks for a re-baseline whenever this repo's numbers
    // were taken on a single core and the current host has more.
    let json = format!(
        "{{\n  \"workload\": \"office geometry, 6 APs, {BINS}-bin lobe spectra, loopback TCP\",\n  {},\n  \"sustained\": {{ \"clients\": {}, \"workers\": {}, \"responses\": {}, \"seconds\": {:.2}, \"responses_per_sec\": {:.0}, \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3} }} }},\n  \"overload\": {{ \"clients\": {}, \"offered\": {}, \"fixes\": {}, \"shed\": {}, \"responsive_after\": {} }},\n  \"drain\": {{ \"in_flight_drained\": {} }}\n}}\n",
        crate::experiments::perf::host_context_json(),
        sustained.clients,
        sustained.workers,
        sustained.responses,
        sustained.seconds,
        sustained.rps,
        sustained.p50_ms,
        sustained.p95_ms,
        sustained.p99_ms,
        overload.clients,
        overload.offered,
        overload.fixes,
        overload.shed,
        overload.responsive_after,
        drained,
    );
    let mut f = std::fs::File::create(BASELINE_PATH)?;
    f.write_all(json.as_bytes())?;
    println!("  -> wrote {BASELINE_PATH}");
    Ok(())
}

/// Full loadgen run: refreshes `BENCH_SERVE.json` at the repo root.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("serve")?;
    report.section("at-serve loadgen (loopback)");
    let sustained = run_sustained(&report, 8, 600);
    let overload = run_overload(&report, 32, 16);
    let drained = run_drain(&report);
    report.csv(
        "loadgen",
        &["metric", "value"],
        vec![
            vec!["responses_per_sec".into(), format!("{:.0}", sustained.rps)],
            vec!["latency_p50_ms".into(), format!("{:.3}", sustained.p50_ms)],
            vec!["latency_p95_ms".into(), format!("{:.3}", sustained.p95_ms)],
            vec!["latency_p99_ms".into(), format!("{:.3}", sustained.p99_ms)],
            vec!["overload_shed".into(), overload.shed.to_string()],
            vec!["drained".into(), drained.to_string()],
        ],
    )?;
    write_json(&sustained, &overload, drained)?;
    if sustained.rps < 1000.0 {
        report.line(format!(
            "  WARNING: sustained rate {:.0} rps below the 1k target on this host",
            sustained.rps
        ));
    }
    Ok(())
}

/// CI serve-smoke gate: same phases, seconds-scale, non-zero exit when
/// throughput collapses or shed/drain behavior disappears.
pub fn run_smoke() -> std::io::Result<()> {
    let report = Report::new("serve_smoke")?;
    report.section("serve-smoke: loopback sanity at CI scale");
    let sustained = run_sustained(&report, 4, 60);
    let overload = run_overload(&report, 16, 8);
    let drained = run_drain(&report);
    let mut failures = Vec::new();
    if sustained.rps < SMOKE_MIN_RPS {
        failures.push(format!(
            "sustained {:.0} rps below the {SMOKE_MIN_RPS:.0} floor",
            sustained.rps
        ));
    }
    if overload.shed == 0 {
        failures.push("overload run shed nothing — admission control inert".into());
    }
    if !overload.responsive_after {
        failures.push("server unresponsive after the overload storm".into());
    }
    if !drained {
        failures.push("graceful shutdown dropped an in-flight request".into());
    }
    if failures.is_empty() {
        report.line("  serve-smoke: all gates passed");
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "serve-smoke failed: {}",
            failures.join("; ")
        )))
    }
}
