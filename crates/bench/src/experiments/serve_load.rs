//! Load generation against the networked location service (`at-serve`):
//! sustained-throughput, overload, and graceful-drain phases over loopback
//! TCP, committed to `BENCH_SERVE.json` at the repo root.
//!
//! Four phases:
//!
//! 1. **sustained** — concurrent clients with pre-filled six-AP sessions
//!    issue localize requests back to back; reports responses/sec and the
//!    client-observed p50/p95/p99 round-trip latency.
//! 2. **overload** — a deliberately tiny server (one worker, depth-1
//!    queues) under a 32-client storm with client retry disabled: offered
//!    load beyond capacity must *shed* (typed `Overloaded` frames, shed
//!    counter > 0) while the server keeps answering — proven by a
//!    ping + localize after the storm.
//! 3. **mixed** — the Figure 1 topology: six AP ingestion connections
//!    stream keyed spectra over the protocol-v3 *quantized* uplink while
//!    app connections localize by key, under a resident-spectra cap of
//!    half the working set. A sampler asserts the
//!    `at_serve_sessions_spectra_resident` gauge never exceeds the cap;
//!    before the storm a quiesced keyed fix is checked bit-exact against
//!    the in-process server (raw and lossless-delta uplinks) and the
//!    quantized path's per-key fix displacement is measured against the
//!    raw fusion. The server's uplink accounting yields the
//!    compression-ratio number committed to `BENCH_SERVE.json`.
//! 4. **drain** — a request is parked mid-batch-window while the server
//!    shuts down; graceful drain must still answer it with a fix.
//!
//! `--smoke` runs the same four phases at CI scale (seconds, not
//! minutes) and exits non-zero if the sustained throughput collapses
//! below [`SMOKE_MIN_RPS`], the shed/drain behaviors disappear, the
//! keyed parity breaks, the resident gauge exceeds the cap, the
//! quantized uplink spends more than 0.15× the raw bytes per spectrum,
//! the median quantized fix drifts ≥ 1 mm from the raw path, or the
//! lossless replay stops being bit-exact.

use crate::report::Report;
use at_channel::geometry::pt;
use at_core::health::HealthPolicy;
use at_core::synthesis::SearchRegion;
use at_core::{AoaSpectrum, ArrayTrackServer};
use at_serve::{
    spawn, AdaptivePolicy, ApClient, AppClient, BatchPolicy, Client, ClientConfig, ClientError,
    Encoding, ServeConfig, ServiceConfig, SessionPolicy,
};
use at_testbed::office;
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Where the committed JSON results live (repo root).
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json");

/// Spectrum resolution of the workload (the paper pipeline's MUSIC scan).
const BINS: usize = 720;

/// Smoke gate: the sustained phase must clear this rate. Far below the
/// committed baseline on purpose — the gate catches collapse (a lost
/// batch path, an accidental serial queue), not scheduler noise.
const SMOKE_MIN_RPS: f64 = 100.0;

/// Percentile of a sample set, nearest-rank on the sorted copy.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The office deployment's geometry as a wire service (synthetic lobe
/// spectra stand in for the radio path: the load target is the server,
/// not the channel simulator).
fn office_service() -> ServiceConfig {
    ServiceConfig {
        poses: office::ap_poses()
            .into_iter()
            .map(|(center, axis_angle)| at_core::synthesis::ApPose { center, axis_angle })
            .collect(),
        region: SearchRegion::new(pt(0.0, 0.0), pt(office::WIDTH, office::DEPTH)),
        bins: BINS,
        policy: HealthPolicy::default(),
    }
}

/// A clean single-lobe spectrum aimed from AP `ap` at `target`.
fn lobe_spectrum(
    service: &ServiceConfig,
    ap: usize,
    target: at_channel::geometry::Point,
) -> AoaSpectrum {
    let bearing = service.poses[ap].bearing_to(target);
    AoaSpectrum::from_fn(BINS, |t| {
        let d = at_channel::geometry::angle_diff(t, bearing);
        (-(d / 0.22).powi(2)).exp() + 0.01
    })
}

/// Connects and fills a session with all six AP spectra for `target`.
fn primed_client(
    addr: SocketAddr,
    service: &ServiceConfig,
    target: at_channel::geometry::Point,
    cfg: ClientConfig,
) -> Client {
    let mut c = Client::connect(addr, cfg).expect("connect");
    for ap in 0..service.poses.len() {
        c.submit(ap as u32, 0, &lobe_spectrum(service, ap, target))
            .expect("submit");
    }
    c
}

struct SustainedResult {
    clients: usize,
    workers: usize,
    responses: usize,
    seconds: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Sustained phase: `clients` threads, `per_client` localize requests
/// each, against a production-shaped server.
fn run_sustained(report: &Report, clients: usize, per_client: usize) -> SustainedResult {
    let service = office_service();
    let cfg_workers = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(4);
    let cfg = ServeConfig {
        workers: cfg_workers,
        admission_depth: 128,
        exec_depth: 8,
        batch: BatchPolicy::default(),
        adaptive: Some(AdaptivePolicy::default()),
        retry_after_ms: 5,
        ..ServeConfig::default()
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let service = service.clone();
            thread::spawn(move || {
                let target = pt(
                    4.0 + (ci as f64 * 5.3) % (office::WIDTH - 8.0),
                    3.0 + (ci as f64 * 2.9) % (office::DEPTH - 6.0),
                );
                let mut c = primed_client(addr, &service, target, ClientConfig::default());
                let mut latencies_ms = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    c.localize(None).expect("sustained fix");
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.fixes as usize, clients * per_client);

    let result = SustainedResult {
        clients,
        workers: cfg_workers,
        responses: latencies.len(),
        seconds,
        rps: latencies.len() as f64 / seconds,
        p50_ms: percentile(&latencies, 0.5),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
    };
    report.line(format!(
        "  sustained: {} responses in {:.2} s = {:.0} rps; latency p50 {:.2} / p95 {:.2} / p99 {:.2} ms",
        result.responses, result.seconds, result.rps, result.p50_ms, result.p95_ms, result.p99_ms,
    ));
    result
}

struct OverloadResult {
    clients: usize,
    offered: usize,
    fixes: usize,
    shed: usize,
    responsive_after: bool,
}

/// Overload phase: a storm against a deliberately tiny server.
fn run_overload(report: &Report, clients: usize, per_client: usize) -> OverloadResult {
    let service = office_service();
    let cfg = ServeConfig {
        workers: 1,
        admission_depth: 1,
        exec_depth: 1,
        batch: BatchPolicy {
            window: Duration::from_millis(1),
            max_batch: 2,
        },
        adaptive: None,
        retry_after_ms: 5,
        ..ServeConfig::default()
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let fixes = Arc::new(AtomicUsize::new(0));
    let sheds = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let service = service.clone();
            let fixes = Arc::clone(&fixes);
            let sheds = Arc::clone(&sheds);
            thread::spawn(move || {
                let target = pt(6.0 + ci as f64 % 30.0, 4.0 + ci as f64 % 15.0);
                // Retry disabled: every shed surfaces as Overloaded.
                let cfg = ClientConfig {
                    max_attempts: 1,
                    ..ClientConfig::default()
                };
                let mut c = primed_client(addr, &service, target, cfg);
                for _ in 0..per_client {
                    match c.localize(None) {
                        Ok(_) => fixes.fetch_add(1, Ordering::Relaxed),
                        Err(ClientError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error under overload: {e}"),
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread");
    }

    // Still fully responsive after the storm?
    let mut c = primed_client(addr, &service, pt(10.0, 5.0), ClientConfig::default());
    let responsive_after = c.ping(7).is_ok() && c.localize(None).is_ok();
    let stats = server.shutdown();

    let result = OverloadResult {
        clients,
        offered: clients * per_client,
        fixes: fixes.load(Ordering::Relaxed),
        shed: sheds.load(Ordering::Relaxed),
        responsive_after,
    };
    assert_eq!(result.fixes + result.shed, result.offered);
    assert_eq!(stats.shed, result.shed as u64);
    report.line(format!(
        "  overload: {} offered -> {} fixes, {} shed (typed Overloaded), responsive after: {}",
        result.offered, result.fixes, result.shed, result.responsive_after,
    ));
    result
}

/// Drain phase: shutdown must answer the request parked in the batcher.
fn run_drain(report: &Report) -> bool {
    let service = office_service();
    let cfg = ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 8,
        },
        adaptive: None,
        ..ServeConfig::default()
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();
    let in_flight = thread::spawn(move || {
        let mut c = primed_client(addr, &service, pt(14.0, 9.0), ClientConfig::default());
        c.localize(None)
    });
    thread::sleep(Duration::from_millis(80));
    let stats = server.shutdown();
    let drained = in_flight.join().expect("drain thread").is_ok() && stats.fixes == 1;
    report.line(format!(
        "  drain: in-flight request answered during shutdown: {drained}"
    ));
    drained
}

struct MixedResult {
    ap_conns: usize,
    app_threads: usize,
    keys: usize,
    cap: usize,
    submits: usize,
    fixes: usize,
    unresolved: usize,
    shed: usize,
    max_resident_spectra: f64,
    evicted_cap: u64,
    parity_ok: bool,
    seconds: f64,
    /// v3 compressed submissions admitted (pre-storm probes + storm).
    compressed_frames: u64,
    /// Bytes those submissions actually put on the wire.
    uplink_wire_bytes: u64,
    /// Bytes the same submissions would have cost as raw v2 frames.
    uplink_raw_equiv_bytes: u64,
    /// raw-equivalent / wire — the ≥8× acceptance number.
    compression_ratio: f64,
    /// Median fix displacement of the quantized wire path vs the raw
    /// in-process fusion, metres, across all keys.
    p50_displacement_m: f64,
    /// Lossless-delta replay landed the bit-identical fix.
    lossless_ok: bool,
}

/// Mixed phase: the paper's Figure 1 topology under load. Six AP
/// ingestion connections stream keyed spectra for `keys` tracked clients
/// while `apps` application connections localize by key — against a
/// resident-spectra cap of *half* the working set, so cap eviction runs
/// continuously. A sampler thread watches the
/// `at_serve_sessions_spectra_resident` gauge the whole time: its maximum
/// must never exceed the cap (the acceptance criterion committed to
/// BENCH_SERVE.json). Before the storm, one quiesced keyed fix is checked
/// bit-exact against the in-process `ArrayTrackServer` on the same
/// spectra.
fn run_mixed(
    report: &Report,
    keys: usize,
    rounds: usize,
    apps: usize,
    per_app: usize,
) -> MixedResult {
    let service = office_service();
    let n_aps = service.poses.len();
    let cap = (keys * n_aps / 2).max(n_aps);
    let cfg = ServeConfig {
        session: SessionPolicy {
            max_resident_spectra: cap,
            // Only cap pressure evicts in this phase: idleness and
            // staleness are parked out of the measurement.
            idle_timeout: Duration::from_secs(3600),
            refresh_interval: Duration::from_secs(3600),
            ..SessionPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = spawn(service.clone(), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    // One spectrum set per key, precomputed so the storm measures the
    // server, not the lobe generator.
    let targets: Vec<_> = (0..keys)
        .map(|k| {
            pt(
                4.0 + (k as f64 * 5.3) % (office::WIDTH - 8.0),
                3.0 + (k as f64 * 2.9) % (office::DEPTH - 6.0),
            )
        })
        .collect();
    let spectra: Arc<Vec<Vec<AoaSpectrum>>> = Arc::new(
        targets
            .iter()
            .map(|&t| {
                (0..n_aps)
                    .map(|ap| lobe_spectrum(&service, ap, t))
                    .collect()
            })
            .collect(),
    );

    // Quiesced parity check on key 0 before the storm: keyed wire fix ==
    // in-process fix, bit for bit.
    let mut reference = ArrayTrackServer::new(service.region);
    for (ap, spectrum) in spectra[0].iter().enumerate() {
        reference.add_observation_from(ap, service.poses[ap], spectrum.clone(), 0);
    }
    let expected = reference.try_localize().expect("reference fix");
    let parity_ok = {
        let mut ap_conn = ApClient::connect(addr, ClientConfig::default()).expect("ap connect");
        for (ap, spectrum) in spectra[0].iter().enumerate() {
            ap_conn
                .submit(0, ap as u32, 0, spectrum)
                .expect("parity submit");
        }
        let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app connect");
        let fix = app.localize(0, None).expect("parity fix");
        fix.position.x.to_bits() == expected.position.x.to_bits()
            && fix.position.y.to_bits() == expected.position.y.to_bits()
            && fix.likelihood.to_bits() == expected.likelihood.to_bits()
    };

    // Lossless-delta replay of the same session must land the identical
    // fix: the XOR-delta wire form (protocol v3) is bit-exact end to end.
    let lossless_ok = {
        let mut ap_conn =
            ApClient::connect_with(addr, ClientConfig::default(), Encoding::LosslessDelta)
                .expect("ap connect");
        for (ap, spectrum) in spectra[0].iter().enumerate() {
            ap_conn
                .submit(0, ap as u32, 0, spectrum)
                .expect("lossless submit");
        }
        let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app connect");
        let fix = app.localize(0, None).expect("lossless fix");
        fix.position.x.to_bits() == expected.position.x.to_bits()
            && fix.position.y.to_bits() == expected.position.y.to_bits()
            && fix.likelihood.to_bits() == expected.likelihood.to_bits()
    };

    // Quantized-uplink displacement, key by key against the raw
    // in-process fix, before the storm muddies the sessions. The budget
    // is a *median*: quantization noise (~2·10⁻⁴ relative) usually does
    // not move the refined optimum at all, but near-plateau geometries
    // can wander centimetres.
    let mut displacements = Vec::with_capacity(keys);
    {
        let mut ap_conn =
            ApClient::connect_with(addr, ClientConfig::default(), Encoding::Quantized)
                .expect("ap connect");
        let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app connect");
        for key in 0..keys {
            let mut reference = ArrayTrackServer::new(service.region);
            for (ap, spectrum) in spectra[key].iter().enumerate() {
                reference.add_observation_from(ap, service.poses[ap], spectrum.clone(), 0);
                ap_conn
                    .submit(key as u64, ap as u32, 0, spectrum)
                    .expect("quantized submit");
            }
            let raw_fix = reference.try_localize().expect("reference fix");
            let fix = app.localize(key as u64, None).expect("quantized fix");
            let dx = fix.position.x - raw_fix.position.x;
            let dy = fix.position.y - raw_fix.position.y;
            displacements.push((dx * dx + dy * dy).sqrt());
        }
        assert_eq!(
            ap_conn.encoding(),
            Encoding::Quantized,
            "no fallback against our own server"
        );
    }
    displacements.sort_by(|a, b| a.partial_cmp(b).expect("finite displacements"));
    let p50_displacement_m = displacements[keys / 2];

    // Gauge sampler: the cap invariant is asserted on what an operator
    // would actually see, not on internal state.
    let resident_gauge =
        at_obs::global().gauge(at_obs::names::SERVE_SESSIONS_SPECTRA_RESIDENT, &[]);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let gauge = Arc::clone(&resident_gauge);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut max = 0.0f64;
            while !stop.load(Ordering::Acquire) {
                max = max.max(gauge.get());
                thread::sleep(Duration::from_millis(1));
            }
            max.max(gauge.get())
        })
    };

    let start = Instant::now();
    let writers: Vec<_> = (0..n_aps)
        .map(|ap| {
            let spectra = Arc::clone(&spectra);
            thread::spawn(move || {
                // The storm runs entirely over the v3 quantized uplink —
                // the compression numbers below are measured under the
                // same write pressure the cap/gauge invariants are.
                let mut conn =
                    ApClient::connect_with(addr, ClientConfig::default(), Encoding::Quantized)
                        .expect("ap");
                for round in 0..rounds {
                    for key in 0..spectra.len() {
                        // Stagger per-AP key order so writers collide on
                        // different sessions each round.
                        let key = (key + ap * 7 + round) % spectra.len();
                        conn.submit(key as u64, ap as u32, 0, &spectra[key][ap])
                            .expect("storm submit");
                    }
                }
            })
        })
        .collect();
    let fixes = Arc::new(AtomicUsize::new(0));
    let unresolved = Arc::new(AtomicUsize::new(0));
    let sheds = Arc::new(AtomicUsize::new(0));
    let readers: Vec<_> = (0..apps)
        .map(|ai| {
            let fixes = Arc::clone(&fixes);
            let unresolved = Arc::clone(&unresolved);
            let sheds = Arc::clone(&sheds);
            thread::spawn(move || {
                let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app");
                for i in 0..per_app {
                    let key = ((i * 13 + ai * 5) % keys) as u64;
                    match app.localize(key, None) {
                        Ok(_) => fixes.fetch_add(1, Ordering::Relaxed),
                        // Cap pressure may have displaced the key between
                        // its last submit and this query: a typed localize
                        // error is correct behavior, not a failure.
                        Err(ClientError::Localize(_)) => unresolved.fetch_add(1, Ordering::Relaxed),
                        Err(ClientError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error under mixed load: {e}"),
                    };
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("ap thread");
    }
    for r in readers {
        r.join().expect("app thread");
    }
    let seconds = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let max_resident_spectra = sampler.join().expect("sampler");
    let stats = server.shutdown();

    let compression_ratio = if stats.uplink_compressed_bytes > 0 {
        stats.uplink_raw_equiv_bytes as f64 / stats.uplink_compressed_bytes as f64
    } else {
        1.0
    };
    let result = MixedResult {
        ap_conns: n_aps,
        app_threads: apps,
        keys,
        cap,
        // storm + raw/lossless parity priming + quantized probes
        submits: n_aps * rounds * keys + n_aps * (2 + keys),
        fixes: fixes.load(Ordering::Relaxed),
        unresolved: unresolved.load(Ordering::Relaxed),
        shed: sheds.load(Ordering::Relaxed),
        max_resident_spectra,
        evicted_cap: stats.sessions_evicted_cap,
        parity_ok,
        seconds,
        compressed_frames: stats.submits_compressed,
        uplink_wire_bytes: stats.uplink_compressed_bytes,
        uplink_raw_equiv_bytes: stats.uplink_raw_equiv_bytes,
        compression_ratio,
        p50_displacement_m,
        lossless_ok,
    };
    report.line(format!(
        "  mixed: {} APs x {} keys, {} app fixes (+{} unresolved, {} shed) in {:.2} s; \
         resident max {:.0} / cap {}, {} cap evictions, parity {}",
        result.ap_conns,
        result.keys,
        result.fixes,
        result.unresolved,
        result.shed,
        result.seconds,
        result.max_resident_spectra,
        result.cap,
        result.evicted_cap,
        if result.parity_ok {
            "bit-exact"
        } else {
            "BROKEN"
        },
    ));
    report.line(format!(
        "  mixed uplink: {} quantized frames, {} wire bytes vs {} raw-equivalent = {:.1}x; \
         p50 fix displacement {:.2e} m, lossless {}",
        result.compressed_frames,
        result.uplink_wire_bytes,
        result.uplink_raw_equiv_bytes,
        result.compression_ratio,
        result.p50_displacement_m,
        if result.lossless_ok {
            "bit-exact"
        } else {
            "BROKEN"
        },
    ));
    result
}

fn write_json(
    sustained: &SustainedResult,
    overload: &OverloadResult,
    mixed: &MixedResult,
    drained: bool,
) -> std::io::Result<()> {
    // Host context rides along so the committed numbers can be traced to
    // the machine that produced them: the ROADMAP's "multi-core loadgen
    // baseline" item asks for a re-baseline whenever this repo's numbers
    // were taken on a single core and the current host has more.
    let json = format!(
        "{{\n  \"workload\": \"office geometry, 6 APs, {BINS}-bin lobe spectra, loopback TCP\",\n  {},\n  \"sustained\": {{ \"clients\": {}, \"workers\": {}, \"responses\": {}, \"seconds\": {:.2}, \"responses_per_sec\": {:.0}, \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3} }} }},\n  \"overload\": {{ \"clients\": {}, \"offered\": {}, \"fixes\": {}, \"shed\": {}, \"responsive_after\": {} }},\n  \"mixed\": {{ \"ap_connections\": {}, \"app_threads\": {}, \"keys\": {}, \"resident_spectra_cap\": {}, \"submits\": {}, \"fixes\": {}, \"unresolved\": {}, \"shed\": {}, \"max_resident_spectra\": {:.0}, \"cap_evictions\": {}, \"parity_bit_exact\": {}, \"seconds\": {:.2} }},\n  \"uplink\": {{ \"encoding\": \"quantized\", \"compressed_frames\": {}, \"wire_bytes\": {}, \"raw_equiv_bytes\": {}, \"compression_ratio\": {:.2}, \"bytes_per_spectrum\": {:.1}, \"raw_bytes_per_spectrum\": {:.1}, \"p50_fix_displacement_m\": {:.3e}, \"lossless_parity_bit_exact\": {} }},\n  \"drain\": {{ \"in_flight_drained\": {} }}\n}}\n",
        crate::experiments::perf::host_context_json(),
        sustained.clients,
        sustained.workers,
        sustained.responses,
        sustained.seconds,
        sustained.rps,
        sustained.p50_ms,
        sustained.p95_ms,
        sustained.p99_ms,
        overload.clients,
        overload.offered,
        overload.fixes,
        overload.shed,
        overload.responsive_after,
        mixed.ap_conns,
        mixed.app_threads,
        mixed.keys,
        mixed.cap,
        mixed.submits,
        mixed.fixes,
        mixed.unresolved,
        mixed.shed,
        mixed.max_resident_spectra,
        mixed.evicted_cap,
        mixed.parity_ok,
        mixed.seconds,
        mixed.compressed_frames,
        mixed.uplink_wire_bytes,
        mixed.uplink_raw_equiv_bytes,
        mixed.compression_ratio,
        mixed.uplink_wire_bytes as f64 / mixed.compressed_frames.max(1) as f64,
        mixed.uplink_raw_equiv_bytes as f64 / mixed.compressed_frames.max(1) as f64,
        mixed.p50_displacement_m,
        mixed.lossless_ok,
        drained,
    );
    let mut f = std::fs::File::create(BASELINE_PATH)?;
    f.write_all(json.as_bytes())?;
    println!("  -> wrote {BASELINE_PATH}");
    Ok(())
}

/// Full loadgen run: refreshes `BENCH_SERVE.json` at the repo root.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("serve")?;
    report.section("at-serve loadgen (loopback)");
    let sustained = run_sustained(&report, 8, 600);
    let overload = run_overload(&report, 32, 16);
    let mixed = run_mixed(&report, 16, 8, 8, 100);
    let drained = run_drain(&report);
    report.csv(
        "loadgen",
        &["metric", "value"],
        vec![
            vec!["responses_per_sec".into(), format!("{:.0}", sustained.rps)],
            vec!["latency_p50_ms".into(), format!("{:.3}", sustained.p50_ms)],
            vec!["latency_p95_ms".into(), format!("{:.3}", sustained.p95_ms)],
            vec!["latency_p99_ms".into(), format!("{:.3}", sustained.p99_ms)],
            vec!["overload_shed".into(), overload.shed.to_string()],
            vec![
                "mixed_max_resident_spectra".into(),
                format!("{:.0}", mixed.max_resident_spectra),
            ],
            vec!["mixed_cap".into(), mixed.cap.to_string()],
            vec!["mixed_cap_evictions".into(), mixed.evicted_cap.to_string()],
            vec!["mixed_parity_bit_exact".into(), mixed.parity_ok.to_string()],
            vec![
                "uplink_compression_ratio".into(),
                format!("{:.2}", mixed.compression_ratio),
            ],
            vec![
                "uplink_p50_fix_displacement_m".into(),
                format!("{:.3e}", mixed.p50_displacement_m),
            ],
            vec![
                "uplink_lossless_bit_exact".into(),
                mixed.lossless_ok.to_string(),
            ],
            vec!["drained".into(), drained.to_string()],
        ],
    )?;
    // Re-baseline only where the worker pool actually fans out: the
    // committed numbers came from a one-core container (see ROADMAP
    // "Multi-core loadgen baseline"), and overwriting them from another
    // starved host would just churn the JSON without fixing that.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores > 2 {
        write_json(&sustained, &overload, &mixed, drained)?;
    } else {
        report.line(format!(
            "  -> BENCH_SERVE.json re-baseline skipped: host has {cores} core(s), \
             needs >2 for the worker pool to fan out (ROADMAP: multi-core loadgen baseline)"
        ));
    }
    assert!(
        mixed.max_resident_spectra <= mixed.cap as f64,
        "resident-spectra gauge peaked at {} over the cap {}",
        mixed.max_resident_spectra,
        mixed.cap
    );
    assert!(
        mixed.compression_ratio >= 8.0,
        "quantized uplink compressed only {:.2}x (acceptance floor 8x)",
        mixed.compression_ratio
    );
    assert!(
        mixed.p50_displacement_m < 1e-3,
        "median quantized fix displaced {} m (budget 1 mm)",
        mixed.p50_displacement_m
    );
    assert!(mixed.lossless_ok, "lossless replay was not bit-exact");
    if sustained.rps < 1000.0 {
        report.line(format!(
            "  WARNING: sustained rate {:.0} rps below the 1k target on this host",
            sustained.rps
        ));
    }
    Ok(())
}

/// CI serve-smoke gate: same phases, seconds-scale, non-zero exit when
/// throughput collapses or shed/drain behavior disappears.
pub fn run_smoke() -> std::io::Result<()> {
    let report = Report::new("serve_smoke")?;
    report.section("serve-smoke: loopback sanity at CI scale");
    let sustained = run_sustained(&report, 4, 60);
    let overload = run_overload(&report, 16, 8);
    let mixed = run_mixed(&report, 8, 4, 4, 24);
    let drained = run_drain(&report);
    let mut failures = Vec::new();
    if sustained.rps < SMOKE_MIN_RPS {
        failures.push(format!(
            "sustained {:.0} rps below the {SMOKE_MIN_RPS:.0} floor",
            sustained.rps
        ));
    }
    if overload.shed == 0 {
        failures.push("overload run shed nothing — admission control inert".into());
    }
    if !overload.responsive_after {
        failures.push("server unresponsive after the overload storm".into());
    }
    if !mixed.parity_ok {
        failures.push("keyed wire fix diverged from the in-process fusion".into());
    }
    if mixed.max_resident_spectra > mixed.cap as f64 {
        failures.push(format!(
            "resident-spectra gauge peaked at {:.0} over the cap {}",
            mixed.max_resident_spectra, mixed.cap
        ));
    }
    if mixed.evicted_cap == 0 {
        failures.push("mixed run evicted nothing — cap enforcement inert".into());
    }
    if mixed.fixes == 0 {
        failures.push("mixed run produced no keyed fixes".into());
    }
    // Compression gates: bytes-per-spectrum over the quantized uplink
    // must stay under 0.15× the raw wire form, the quantized path's
    // median fix must sit inside the 1 mm budget, and lossless replay
    // must be bit-exact.
    if mixed.uplink_wire_bytes * 100 > mixed.uplink_raw_equiv_bytes * 15 {
        failures.push(format!(
            "mixed uplink spent {} bytes against {} raw-equivalent — \
             over the 0.15x byte budget",
            mixed.uplink_wire_bytes, mixed.uplink_raw_equiv_bytes
        ));
    }
    if mixed.p50_displacement_m >= 1e-3 || mixed.p50_displacement_m.is_nan() {
        failures.push(format!(
            "quantized uplink displaced the median fix {} m (budget 1 mm)",
            mixed.p50_displacement_m
        ));
    }
    if !mixed.lossless_ok {
        failures.push("lossless-delta replay diverged from the raw fix".into());
    }
    if !drained {
        failures.push("graceful shutdown dropped an in-flight request".into());
    }
    if failures.is_empty() {
        report.line("  serve-smoke: all gates passed");
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "serve-smoke failed: {}",
            failures.join("; ")
        )))
    }
}
