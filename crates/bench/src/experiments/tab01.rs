//! Table 1: the peak-stability microbenchmark behind multipath
//! suppression.
//!
//! 100 random testbed locations; at each, AoA spectra are computed at the
//! location and at a point 5 cm away, and the joint fate of the direct and
//! reflection peaks is tallied. The paper measures 71 % / 18 % / 8 % / 3 %
//! for (direct same, refl changed) / (both same) / (both changed) /
//! (direct changed, refl same).

use crate::report::{f1, Report};
use at_channel::geometry::pt;
use at_channel::Transmitter;
use at_core::pipeline::{process_frame, ApPipelineConfig};
use at_core::suppression::{classify_stability, SuppressionConfig};
use at_testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the experiment.
pub fn run() -> std::io::Result<()> {
    let report = Report::new("tab01")?;
    report.section("Peak stability under 5 cm movement (paper Table 1)");

    let dep = Deployment::office(42);
    let cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };
    let pipeline = ApPipelineConfig {
        symmetry: at_core::pipeline::SymmetryMode::Off,
        weighting: false,
        ..ApPipelineConfig::arraytrack(8)
    };
    let sup = SuppressionConfig::default();
    let mut rng = StdRng::seed_from_u64(1001);

    let mut tallies = [0usize; 4]; // [ds_rc, ds_rs, dc_rc, dc_rs]
    let mut classified = 0usize;
    let locations = 100;
    for _ in 0..locations {
        // Random location away from the walls; random AP.
        let p = pt(rng.gen_range(2.0..46.0), rng.gen_range(2.0..22.0));
        let ap = rng.gen_range(0..dep.aps.len());
        let ang = rng.gen_range(0.0..std::f64::consts::TAU);
        let p2 = pt(p.x + 0.05 * ang.cos(), p.y + 0.05 * ang.sin());

        let tx = Transmitter::at(p);
        let b1 = dep.capture_frame(ap, p, &tx, &cfg, &mut rng);
        let b2 = dep.capture_frame(ap, p2, &tx, &cfg, &mut rng);
        let s1 = process_frame(&b1, &pipeline);
        let s2 = process_frame(&b2, &pipeline);

        let truth = dep.aps[ap].pose.bearing_to(p);
        // The ULA spectrum is mirrored; classify against whichever image of
        // the true bearing actually carries the peak.
        let candidates = [truth, std::f64::consts::TAU - truth];
        let outcome = candidates
            .iter()
            .find_map(|&b| classify_stability(&s1, &s2, b, &sup));
        let Some(o) = outcome else { continue };
        classified += 1;
        let idx = match (o.direct_unchanged, o.reflections_unchanged) {
            (true, false) => 0,
            (true, true) => 1,
            (false, false) => 2,
            (false, true) => 3,
        };
        tallies[idx] += 1;
    }

    let labels = [
        "Direct path same; reflection paths changed",
        "Direct path same; reflection paths same",
        "Direct path changed; reflection paths changed",
        "Direct path changed; reflection paths same",
    ];
    let paper = [71.0, 18.0, 8.0, 3.0];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let pct = 100.0 * tallies[i] as f64 / classified.max(1) as f64;
            vec![l.to_string(), f1(pct), f1(paper[i])]
        })
        .collect();
    report.line(format!(
        "{classified}/{locations} locations had a visible direct-path peak"
    ));
    report.table(&["scenario", "measured %", "paper %"], &rows);
    report.csv(
        "tallies",
        &["scenario", "measured_pct", "paper_pct"],
        rows.clone(),
    )?;

    // The headline property the suppression algorithm relies on: the
    // failure mode (direct changed, reflections same) must be rare, and
    // the exploitable mode (direct same) must dominate.
    let direct_same = tallies[0] + tallies[1];
    report.line(format!(
        "direct path stable in {:.0}% of cases; failure mode in {:.0}%",
        100.0 * direct_same as f64 / classified.max(1) as f64,
        100.0 * tallies[3] as f64 / classified.max(1) as f64,
    ));
    Ok(())
}
