//! # at-bench — experiment harness for the ArrayTrack reproduction
//!
//! One binary per paper table/figure (`src/bin/`), each calling into an
//! [`experiments`] module; `all_experiments` runs the whole evaluation.
//! Criterion microbenchmarks for the hot kernels live in `benches/`.
//!
//! Outputs go to stdout (aligned tables with paper reference columns) and
//! `results/*.csv` (override with `ARRAYTRACK_RESULTS`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Report;
