//! Experiment output: aligned console tables plus CSV files under
//! `results/`, one file per figure/table, so EXPERIMENTS.md can cite them.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Destination for one experiment's outputs.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment identifier, e.g. `fig13`.
    pub id: String,
    dir: PathBuf,
}

impl Report {
    /// Creates a report rooted at `results/` (created if missing), or at
    /// `$ARRAYTRACK_RESULTS` when set.
    pub fn new(id: &str) -> std::io::Result<Self> {
        let dir = std::env::var_os("ARRAYTRACK_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        fs::create_dir_all(&dir)?;
        Ok(Self {
            id: id.to_string(),
            dir,
        })
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Prints a section header to stdout.
    pub fn section(&self, title: &str) {
        println!();
        println!("=== [{}] {title} ===", self.id);
    }

    /// Prints one console line.
    pub fn line(&self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
    }

    /// Writes a CSV file `<id>_<name>.csv` with a header row and records.
    pub fn csv(
        &self,
        name: &str,
        header: &[&str],
        rows: impl IntoIterator<Item = Vec<String>>,
    ) -> std::io::Result<PathBuf> {
        let path = self.dir.join(format!("{}_{name}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        println!("  -> wrote {}", path.display());
        Ok(path)
    }

    /// Renders an aligned two-dimensional table to stdout.
    pub fn table(&self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        println!("  {}", fmt_row(&head));
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in rows {
            println!("  {}", fmt_row(row));
        }
    }
}

/// Formats a float with 3 decimals (the tables' standard cell format).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Downsamples a CDF point list to at most `max_points` for compact CSVs.
pub fn thin_cdf(points: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    if points.len() <= max_points || max_points == 0 {
        return points.to_vec();
    }
    let step = points.len() as f64 / max_points as f64;
    let mut out: Vec<(f64, f64)> = (0..max_points)
        .map(|i| points[(i as f64 * step) as usize])
        .collect();
    if let (Some(last_out), Some(last_in)) = (out.last_mut(), points.last()) {
        *last_out = *last_in;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_file() {
        let tmp = std::env::temp_dir().join("at_bench_report_test");
        std::env::set_var("ARRAYTRACK_RESULTS", &tmp);
        let r = Report::new("test").unwrap();
        let path = r
            .csv(
                "demo",
                &["a", "b"],
                vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            )
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::env::remove_var("ARRAYTRACK_RESULTS");
    }

    #[test]
    fn thin_cdf_preserves_endpoints() {
        let pts: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64 / 1000.0)).collect();
        let thin = thin_cdf(&pts, 50);
        assert_eq!(thin.len(), 50);
        assert_eq!(thin[0], pts[0]);
        assert_eq!(*thin.last().unwrap(), *pts.last().unwrap());
        // Already-small lists pass through.
        assert_eq!(thin_cdf(&pts[..10], 50).len(), 10);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
