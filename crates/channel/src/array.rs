//! Antenna-array geometry.
//!
//! The prototype AP (paper §3, Fig. 11) places up to 16 omnidirectional
//! antennas in a row at half-wavelength spacing (6.13 cm at 2.4 GHz), plus —
//! for array-symmetry removal (§2.3.4) — a "ninth antenna not in the same
//! row as the other eight". This module positions elements in world
//! coordinates; `at-core` builds steering vectors from the same geometry.

use crate::geometry::Point;

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// 2.4 GHz ISM-band carrier used by the testbed's 802.11g clients.
pub const CARRIER_HZ: f64 = 2.44e9;

/// Carrier wavelength λ = c / f ≈ 12.29 cm.
pub fn wavelength() -> f64 {
    SPEED_OF_LIGHT / CARRIER_HZ
}

/// Half-wavelength element spacing — "maximum AoA spectrum resolution"
/// and the arrangement preferred in commodity APs (paper §3).
pub fn half_wavelength() -> f64 {
    wavelength() / 2.0
}

/// Perpendicular offset of the off-row disambiguation antenna (§2.3.4).
///
/// λ/4 rather than λ/2: the mirror-bearing phase difference it observes is
/// `2π·(offset/λ)·2·sinθ`, which for a λ/2 offset wraps to zero exactly at
/// broadside (θ = 90°) — a blind spot. λ/4 yields `π·sinθ`, unambiguous
/// everywhere except the array axis (where the ULA has no resolution
/// anyway and the geometry weighting de-weights the spectrum).
pub fn offrow_offset() -> f64 {
    wavelength() / 4.0
}

/// Element arrangement of an [`AntennaArray`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayLayout {
    /// Uniform linear array along the axis (the paper's arrangement).
    Linear,
    /// Uniform circular array: elements evenly spaced on a circle whose
    /// chord between neighbors is the configured spacing. The paper's §6
    /// discussion weighs this trade-off: a circular array resolves the
    /// full 360° with no mirror ambiguity, at the cost of a smaller
    /// effective aperture per antenna.
    Circular,
    /// Vertical uniform linear array: elements stacked in height at the
    /// configured spacing, all at the same plan-view position. The
    /// paper's §4.3.1 future work: "extend the ArrayTrack system to three
    /// dimensions by using a vertically-oriented antenna array ... to
    /// estimate elevation directly".
    Vertical,
}

/// A physical antenna array at an AP: a uniform linear array (ULA) along an
/// axis, with an optional extra off-row element for symmetry removal.
#[derive(Clone, Debug)]
pub struct AntennaArray {
    /// Array centroid position in the floorplan, meters.
    pub center: Point,
    /// Orientation of the array axis, radians from +x.
    pub axis_angle: f64,
    /// Number of in-row elements `M`.
    pub elements: usize,
    /// Element spacing in meters (default λ/2).
    pub spacing: f64,
    /// Whether the off-row disambiguation element is present (§2.3.4).
    pub has_offrow_element: bool,
    /// Height of the antennas above the floor, meters.
    pub height: f64,
    /// Seed for static per-element gain/phase imperfections (mutual
    /// coupling, element pattern and placement errors — the residual error
    /// sources §4.2.1 lists, which cable calibration cannot see because the
    /// CW tone is injected at the radio port, bypassing the antennas).
    /// `None` = ideal elements (the default, for algorithm tests).
    pub imperfection_seed: Option<u64>,
    /// Element arrangement (default linear).
    pub layout: ArrayLayout,
    /// Indices of dead elements (failed feed, broken solder joint, blown
    /// LNA): a dead element couples no signal into its port — the receive
    /// chain sees only its own noise. Empty = all elements alive.
    pub dead_elements: Vec<usize>,
}

/// Per-element gain imperfection bound: ±0.4 dB.
const ELEMENT_GAIN_SPREAD_DB: f64 = 0.4;

/// Per-element phase imperfection bound: ±4°.
const ELEMENT_PHASE_SPREAD_RAD: f64 = 4.0 * std::f64::consts::PI / 180.0;

impl AntennaArray {
    /// A ULA of `elements` antennas at λ/2 spacing, centered at `center`
    /// with the given axis orientation, at the paper's cart height (1.5 m).
    pub fn ula(center: Point, axis_angle: f64, elements: usize) -> Self {
        assert!(elements >= 2, "an array needs at least two elements");
        Self {
            center,
            axis_angle,
            elements,
            spacing: half_wavelength(),
            has_offrow_element: false,
            height: 1.5,
            imperfection_seed: None,
            layout: ArrayLayout::Linear,
            dead_elements: Vec::new(),
        }
    }

    /// A uniform circular array of `elements` antennas whose neighbor
    /// chord is λ/2 (matching the ULA's element spacing), centered at
    /// `center`; `axis_angle` orients element 0's radial direction.
    pub fn uca(center: Point, axis_angle: f64, elements: usize) -> Self {
        assert!(
            elements >= 3,
            "a circular array needs at least three elements"
        );
        let mut a = Self::ula(center, axis_angle, elements);
        a.layout = ArrayLayout::Circular;
        a
    }

    /// A vertical ULA of `elements` antennas at λ/2 spacing, centered at
    /// `height` above the floor, at plan-view position `center`.
    pub fn vertical(center: Point, elements: usize) -> Self {
        let mut a = Self::ula(center, 0.0, elements);
        a.layout = ArrayLayout::Vertical;
        a
    }

    /// Radius of the circular layout: chord `spacing` between neighbors
    /// ⇒ `r = spacing / (2·sin(π/M))`.
    pub fn circle_radius(&self) -> f64 {
        self.spacing / (2.0 * (std::f64::consts::PI / self.elements as f64).sin())
    }

    /// Enables the off-row "ninth antenna" used for symmetry removal
    /// (linear layout only — a circular array has no mirror ambiguity).
    pub fn with_offrow_element(mut self) -> Self {
        assert_eq!(
            self.layout,
            ArrayLayout::Linear,
            "the off-row element only applies to linear arrays"
        );
        self.has_offrow_element = true;
        self
    }

    /// Enables static per-element imperfections drawn from `seed`.
    pub fn with_imperfections(mut self, seed: u64) -> Self {
        self.imperfection_seed = Some(seed);
        self
    }

    /// Marks the listed elements as dead (fault injection): their complex
    /// gain becomes exactly zero, so the channel couples no signal into
    /// those ports and the receiver sees only its own noise there.
    pub fn with_dead_elements(mut self, dead: &[usize]) -> Self {
        for &m in dead {
            assert!(
                m < self.total_elements(),
                "dead element index {m} out of range"
            );
        }
        self.dead_elements = dead.to_vec();
        self
    }

    /// Whether element `m` is marked dead.
    pub fn is_dead(&self, m: usize) -> bool {
        self.dead_elements.contains(&m)
    }

    /// Number of live (not dead) in-row elements.
    pub fn live_inrow_elements(&self) -> usize {
        (0..self.elements).filter(|&m| !self.is_dead(m)).count()
    }

    /// The static complex gain error of element `m` (1 + 0j when ideal,
    /// exactly zero when the element is dead).
    pub fn element_error(&self, m: usize) -> at_linalg::Complex64 {
        if self.is_dead(m) {
            return at_linalg::Complex64::ZERO;
        }
        let Some(seed) = self.imperfection_seed else {
            return at_linalg::Complex64::ONE;
        };
        // splitmix64-style mix of (seed, m).
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(m as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u1 = (z >> 32) as f64 / u32::MAX as f64;
        let u2 = (z & 0xffff_ffff) as f64 / u32::MAX as f64;
        let gain_db = (u1 - 0.5) * 2.0 * ELEMENT_GAIN_SPREAD_DB;
        let phase = (u2 - 0.5) * 2.0 * ELEMENT_PHASE_SPREAD_RAD;
        at_linalg::Complex64::from_polar(10f64.powf(gain_db / 20.0), phase)
    }

    /// Overrides the antenna height above floor.
    pub fn with_height(mut self, height: f64) -> Self {
        self.height = height;
        self
    }

    /// Unit vector along the array axis.
    pub fn axis(&self) -> Point {
        Point::unit(self.axis_angle)
    }

    /// Total number of antenna ports, including the off-row element.
    pub fn total_elements(&self) -> usize {
        self.elements + usize::from(self.has_offrow_element)
    }

    /// World position of element `m`.
    ///
    /// Elements `0..elements` lie on the axis, centered on `center`, in
    /// axis order; element index `elements` (if enabled) is the off-row
    /// antenna, displaced λ/2 perpendicular to the axis from element 0.
    pub fn element_position(&self, m: usize) -> Point {
        let axis = self.axis();
        match self.layout {
            ArrayLayout::Linear => {
                if m < self.elements {
                    let offset = (m as f64 - (self.elements as f64 - 1.0) / 2.0) * self.spacing;
                    self.center.add(axis.scale(offset))
                } else if m == self.elements && self.has_offrow_element {
                    let first = self.element_position(0);
                    first.add(axis.perp().scale(offrow_offset()))
                } else {
                    panic!("element index {m} out of range");
                }
            }
            ArrayLayout::Circular => {
                assert!(m < self.elements, "element index {m} out of range");
                let ang = self.axis_angle + m as f64 * std::f64::consts::TAU / self.elements as f64;
                self.center
                    .add(Point::unit(ang).scale(self.circle_radius()))
            }
            ArrayLayout::Vertical => {
                assert!(m < self.elements, "element index {m} out of range");
                self.center
            }
        }
    }

    /// Height of element `m` above the floor: constant for planar layouts,
    /// stacked around [`Self::height`] for the vertical layout.
    pub fn element_height(&self, m: usize) -> f64 {
        match self.layout {
            ArrayLayout::Vertical => {
                assert!(m < self.elements, "element index {m} out of range");
                self.height + (m as f64 - (self.elements as f64 - 1.0) / 2.0) * self.spacing
            }
            _ => self.height,
        }
    }

    /// Positions of all elements (in-row then off-row).
    pub fn element_positions(&self) -> Vec<Point> {
        (0..self.total_elements())
            .map(|m| self.element_position(m))
            .collect()
    }

    /// Physical aperture of the in-row array in meters.
    pub fn aperture(&self) -> f64 {
        (self.elements as f64 - 1.0) * self.spacing
    }

    /// Ground-truth bearing of a source at `p`, measured from the array
    /// axis in radians `[0, 2π)` — the θ that appears in steering vectors.
    pub fn bearing_to(&self, p: Point) -> f64 {
        crate::geometry::wrap_angle(p.sub(self.center).angle() - self.axis_angle)
    }

    /// Inverse of [`Self::bearing_to`]: a point at distance `d` and array
    /// bearing `theta`.
    pub fn point_at(&self, theta: f64, d: f64) -> Point {
        self.center
            .add(Point::unit(self.axis_angle + theta).scale(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pt;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn wavelength_matches_paper_spacing() {
        // Paper: "Antennas are spaced at a half wavelength distance (6.13 cm)".
        assert!(
            (half_wavelength() - 0.0613).abs() < 0.001,
            "{}",
            half_wavelength()
        );
    }

    #[test]
    fn elements_are_centered_and_spaced() {
        let a = AntennaArray::ula(pt(10.0, 5.0), 0.0, 8);
        let ps = a.element_positions();
        assert_eq!(ps.len(), 8);
        // Centroid equals center.
        let cx: f64 = ps.iter().map(|p| p.x).sum::<f64>() / 8.0;
        assert!((cx - 10.0).abs() < 1e-12);
        // Neighbor spacing is λ/2.
        for w in ps.windows(2) {
            assert!((w[0].distance(w[1]) - half_wavelength()).abs() < 1e-12);
        }
        assert!((a.aperture() - 7.0 * half_wavelength()).abs() < 1e-12);
    }

    #[test]
    fn rotation_moves_elements_off_x_axis() {
        let a = AntennaArray::ula(pt(0.0, 0.0), FRAC_PI_2, 4);
        for p in a.element_positions() {
            assert!(p.x.abs() < 1e-12, "rotated array should lie on y axis");
        }
    }

    #[test]
    fn offrow_element_is_perpendicular() {
        let a = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        assert_eq!(a.total_elements(), 9);
        let first = a.element_position(0);
        let ninth = a.element_position(8);
        let d = ninth.sub(first);
        assert!(
            (d.x).abs() < 1e-12,
            "off-row displacement must be perpendicular"
        );
        assert!((d.y - offrow_offset()).abs() < 1e-12);
    }

    #[test]
    fn bearing_measured_from_axis() {
        let a = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        assert!((a.bearing_to(pt(5.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((a.bearing_to(pt(0.0, 5.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((a.bearing_to(pt(-5.0, 0.0)) - PI).abs() < 1e-12);
        // Rotated array: bearing is relative to the axis, not world x.
        let b = AntennaArray::ula(pt(0.0, 0.0), FRAC_PI_2, 8);
        assert!((b.bearing_to(pt(0.0, 5.0)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_round_trips_bearing() {
        let a = AntennaArray::ula(pt(3.0, -2.0), 0.7, 8);
        for theta in [0.3, 1.2, 2.8, 4.0, 5.9] {
            let p = a.point_at(theta, 7.5);
            assert!((a.bearing_to(p) - theta).abs() < 1e-9);
            assert!((p.distance(a.center) - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn circular_array_geometry() {
        let a = AntennaArray::uca(pt(2.0, 3.0), 0.3, 8);
        let ps = a.element_positions();
        assert_eq!(ps.len(), 8);
        // All elements on the circle.
        for p in &ps {
            assert!((p.distance(pt(2.0, 3.0)) - a.circle_radius()).abs() < 1e-12);
        }
        // Neighbor chords equal λ/2 (matching the linear spacing).
        for i in 0..8 {
            let d = ps[i].distance(ps[(i + 1) % 8]);
            assert!((d - half_wavelength()).abs() < 1e-12, "chord {i}: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "only applies to linear")]
    fn circular_rejects_offrow() {
        let _ = AntennaArray::uca(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_circle_rejected() {
        AntennaArray::uca(pt(0.0, 0.0), 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_element_panics() {
        AntennaArray::ula(pt(0.0, 0.0), 0.0, 4).element_position(4);
    }

    #[test]
    fn dead_elements_have_zero_gain() {
        let a = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8)
            .with_imperfections(7)
            .with_dead_elements(&[1, 5]);
        assert!(a.is_dead(1) && a.is_dead(5) && !a.is_dead(0));
        assert_eq!(a.element_error(1), at_linalg::Complex64::ZERO);
        assert_eq!(a.element_error(5), at_linalg::Complex64::ZERO);
        // Live elements keep their (imperfect but nonzero) gains.
        assert!(a.element_error(0).abs() > 0.5);
        assert_eq!(a.live_inrow_elements(), 6);
    }

    #[test]
    fn dead_offrow_element_is_addressable() {
        let a = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8)
            .with_offrow_element()
            .with_dead_elements(&[8]);
        assert!(a.is_dead(8));
        assert_eq!(a.live_inrow_elements(), 8);
    }

    #[test]
    #[should_panic(expected = "dead element index")]
    fn dead_element_out_of_range_rejected() {
        let _ = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4).with_dead_elements(&[4]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_element_array_rejected() {
        AntennaArray::ula(pt(0.0, 0.0), 0.0, 1);
    }
}
