//! End-to-end baseband channel: waveform in, per-antenna samples out.
//!
//! This is the boundary the ArrayTrack algorithms see. For every traced
//! [`Path`](crate::propagation::Path) `p` and antenna `m`, the received
//! contribution is
//!
//! ```text
//! x_m(t) = g_p · e^{-j2π·d_pm/λ} · s(t − τ_p)
//! ```
//!
//! where `d_pm` is the exact 3D distance from the path's virtual source to
//! antenna `m`. Crucially the carrier phase uses the *per-antenna* distance
//! (this is where the AoA information lives) while the envelope delay uses
//! the path's array-center delay (the sub-nanosecond per-antenna envelope
//! differences are far below the 25 ns sample period — the standard
//! narrowband array assumption, paper §2.3.1).

use crate::array::{wavelength, AntennaArray};
use crate::floorplan::Floorplan;
use crate::polarization::polarization_loss;
use crate::propagation::{Path, PathTracer};
use at_linalg::Complex64;
use std::f64::consts::TAU;

/// A transmitting client.
#[derive(Clone, Copy, Debug)]
pub struct Transmitter {
    /// Plan-view position, meters.
    pub position: crate::geometry::Point,
    /// Antenna height above floor, meters.
    pub height: f64,
    /// Linear amplitude scale (√ of transmit power relative to unit).
    pub amplitude: f64,
    /// Polarization mismatch vs. the AP antennas, radians (§4.3.2).
    pub polarization_mismatch: f64,
    /// Carrier frequency offset of the client's oscillator vs. the AP's,
    /// Hz. Commodity 802.11 clients are specified to ±20 ppm (±~49 kHz at
    /// 2.44 GHz). The offset rotates the received baseband by
    /// `e^{j2πΔf·t}` — identically on every antenna, so MUSIC's
    /// correlation matrix is immune within a snapshot block, but samples
    /// taken 3.2 µs apart (diversity synthesis across S0/S1, §2.2) pick up
    /// a relative rotation that must be estimated and removed.
    pub cfo_hz: f64,
}

impl Transmitter {
    /// A unit-power, polarization-aligned client at 1.5 m height.
    pub fn at(position: crate::geometry::Point) -> Self {
        Self {
            position,
            height: 1.5,
            amplitude: 1.0,
            polarization_mismatch: 0.0,
            cfo_hz: 0.0,
        }
    }

    /// Sets the client height (paper §4.3.1 drops clients to the floor).
    pub fn with_height(mut self, height: f64) -> Self {
        self.height = height;
        self
    }

    /// Sets transmit amplitude (linear).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Sets the polarization mismatch angle in radians.
    pub fn with_polarization_mismatch(mut self, psi: f64) -> Self {
        self.polarization_mismatch = psi;
        self
    }

    /// Sets the client's carrier frequency offset in Hz.
    pub fn with_cfo(mut self, cfo_hz: f64) -> Self {
        self.cfo_hz = cfo_hz;
        self
    }
}

/// The simulated multipath channel between clients and one AP array.
#[derive(Clone, Debug)]
pub struct ChannelSim<'a> {
    floorplan: &'a Floorplan,
    max_order: usize,
}

impl<'a> ChannelSim<'a> {
    /// Channel over a floorplan with second-order reflections.
    pub fn new(floorplan: &'a Floorplan) -> Self {
        Self {
            floorplan,
            max_order: 2,
        }
    }

    /// Limits the reflection order (0 = free-space-like direct ray only).
    pub fn with_max_order(mut self, max_order: usize) -> Self {
        self.max_order = max_order;
        self
    }

    /// Traces the propagation paths from a transmitter to the array center.
    pub fn paths(&self, tx: &Transmitter, array: &AntennaArray) -> Vec<Path> {
        PathTracer::new(self.floorplan)
            .with_max_order(self.max_order)
            .trace(tx.position, tx.height, array.center, array.height)
    }

    /// Received power (relative to unit TX power) summed over paths, at the
    /// array center — used to size noise for a target SNR.
    pub fn received_power(&self, tx: &Transmitter, array: &AntennaArray) -> f64 {
        let pol = polarization_loss(tx.polarization_mismatch);
        let amp2 = tx.amplitude * tx.amplitude;
        self.paths(tx, array)
            .iter()
            .map(|p| p.gain.norm_sqr())
            .sum::<f64>()
            * pol
            * amp2
    }

    /// Simulates reception of `waveform` (a function of time since the
    /// waveform's start) over `[t0, t0+duration)` at `sample_rate`,
    /// returning one sample stream per antenna (in-row elements first,
    /// then the off-row element if the array has one). Noiseless; callers
    /// add AWGN via `at_dsp::awgn` so they control the operating SNR.
    pub fn receive<W: Fn(f64) -> Complex64>(
        &self,
        tx: &Transmitter,
        array: &AntennaArray,
        waveform: W,
        t0: f64,
        duration: f64,
        sample_rate: f64,
    ) -> Vec<Vec<Complex64>> {
        let paths = self.paths(tx, array);
        self.receive_via_paths(&paths, tx, array, waveform, t0, duration, sample_rate)
    }

    /// Like [`Self::receive`] but with pre-traced paths (lets experiments
    /// inspect ground-truth bearings without re-tracing).
    #[allow(clippy::too_many_arguments)]
    pub fn receive_via_paths<W: Fn(f64) -> Complex64>(
        &self,
        paths: &[Path],
        tx: &Transmitter,
        array: &AntennaArray,
        waveform: W,
        t0: f64,
        duration: f64,
        sample_rate: f64,
    ) -> Vec<Vec<Complex64>> {
        let lambda = wavelength();
        let n = (duration * sample_rate).round() as usize;
        let positions = array.element_positions();
        let pol_amp = polarization_loss(tx.polarization_mismatch).sqrt() * tx.amplitude;

        // Precompute per-path, per-antenna complex coefficients.
        // coeff[p][m] = g_p · pol · e^{-j2π d_pm / λ}, with d_pm the exact
        // 3D distance from the virtual source to element m (vertical
        // layouts vary element heights — that's where elevation
        // information lives).
        let element_errors: Vec<Complex64> = (0..positions.len())
            .map(|m| array.element_error(m))
            .collect();
        let coeffs: Vec<Vec<Complex64>> = paths
            .iter()
            .map(|p| {
                positions
                    .iter()
                    .enumerate()
                    .map(|(m, q)| {
                        let dh = tx.height - array.element_height(m);
                        let d2 = p.image.distance(*q);
                        let d = (d2 * d2 + dh * dh).sqrt();
                        p.gain * Complex64::cis(-TAU * d / lambda) * pol_amp * element_errors[m]
                    })
                    .collect()
            })
            .collect();

        // The delayed envelope s(t − τ_p) is identical for every antenna
        // (narrowband assumption) — evaluate it once per (path, sample).
        let envelopes: Vec<Vec<Complex64>> = paths
            .iter()
            .map(|p| {
                let delay = p.delay();
                (0..n)
                    .map(|i| waveform(t0 + i as f64 / sample_rate - delay))
                    .collect()
            })
            .collect();

        // The client's CFO rotates the baseband identically on every
        // antenna, accumulating with absolute time.
        let cfo_rot: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(TAU * tx.cfo_hz * (t0 + i as f64 / sample_rate)))
            .collect();

        (0..positions.len())
            .map(|m| {
                (0..n)
                    .map(|i| {
                        let mut acc = Complex64::ZERO;
                        for (p, env) in envelopes.iter().enumerate() {
                            acc = acc.mul_add(coeffs[p][m], env[i]);
                        }
                        acc * cfo_rot[i]
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Material;
    use crate::geometry::{pt, seg};
    use at_dsp::preamble::{Preamble, LTS0_START_S, SAMPLE_RATE_HZ};
    use std::f64::consts::{FRAC_PI_2, PI};

    fn cw(t: f64) -> Complex64 {
        // A continuous tone at 1 MHz baseband; smooth so envelope delays
        // are visible as phase, not discontinuities.
        Complex64::cis(TAU * 1.0e6 * t)
    }

    #[test]
    fn broadside_source_arrives_in_phase() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4);
        // Far broadside source (bearing 90°): equal distance to every element.
        let tx = Transmitter::at(pt(0.0, 500.0));
        let rx = sim.receive(&tx, &array, cw, 0.0, 1e-6, SAMPLE_RATE_HZ);
        let p0 = rx[0][5];
        for stream in &rx {
            assert!((stream[5] - p0).abs() < 1e-3 * p0.abs(), "not in phase");
        }
    }

    #[test]
    fn endfire_source_phase_steps_by_pi() {
        // Source along the axis (bearing 0): adjacent-element path-length
        // difference is λ/2 ⇒ phase step of π.
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4);
        let tx = Transmitter::at(pt(2000.0, 0.0));
        let rx = sim.receive(&tx, &array, cw, 0.0, 1e-6, SAMPLE_RATE_HZ);
        for m in 0..3 {
            let dphi = (rx[m + 1][3] / rx[m][3]).arg();
            // Element m+1 is closer to the source by λ/2 ⇒ +π phase
            // (mod 2π, so ±π is equivalent).
            assert!((dphi.abs() - PI).abs() < 0.02, "step {m}: {dphi} rad");
        }
    }

    #[test]
    fn oblique_source_matches_cos_theta_law() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        for theta_deg in [30.0f64, 60.0, 120.0, 150.0] {
            let theta = theta_deg.to_radians();
            let tx = Transmitter::at(array.point_at(theta, 800.0));
            let rx = sim.receive(&tx, &array, cw, 0.0, 0.5e-6, SAMPLE_RATE_HZ);
            let dphi = (rx[1][2] / rx[0][2]).arg();
            // Expected: +π·cosθ (closer along axis ⇒ advanced phase).
            let expect = PI * theta.cos();
            let err = (dphi - expect).abs();
            assert!(err < 0.02, "θ={theta_deg}°: got {dphi}, want {expect}");
        }
    }

    #[test]
    fn received_power_decays_with_distance() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        let p5 = sim.received_power(&Transmitter::at(pt(0.0, 5.0)), &array);
        let p10 = sim.received_power(&Transmitter::at(pt(0.0, 10.0)), &array);
        assert!((p5 / p10 - 4.0).abs() < 0.01, "free-space inverse-square");
    }

    #[test]
    fn polarization_mismatch_reduces_power() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4);
        let aligned = Transmitter::at(pt(0.0, 10.0));
        let crossed = aligned.with_polarization_mismatch(FRAC_PI_2);
        let ratio = sim.received_power(&crossed, &array) / sim.received_power(&aligned, &array);
        assert!((10.0 * ratio.log10() + 20.0).abs() < 1e-6, "{ratio}");
    }

    #[test]
    fn multipath_superposes_two_bearings() {
        // One metal wall ⇒ direct + one strong reflection; the per-antenna
        // streams must equal the sum of the two individual path responses.
        let fp = Floorplan::empty().with_wall(seg(pt(-50.0, 8.0), pt(50.0, 8.0)), Material::METAL);
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4);
        let tx = Transmitter::at(pt(12.0, 0.5));
        let paths = sim.paths(&tx, &array);
        assert!(paths.len() >= 2);
        let combined = sim.receive(&tx, &array, cw, 0.0, 0.5e-6, SAMPLE_RATE_HZ);
        // Sum the per-path receptions.
        let mut acc = vec![vec![Complex64::ZERO; combined[0].len()]; combined.len()];
        for p in &paths {
            let single = sim.receive_via_paths(
                std::slice::from_ref(p),
                &tx,
                &array,
                cw,
                0.0,
                0.5e-6,
                SAMPLE_RATE_HZ,
            );
            for (am, sm) in acc.iter_mut().zip(&single) {
                for (a, s) in am.iter_mut().zip(sm) {
                    *a += *s;
                }
            }
        }
        for (cm, am) in combined.iter().zip(&acc) {
            for (c, a) in cm.iter().zip(am) {
                assert!((*c - *a).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn preamble_through_channel_is_delayed() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 2);
        let d = 30.0;
        let tx = Transmitter::at(pt(0.0, d));
        let p = Preamble::new();
        // Sample around the start of the LTS; a delayed channel shifts the
        // waveform by d/c ≈ 100 ns = 4 samples at 40 MS/s.
        let rx = sim.receive(
            &tx,
            &array,
            |t| p.eval(t),
            LTS0_START_S,
            1.0e-6,
            SAMPLE_RATE_HZ,
        );
        let delay = d / crate::array::SPEED_OF_LIGHT;
        assert!(
            (delay * SAMPLE_RATE_HZ - 4.0).abs() < 0.1,
            "≈4 samples of delay"
        );
        // rx at sample k equals gain · preamble(t_k − delay): the ratio is a
        // constant complex gain across sample indices.
        let ratio_at =
            |k: usize| rx[0][k] / p.eval(LTS0_START_S + k as f64 / SAMPLE_RATE_HZ - delay);
        let g = ratio_at(10);
        let g2 = ratio_at(25);
        assert!((g - g2).abs() < 1e-9 * g.abs(), "{g} vs {g2}");
    }

    #[test]
    fn offrow_element_sees_different_phase_for_offaxis_source() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        // Source at +y vs source at -y: the in-row elements can't tell the
        // difference (mirror symmetry), the off-row element can.
        let up = Transmitter::at(pt(3.0, 40.0));
        let down = Transmitter::at(pt(3.0, -40.0));
        let rx_up = sim.receive(&up, &array, cw, 0.0, 0.25e-6, SAMPLE_RATE_HZ);
        let rx_down = sim.receive(&down, &array, cw, 0.0, 0.25e-6, SAMPLE_RATE_HZ);
        // In-row relative phases match.
        for m in 1..8 {
            let a = (rx_up[m][1] / rx_up[0][1]).arg();
            let b = (rx_down[m][1] / rx_down[0][1]).arg();
            assert!((a - b).abs() < 2e-2, "in-row element {m} differs");
        }
        // Off-row relative phase differs clearly.
        let a = (rx_up[8][1] / rx_up[0][1]).arg();
        let b = (rx_down[8][1] / rx_down[0][1]).arg();
        assert!(
            (a - b).abs() > 0.5,
            "off-row should disambiguate: {a} vs {b}"
        );
    }

    #[test]
    fn amplitude_scales_linearly() {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 2);
        let tx1 = Transmitter::at(pt(0.0, 10.0));
        let tx2 = tx1.with_amplitude(2.0);
        let r1 = sim.receive(&tx1, &array, cw, 0.0, 0.25e-6, SAMPLE_RATE_HZ);
        let r2 = sim.receive(&tx2, &array, cw, 0.0, 0.25e-6, SAMPLE_RATE_HZ);
        for (a, b) in r1[0].iter().zip(&r2[0]) {
            assert!((b.abs() - 2.0 * a.abs()).abs() < 1e-12);
        }
    }
}
