//! Floorplans: walls, materials, and pillars.
//!
//! The paper's testbed is one floor of a busy office with drywall offices, a
//! few concrete pillars, and clients placed near "metal, wood, glass and
//! plastic walls" (§4). Materials matter twice: a wall *reflects* part of
//! the energy (feeding the image-method reflection paths) and *attenuates*
//! what passes through (shadowing the direct path).

use crate::geometry::{Circle, Point, Segment};

/// Electromagnetic surface properties at 2.4 GHz.
///
/// Values are representative of the indoor-propagation literature rather
/// than measured; the reproduction only needs reflections strong enough to
/// create realistic multipath and transmission losses strong enough to
/// shadow NLoS clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Descriptive name.
    pub name: &'static str,
    /// Amplitude reflection coefficient magnitude `|Γ| ∈ [0, 1]`.
    pub reflection: f64,
    /// Through-wall power attenuation in dB (positive).
    pub transmission_loss_db: f64,
}

impl Material {
    /// Interior drywall / plasterboard partition.
    pub const DRYWALL: Material = Material {
        name: "drywall",
        reflection: 0.35,
        transmission_loss_db: 3.0,
    };
    /// Structural concrete (also used for the pillars).
    pub const CONCRETE: Material = Material {
        name: "concrete",
        reflection: 0.6,
        transmission_loss_db: 12.0,
    };
    /// Glass partition / window.
    pub const GLASS: Material = Material {
        name: "glass",
        reflection: 0.25,
        transmission_loss_db: 2.0,
    };
    /// Metal surface (elevator doors, cabinets): near-perfect reflector.
    pub const METAL: Material = Material {
        name: "metal",
        reflection: 0.95,
        transmission_loss_db: 30.0,
    };
    /// Wooden door or furniture surface.
    pub const WOOD: Material = Material {
        name: "wood",
        reflection: 0.3,
        transmission_loss_db: 4.0,
    };
}

/// A wall: a vertical planar surface seen in plan view as a segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Wall {
    /// Plan-view geometry.
    pub segment: Segment,
    /// Surface material.
    pub material: Material,
}

/// A concrete pillar (plan-view circle) that blocks but does not usefully
/// reflect (its curved surface scatters energy diffusely).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pillar {
    /// Plan-view geometry.
    pub circle: Circle,
    /// Power attenuation in dB for a ray passing through the pillar.
    pub attenuation_db: f64,
}

impl Pillar {
    /// A standard concrete pillar. 6 dB per crossing: a ~0.7 m column
    /// blocks the geometric ray but diffraction around it leaves
    /// substantial energy on the direct bearing (which is why the paper's
    /// Fig. 17 still sees the direct path among the top three peaks even
    /// behind two pillars).
    pub fn concrete(center: Point, radius: f64) -> Self {
        Self {
            circle: Circle { center, radius },
            attenuation_db: 6.0,
        }
    }
}

/// A floorplan: a set of walls and pillars in a bounded region.
#[derive(Clone, Debug, Default)]
pub struct Floorplan {
    walls: Vec<Wall>,
    pillars: Vec<Pillar>,
    /// Bounding box (min, max) corners, grown as geometry is added.
    bounds: Option<(Point, Point)>,
}

impl Floorplan {
    /// An empty floorplan (free space).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a wall; returns `self` for builder-style chaining.
    pub fn with_wall(mut self, segment: Segment, material: Material) -> Self {
        self.push_wall(Wall { segment, material });
        self
    }

    /// Adds a pillar; returns `self` for chaining.
    pub fn with_pillar(mut self, pillar: Pillar) -> Self {
        self.grow_bounds(pillar.circle.center);
        self.pillars.push(pillar);
        self
    }

    /// Adds a wall in place.
    pub fn push_wall(&mut self, wall: Wall) {
        self.grow_bounds(wall.segment.a);
        self.grow_bounds(wall.segment.b);
        self.walls.push(wall);
    }

    /// Adds a rectangular room outline (four walls of one material).
    pub fn with_rect(mut self, min: Point, max: Point, material: Material) -> Self {
        use crate::geometry::{pt, seg};
        let corners = [
            pt(min.x, min.y),
            pt(max.x, min.y),
            pt(max.x, max.y),
            pt(min.x, max.y),
        ];
        for i in 0..4 {
            self.push_wall(Wall {
                segment: seg(corners[i], corners[(i + 1) % 4]),
                material,
            });
        }
        self
    }

    /// All walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// All pillars.
    pub fn pillars(&self) -> &[Pillar] {
        &self.pillars
    }

    /// Bounding box of all geometry, if any.
    pub fn bounds(&self) -> Option<(Point, Point)> {
        self.bounds
    }

    fn grow_bounds(&mut self, p: Point) {
        use crate::geometry::pt;
        self.bounds = Some(match self.bounds {
            None => (p, p),
            Some((lo, hi)) => (
                pt(lo.x.min(p.x), lo.y.min(p.y)),
                pt(hi.x.max(p.x), hi.y.max(p.y)),
            ),
        });
    }

    /// Total through-obstruction power loss in dB along a ray, ignoring
    /// crossings within `margin` meters of either ray endpoint (so a
    /// reflection point on a wall doesn't count the reflecting wall as an
    /// obstruction).
    pub fn obstruction_loss_db(&self, ray: &Segment, margin: f64) -> f64 {
        let mut loss = 0.0;
        for wall in &self.walls {
            if ray.intersect_interior(&wall.segment, margin).is_some() {
                loss += wall.material.transmission_loss_db;
            }
        }
        for pillar in &self.pillars {
            if pillar.circle.intersects_segment(ray) {
                loss += pillar.attenuation_db;
            }
        }
        loss
    }

    /// Number of pillars a ray passes through (Fig. 17's experimental knob).
    pub fn pillars_crossed(&self, ray: &Segment) -> usize {
        self.pillars
            .iter()
            .filter(|p| p.circle.intersects_segment(ray))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{pt, seg};

    #[test]
    fn builder_accumulates_geometry() {
        let fp = Floorplan::empty()
            .with_wall(seg(pt(0.0, 0.0), pt(10.0, 0.0)), Material::DRYWALL)
            .with_pillar(Pillar::concrete(pt(5.0, 5.0), 0.4));
        assert_eq!(fp.walls().len(), 1);
        assert_eq!(fp.pillars().len(), 1);
    }

    #[test]
    fn rect_adds_four_walls_and_bounds() {
        let fp = Floorplan::empty().with_rect(pt(0.0, 0.0), pt(20.0, 10.0), Material::CONCRETE);
        assert_eq!(fp.walls().len(), 4);
        let (lo, hi) = fp.bounds().unwrap();
        assert_eq!(lo, pt(0.0, 0.0));
        assert_eq!(hi, pt(20.0, 10.0));
    }

    #[test]
    fn obstruction_loss_sums_walls_and_pillars() {
        let fp = Floorplan::empty()
            .with_wall(seg(pt(5.0, -1.0), pt(5.0, 1.0)), Material::DRYWALL)
            .with_wall(seg(pt(7.0, -1.0), pt(7.0, 1.0)), Material::GLASS)
            .with_pillar(Pillar::concrete(pt(3.0, 0.0), 0.3));
        let ray = seg(pt(0.0, 0.0), pt(10.0, 0.0));
        let loss = fp.obstruction_loss_db(&ray, 1e-3);
        assert!((loss - (3.0 + 2.0 + 6.0)).abs() < 1e-9, "loss {loss}");
        assert_eq!(fp.pillars_crossed(&ray), 1);
    }

    #[test]
    fn clear_ray_has_no_loss() {
        let fp = Floorplan::empty().with_wall(seg(pt(5.0, 2.0), pt(5.0, 4.0)), Material::METAL);
        let ray = seg(pt(0.0, 0.0), pt(10.0, 0.0));
        assert_eq!(fp.obstruction_loss_db(&ray, 1e-3), 0.0);
    }

    #[test]
    fn margin_excludes_reflection_wall() {
        let fp = Floorplan::empty().with_wall(seg(pt(0.0, 5.0), pt(10.0, 5.0)), Material::CONCRETE);
        // Ray landing exactly on the wall: with a margin the wall is not
        // counted as an obstruction of its own reflection point.
        let ray = seg(pt(2.0, 0.0), pt(5.0, 5.0));
        assert_eq!(fp.obstruction_loss_db(&ray, 1e-2), 0.0);
        assert!(fp.obstruction_loss_db(&ray, 0.0) > 0.0);
    }

    #[test]
    fn material_constants_sane() {
        for m in [
            Material::DRYWALL,
            Material::CONCRETE,
            Material::GLASS,
            Material::METAL,
            Material::WOOD,
        ] {
            assert!(m.reflection > 0.0 && m.reflection <= 1.0);
            assert!(m.transmission_loss_db > 0.0);
        }
        #[allow(clippy::assertions_on_constants)] // documents the material ordering
        {
            assert!(Material::METAL.reflection > Material::DRYWALL.reflection);
        }
    }
}
