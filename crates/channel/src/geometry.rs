//! 2D geometry primitives for the image-method ray tracer.
//!
//! The floorplan is modeled in plan view (walls are vertical planes, so
//! specular reflection geometry is two-dimensional); the AP–client height
//! difference is layered on top as a third coordinate when computing path
//! lengths (Appendix A).

/// A point (or free vector) in the floorplan, in meters.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// East–west coordinate in meters.
    pub x: f64,
    /// North–south coordinate in meters.
    pub y: f64,
}

/// Shorthand constructor.
#[inline]
pub const fn pt(x: f64, y: f64) -> Point {
    Point { x, y }
}

impl Point {
    /// Vector difference `self − other`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // inherent name predates ops impls
    pub fn sub(self, other: Point) -> Point {
        pt(self.x - other.x, self.y - other.y)
    }

    /// Vector sum.
    #[inline]
    #[allow(clippy::should_implement_trait)] // inherent name predates ops impls
    pub fn add(self, other: Point) -> Point {
        pt(self.x + other.x, self.y + other.y)
    }

    /// Scales the vector.
    #[inline]
    pub fn scale(self, k: f64) -> Point {
        pt(self.x * k, self.y * k)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component).
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.sub(other).norm()
    }

    /// Unit vector in this direction (zero vector returned unchanged).
    pub fn normalized(self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Angle of this vector from the +x axis, in radians `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at angle `theta` from the +x axis.
    #[inline]
    pub fn unit(theta: f64) -> Point {
        pt(theta.cos(), theta.sin())
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Point {
        pt(-self.y, self.x)
    }
}

/// A line segment between two points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// Shorthand constructor.
#[inline]
pub const fn seg(a: Point, b: Point) -> Segment {
    Segment { a, b }
}

/// Tolerance for geometric predicates, in meters. Floorplan coordinates are
/// O(10 m); 1 µm is far below any physically meaningful scale here.
const EPS: f64 = 1e-6;

impl Segment {
    /// Segment length in meters.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.add(self.b).scale(0.5)
    }

    /// Direction unit vector from `a` to `b`.
    pub fn direction(&self) -> Point {
        self.b.sub(self.a).normalized()
    }

    /// Proper intersection of two segments.
    ///
    /// Returns the intersection point if the segments cross (including at
    /// endpoints within tolerance); `None` for parallel/disjoint segments.
    pub fn intersect(&self, other: &Segment) -> Option<Point> {
        let r = self.b.sub(self.a);
        let s = other.b.sub(other.a);
        let denom = r.cross(s);
        if denom.abs() < EPS * EPS {
            return None; // parallel (collinear overlap treated as no proper crossing)
        }
        let qp = other.a.sub(self.a);
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = EPS / r.norm().max(EPS);
        let tol_u = EPS / s.norm().max(EPS);
        if t >= -tol && t <= 1.0 + tol && u >= -tol_u && u <= 1.0 + tol_u {
            Some(self.a.add(r.scale(t)))
        } else {
            None
        }
    }

    /// Like [`Segment::intersect`] but excludes crossings within `margin`
    /// meters of either endpoint of `self` — used to ignore a ray's own
    /// launch/landing points when counting obstructions.
    pub fn intersect_interior(&self, other: &Segment, margin: f64) -> Option<Point> {
        let p = self.intersect(other)?;
        if p.distance(self.a) < margin || p.distance(self.b) < margin {
            None
        } else {
            Some(p)
        }
    }

    /// Mirrors a point across the infinite line through this segment
    /// (the "image source" construction).
    pub fn mirror(&self, p: Point) -> Point {
        let d = self.direction();
        let ap = p.sub(self.a);
        // Component along the wall stays, perpendicular component flips.
        let along = d.scale(ap.dot(d));
        let perp = ap.sub(along);
        self.a.add(along).sub(perp)
    }

    /// Distance from a point to the segment (not the infinite line).
    pub fn distance_to(&self, p: Point) -> f64 {
        let d = self.b.sub(self.a);
        let len2 = d.dot(d);
        if len2 == 0.0 {
            return p.distance(self.a);
        }
        let t = (p.sub(self.a).dot(d) / len2).clamp(0.0, 1.0);
        p.distance(self.a.add(d.scale(t)))
    }

    /// Whether `p` lies on the segment within tolerance.
    pub fn contains(&self, p: Point) -> bool {
        self.distance_to(p) < EPS
    }
}

/// A circular obstruction (the office's concrete pillars, §4 and Fig. 17).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius in meters.
    pub radius: f64,
}

impl Circle {
    /// Whether a segment passes through the circle's interior.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        s.distance_to(self.center) < self.radius
    }
}

/// Normalizes an angle to `[0, 2π)`.
pub fn wrap_angle(theta: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut t = theta % tau;
    if t < 0.0 {
        t += tau;
    }
    t
}

/// Absolute angular difference in `[0, π]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    let d = wrap_angle(a - b);
    d.min(std::f64::consts::TAU - d)
}

impl Segment {
    /// Distance from a point to the infinite line through the segment.
    pub fn distance_to_line(&self, p: Point) -> f64 {
        let d = self.direction();
        let ap = p.sub(self.a);
        ap.sub(d.scale(ap.dot(d))).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn point_arithmetic() {
        let a = pt(1.0, 2.0);
        let b = pt(3.0, -1.0);
        assert_eq!(a.add(b), pt(4.0, 1.0));
        assert_eq!(b.sub(a), pt(2.0, -3.0));
        assert_eq!(a.scale(2.0), pt(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert!((pt(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn angles_and_units() {
        assert!((Point::unit(0.0).x - 1.0).abs() < 1e-12);
        assert!((Point::unit(FRAC_PI_2).y - 1.0).abs() < 1e-12);
        assert!((pt(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(pt(1.0, 0.0).perp(), pt(0.0, 1.0));
    }

    #[test]
    fn segment_intersection_crossing() {
        let s1 = seg(pt(0.0, 0.0), pt(2.0, 2.0));
        let s2 = seg(pt(0.0, 2.0), pt(2.0, 0.0));
        let p = s1.intersect(&s2).expect("must cross");
        assert!(p.distance(pt(1.0, 1.0)) < 1e-9);
    }

    #[test]
    fn segment_intersection_disjoint_and_parallel() {
        let s1 = seg(pt(0.0, 0.0), pt(1.0, 0.0));
        let s2 = seg(pt(0.0, 1.0), pt(1.0, 1.0));
        assert!(s1.intersect(&s2).is_none(), "parallel");
        let s3 = seg(pt(5.0, 5.0), pt(6.0, 6.0));
        assert!(s1.intersect(&s3).is_none(), "disjoint");
    }

    #[test]
    fn segment_intersection_at_endpoint() {
        let s1 = seg(pt(0.0, 0.0), pt(1.0, 0.0));
        let s2 = seg(pt(1.0, 0.0), pt(1.0, 1.0));
        assert!(s1.intersect(&s2).is_some());
    }

    #[test]
    fn interior_intersection_skips_endpoints() {
        let ray = seg(pt(0.0, 0.0), pt(2.0, 0.0));
        let wall = seg(pt(0.0, -1.0), pt(0.0, 1.0)); // crosses at ray start
        assert!(ray.intersect(&wall).is_some());
        assert!(ray.intersect_interior(&wall, 0.01).is_none());
    }

    #[test]
    fn mirror_across_horizontal_wall() {
        let wall = seg(pt(0.0, 0.0), pt(10.0, 0.0));
        assert_eq!(wall.mirror(pt(3.0, 2.0)), pt(3.0, -2.0));
        // Points on the line are fixed.
        let on = wall.mirror(pt(4.0, 0.0));
        assert!(on.distance(pt(4.0, 0.0)) < 1e-12);
    }

    #[test]
    fn mirror_is_involution() {
        let wall = seg(pt(1.0, 1.0), pt(4.0, 3.0));
        let p = pt(-2.0, 5.0);
        let back = wall.mirror(wall.mirror(p));
        assert!(back.distance(p) < 1e-9);
    }

    #[test]
    fn mirror_preserves_distance_to_line() {
        let wall = seg(pt(0.0, 0.0), pt(1.0, 2.0));
        let p = pt(3.0, -1.0);
        let m = wall.mirror(p);
        assert!((wall.distance_to_line(p) - wall.distance_to_line(m)).abs() < 1e-9);
    }

    #[test]
    fn distance_to_segment() {
        let s = seg(pt(0.0, 0.0), pt(10.0, 0.0));
        assert!((s.distance_to(pt(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((s.distance_to(pt(-4.0, 3.0)) - 5.0).abs() < 1e-12); // clamps to endpoint
    }

    #[test]
    fn circle_blocking() {
        let c = Circle {
            center: pt(5.0, 0.0),
            radius: 0.5,
        };
        assert!(c.intersects_segment(&seg(pt(0.0, 0.0), pt(10.0, 0.0))));
        assert!(!c.intersects_segment(&seg(pt(0.0, 1.0), pt(10.0, 1.0))));
    }

    #[test]
    fn angle_wrapping() {
        assert!((wrap_angle(-FRAC_PI_2) - 1.5 * PI).abs() < 1e-12);
        assert!((wrap_angle(2.5 * PI) - FRAC_PI_2).abs() < 1e-12);
        assert!((angle_diff(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(PI, 0.0) - PI).abs() < 1e-12);
    }
}
