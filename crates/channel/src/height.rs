//! AP–client height-difference error analysis (paper Appendix A).
//!
//! A linear array measures bearing from phase differences that are
//! proportional to the *path-length difference* between adjacent antennas.
//! When the client sits `h` meters below the AP, every path stretches by
//! `1/cos φ` with `cos φ = d / √(d² + h²)`, inflating the measured
//! difference by the same factor. The paper bounds the resulting relative
//! error at 1–4 % for `h = 1.5 m`, `d ∈ [5, 10] m`.

/// Relative error in the antenna path-length difference caused by a height
/// offset `h` at horizontal distance `d` (Appendix A: `(cos φ)⁻¹ − 1`).
pub fn bearing_error_fraction(h: f64, d: f64) -> f64 {
    assert!(d > 0.0, "distance must be positive");
    let slant = (d * d + h * h).sqrt();
    slant / d - 1.0
}

/// The paper's Appendix A table: percentage error for the two distances it
/// quotes.
pub fn paper_reference_errors() -> [(f64, f64, f64); 2] {
    [
        (1.5, 5.0, bearing_error_fraction(1.5, 5.0) * 100.0),
        (1.5, 10.0, bearing_error_fraction(1.5, 10.0) * 100.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_appendix_numbers() {
        // "For h = 1.5 m and d = 5 m, this is 4% error; for h = 1.5 m and
        // d = 10 m, this is 1% error."
        let e5 = bearing_error_fraction(1.5, 5.0) * 100.0;
        let e10 = bearing_error_fraction(1.5, 10.0) * 100.0;
        assert!((e5 - 4.0).abs() < 0.6, "5 m error {e5}%");
        assert!((e10 - 1.0).abs() < 0.2, "10 m error {e10}%");
    }

    #[test]
    fn zero_height_offset_is_exact() {
        assert_eq!(bearing_error_fraction(0.0, 7.0), 0.0);
    }

    #[test]
    fn error_decreases_with_distance() {
        let mut prev = f64::INFINITY;
        for d in [2.0, 4.0, 8.0, 16.0, 32.0] {
            let e = bearing_error_fraction(1.5, d);
            assert!(e < prev);
            prev = e;
        }
    }

    #[test]
    fn error_increases_with_height() {
        assert!(bearing_error_fraction(3.0, 5.0) > bearing_error_fraction(1.5, 5.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        bearing_error_fraction(1.5, 0.0);
    }
}
