//! # at-channel — indoor multipath RF channel simulator
//!
//! The substitute for the paper's physical office testbed (see DESIGN.md §1):
//! a 2D image-method ray tracer over a vector floorplan, producing the
//! per-antenna complex baseband samples that the real WARP hardware would
//! capture.
//!
//! - [`geometry`]: points, segments, mirroring, circles;
//! - [`floorplan`]: walls with materials, concrete pillars, obstruction loss;
//! - [`propagation`]: image-method path tracing (direct + 1st/2nd-order
//!   specular reflections) with free-space loss and per-bounce phase
//!   inversion;
//! - [`array`]: uniform linear arrays at λ/2 spacing plus the off-row
//!   disambiguation antenna (paper §2.3.4, §3);
//! - [`channel`]: applies traced paths to a waveform, yielding per-antenna
//!   sample streams with exact per-antenna carrier phases;
//! - [`polarization`] and [`height`]: the §4.3.2 and Appendix A effects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
#[allow(clippy::module_inception)]
pub mod channel;
pub mod floorplan;
pub mod geometry;
pub mod height;
pub mod polarization;
pub mod propagation;

pub use array::{
    half_wavelength, offrow_offset, wavelength, AntennaArray, ArrayLayout, CARRIER_HZ,
    SPEED_OF_LIGHT,
};
pub use channel::{ChannelSim, Transmitter};
pub use floorplan::{Floorplan, Material, Pillar, Wall};
pub use geometry::{pt, seg, Point, Segment};
pub use propagation::{free_space_path, Path, PathTracer};
