//! Antenna polarization mismatch (paper §4.3.2).
//!
//! The testbed uses linearly polarized antennas; rotating the client's
//! antenna relative to the AP's attenuates the received signal: "a
//! misalignment of polarization of 45 degrees will degrade the signal up to
//! 3 dB and a misaligned of 90 degrees causes an attenuation of 20 dB or
//! more". The ideal-dipole law is `cos²ψ` on power, with a practical floor
//! from cross-polar leakage; we use a −20 dB floor to match the paper.

use at_dsp::db_to_linear;

/// Cross-polar leakage floor: a 90°-misaligned antenna still receives
/// −20 dB of the co-polar power (paper §4.3.2: "20 dB or more").
pub const CROSS_POLAR_FLOOR_DB: f64 = -20.0;

/// Power attenuation factor (linear, ≤ 1) for a polarization mismatch of
/// `psi` radians between the client's and AP's linear antennas.
pub fn polarization_loss(psi: f64) -> f64 {
    let c = psi.cos();
    (c * c).max(db_to_linear(CROSS_POLAR_FLOOR_DB))
}

/// Same as [`polarization_loss`] but returned in (negative) dB.
pub fn polarization_loss_db(psi: f64) -> f64 {
    10.0 * polarization_loss(psi).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn aligned_antennas_lose_nothing() {
        assert!((polarization_loss(0.0) - 1.0).abs() < 1e-12);
        assert!(polarization_loss_db(0.0).abs() < 1e-9);
    }

    #[test]
    fn forty_five_degrees_is_3db() {
        // cos²(45°) = 0.5 ⇒ −3.01 dB, the paper's "up to 3 dB".
        let db = polarization_loss_db(FRAC_PI_4);
        assert!((db + 3.0103).abs() < 0.01, "{db}");
    }

    #[test]
    fn ninety_degrees_hits_the_20db_floor() {
        let db = polarization_loss_db(FRAC_PI_2);
        assert!((db - CROSS_POLAR_FLOOR_DB).abs() < 1e-9, "{db}");
    }

    #[test]
    fn loss_is_symmetric_and_periodic() {
        for psi in [0.1, 0.8, 1.3] {
            assert!((polarization_loss(psi) - polarization_loss(-psi)).abs() < 1e-12);
            assert!((polarization_loss(psi) - polarization_loss(psi + PI)).abs() < 1e-12);
        }
    }

    #[test]
    fn loss_monotone_from_0_to_90() {
        let mut prev = polarization_loss(0.0);
        for i in 1..=90 {
            let cur = polarization_loss(i as f64 * PI / 180.0);
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }
}
