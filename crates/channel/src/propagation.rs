//! Image-method multipath ray tracing.
//!
//! Indoor RF propagation at 2.4 GHz is dominated by the direct ray plus a
//! handful of specular wall reflections — exactly the discrete-path regime
//! MUSIC models (paper eq. 3). The classic image method constructs each
//! reflection as a straight ray from a *virtual source*: the transmitter
//! mirrored across the reflecting wall (twice for second-order paths).
//!
//! Each traced [`Path`] carries its virtual-source position so the channel
//! can compute exact per-antenna path lengths — the phase gradient across
//! the array *is* the angle-of-arrival information ArrayTrack consumes.

use crate::array::{wavelength, SPEED_OF_LIGHT};
use crate::floorplan::Floorplan;
use crate::geometry::{seg, Point};
use at_linalg::Complex64;

/// One propagation path from a transmitter to a receiver location.
#[derive(Clone, Copy, Debug)]
pub struct Path {
    /// Virtual source (the transmitter, mirrored once per reflection).
    /// Plan-view position; heights are handled via [`Path::length`].
    pub image: Point,
    /// Total 3D path length to the receiver reference point, meters.
    pub length: f64,
    /// World-frame angle of the arrival direction (from receiver toward the
    /// virtual source), radians.
    pub world_angle: f64,
    /// Complex path gain *excluding* the carrier phase `e^{-j2πd/λ}`, which
    /// the channel applies per antenna. Includes free-space loss, reflection
    /// coefficients (with per-bounce phase inversion) and obstruction loss.
    pub gain: Complex64,
    /// Number of wall reflections (0 = direct path).
    pub order: usize,
}

impl Path {
    /// Propagation delay to the receiver reference point, seconds.
    pub fn delay(&self) -> f64 {
        self.length / SPEED_OF_LIGHT
    }

    /// Received power of this path relative to unit transmit power, in dB.
    pub fn power_db(&self) -> f64 {
        10.0 * self.gain.norm_sqr().log10()
    }
}

/// Correlation length of wall-surface roughness, meters. Office walls are
/// not ideal mirrors at 2.4 GHz (λ ≈ 12 cm): paint texture, studs, shelves,
/// cubicle clutter and people perturb each specular bounce. We model this
/// as a deterministic pseudo-random phase/amplitude factor per
/// `ROUGHNESS_CELL`-sized patch of wall around the reflection point — a
/// static client sees a static channel, but a few-centimeter move shifts
/// the reflection point into a new patch and decorrelates the reflected
/// path, exactly the behaviour the paper's Table 1 measures (reflections
/// change under 5 cm motion ~4× more often than the direct path).
const ROUGHNESS_CELL: f64 = 0.015;

/// Image-method path tracer over a floorplan.
#[derive(Clone, Debug)]
pub struct PathTracer<'a> {
    floorplan: &'a Floorplan,
    /// Maximum reflection order (0 = direct only; 2 is the default and
    /// matches the energy budget that matters at these path losses).
    max_order: usize,
    /// Paths weaker than this fraction of the strongest path's amplitude
    /// are dropped (they are far below the noise floor).
    relative_floor: f64,
    /// Endpoint margin when counting obstructions, meters.
    margin: f64,
    /// Whether reflections pick up the surface-roughness factor (default
    /// on; disable for geometry-exact tests).
    rough_surfaces: bool,
}

impl<'a> PathTracer<'a> {
    /// Tracer with second-order reflections (the default configuration).
    pub fn new(floorplan: &'a Floorplan) -> Self {
        Self {
            floorplan,
            max_order: 2,
            relative_floor: 1e-3,
            margin: 1e-2,
            rough_surfaces: true,
        }
    }

    /// Overrides the maximum reflection order (0, 1, or 2).
    pub fn with_max_order(mut self, max_order: usize) -> Self {
        assert!(
            max_order <= 2,
            "only up to second-order reflections are implemented"
        );
        self.max_order = max_order;
        self
    }

    /// Disables surface roughness: reflections become ideal mirrors
    /// (useful for geometry-exact tests and the free-space control).
    pub fn with_smooth_surfaces(mut self) -> Self {
        self.rough_surfaces = false;
        self
    }

    /// The deterministic roughness draw for a bounce off wall `wall_idx`
    /// at point `hit`: a complex gain factor plus an apparent-bearing
    /// jitter in radians (the glint point on a cluttered surface wanders,
    /// shifting the reflection's AoA by a few degrees).
    fn roughness(&self, wall_idx: usize, hit: Point) -> (Complex64, f64) {
        if !self.rough_surfaces {
            return (Complex64::ONE, 0.0);
        }
        let cx = (hit.x / ROUGHNESS_CELL).floor() as i64;
        let cy = (hit.y / ROUGHNESS_CELL).floor() as i64;
        let h = splitmix64(
            (wall_idx as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(cx as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .wrapping_add(cy as u64),
        );
        let h2 = splitmix64(h);
        // Phase uniform in [0, 2π); amplitude in [0.5, 1.0] (rough
        // scattering loses a variable share of the specular energy).
        let phase = (h >> 32) as f64 / u32::MAX as f64 * std::f64::consts::TAU;
        let u = (h & 0xffff_ffff) as f64 / u32::MAX as f64;
        let amp = 0.5 + 0.5 * u;
        // Bearing jitter uniform in ±MAX_BEARING_JITTER.
        let v = (h2 >> 32) as f64 / u32::MAX as f64;
        let jitter = (v - 0.5) * 2.0 * MAX_BEARING_JITTER;
        (Complex64::from_polar(amp, phase), jitter)
    }

    /// Traces all propagation paths from `tx` to `rx`.
    ///
    /// `tx_height` and `rx_height` are heights above the floor in meters;
    /// walls are vertical planes so reflections stay 2D, while path lengths
    /// become `√(L²₂d + Δh²)` (Appendix A geometry).
    pub fn trace(&self, tx: Point, tx_height: f64, rx: Point, rx_height: f64) -> Vec<Path> {
        let dh = tx_height - rx_height;
        let mut paths = Vec::new();

        // Direct path.
        let direct_ray = seg(tx, rx);
        let loss_db = self.floorplan.obstruction_loss_db(&direct_ray, self.margin);
        if let Some(p) = self.make_path(tx, rx, dh, Complex64::ONE, loss_db, 0) {
            paths.push(p);
        }

        if self.max_order >= 1 {
            self.trace_first_order(tx, rx, dh, &mut paths);
        }
        if self.max_order >= 2 {
            self.trace_second_order(tx, rx, dh, &mut paths);
        }

        // Drop paths far below the strongest.
        let peak = paths.iter().map(|p| p.gain.abs()).fold(0.0f64, f64::max);
        paths.retain(|p| p.gain.abs() >= peak * self.relative_floor);
        // Strongest first: a stable, convenient order for consumers.
        paths.sort_by(|a, b| {
            b.gain
                .abs()
                .partial_cmp(&a.gain.abs())
                .expect("finite gains")
        });
        paths
    }

    fn trace_first_order(&self, tx: Point, rx: Point, dh: f64, out: &mut Vec<Path>) {
        for (wi, wall) in self.floorplan.walls().iter().enumerate() {
            let image = wall.segment.mirror(tx);
            let Some(hit) = seg(image, rx).intersect(&wall.segment) else {
                continue;
            };
            // Degenerate: transmitter effectively on the wall plane.
            if image.distance(tx) < 2.0 * self.margin {
                continue;
            }
            // Obstructions along both legs, excluding the reflection point.
            let leg1 = seg(tx, hit);
            let leg2 = seg(hit, rx);
            let loss_db = self.floorplan.obstruction_loss_db(&leg1, self.margin)
                + self.floorplan.obstruction_loss_db(&leg2, self.margin);
            // Specular reflection with phase inversion and roughness.
            let (rough, jitter) = self.roughness(wi, hit);
            let refl = Complex64::real(-wall.material.reflection) * rough;
            if let Some(p) =
                self.make_path(rotate_about(image, rx, jitter), rx, dh, refl, loss_db, 1)
            {
                out.push(p);
            }
        }
    }

    fn trace_second_order(&self, tx: Point, rx: Point, dh: f64, out: &mut Vec<Path>) {
        let walls = self.floorplan.walls();
        for (i, wi) in walls.iter().enumerate() {
            let image1 = wi.segment.mirror(tx);
            if image1.distance(tx) < 2.0 * self.margin {
                continue;
            }
            for (j, wj) in walls.iter().enumerate() {
                if i == j {
                    continue;
                }
                let image2 = wj.segment.mirror(image1);
                if image2.distance(image1) < 2.0 * self.margin {
                    continue;
                }
                // Unfold back-to-front: last bounce first.
                let Some(hit2) = seg(image2, rx).intersect(&wj.segment) else {
                    continue;
                };
                let Some(hit1) = seg(image1, hit2).intersect(&wi.segment) else {
                    continue;
                };
                let legs = [seg(tx, hit1), seg(hit1, hit2), seg(hit2, rx)];
                let loss_db: f64 = legs
                    .iter()
                    .map(|l| self.floorplan.obstruction_loss_db(l, self.margin))
                    .sum();
                let (rough1, jit1) = self.roughness(i, hit1);
                let (rough2, jit2) = self.roughness(j, hit2);
                let refl = Complex64::real(wi.material.reflection * wj.material.reflection)
                    * rough1
                    * rough2;
                let image = rotate_about(image2, rx, jit1 + jit2);
                if let Some(p) = self.make_path(image, rx, dh, refl, loss_db, 2) {
                    out.push(p);
                }
            }
        }
    }

    /// Assembles a [`Path`] from its virtual source, applying free-space
    /// loss `λ/(4πd)` and obstruction attenuation.
    fn make_path(
        &self,
        image: Point,
        rx: Point,
        dh: f64,
        reflection: Complex64,
        loss_db: f64,
        order: usize,
    ) -> Option<Path> {
        let d2 = image.distance(rx);
        let d = (d2 * d2 + dh * dh).sqrt();
        if d < 1e-3 {
            return None; // co-located: no meaningful path geometry
        }
        let fs = wavelength() / (4.0 * std::f64::consts::PI * d);
        let att = 10.0f64.powf(-loss_db / 20.0);
        let gain = reflection.scale(fs * att);
        Some(Path {
            image,
            length: d,
            world_angle: image.sub(rx).angle(),
            gain,
            order,
        })
    }
}

/// Maximum apparent-bearing jitter a rough bounce can add, radians (±12°).
const MAX_BEARING_JITTER: f64 = 12.0 * std::f64::consts::PI / 180.0;

/// Rotates `p` about `center` by `angle` radians — used to wander a
/// reflection's virtual source (and hence its apparent bearing) without
/// changing its path length.
fn rotate_about(p: Point, center: Point, angle: f64) -> Point {
    if angle == 0.0 {
        return p;
    }
    let d = p.sub(center);
    let (s, c) = angle.sin_cos();
    center.add(crate::geometry::pt(d.x * c - d.y * s, d.x * s + d.y * c))
}

/// The splitmix64 finalizer: a cheap, high-quality bit mixer for the
/// deterministic roughness hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Traces the single free-space path between two points (no floorplan).
pub fn free_space_path(tx: Point, tx_height: f64, rx: Point, rx_height: f64) -> Path {
    let fp = Floorplan::empty();
    PathTracer::new(&fp)
        .trace(tx, tx_height, rx, rx_height)
        .into_iter()
        .next()
        .expect("free space always has a direct path")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Material, Pillar};
    use crate::geometry::pt;

    #[test]
    fn free_space_has_one_direct_path() {
        let fp = Floorplan::empty();
        let paths = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.order, 0);
        assert!((p.length - 10.0).abs() < 1e-9);
        assert!((p.gain.abs() - wavelength() / (40.0 * std::f64::consts::PI)).abs() < 1e-12);
        // Arrival direction points from rx back toward tx.
        assert!((p.world_angle.abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn single_wall_adds_one_reflection() {
        let fp =
            Floorplan::empty().with_wall(seg(pt(-20.0, 5.0), pt(30.0, 5.0)), Material::CONCRETE);
        let paths = PathTracer::new(&fp).with_smooth_surfaces().trace(
            pt(0.0, 0.0),
            1.5,
            pt(10.0, 0.0),
            1.5,
        );
        assert_eq!(paths.len(), 2);
        let refl = paths.iter().find(|p| p.order == 1).expect("reflection");
        // Mirror geometry: path length = |(0,10) - (10,0)| = √200.
        assert!((refl.length - 200.0f64.sqrt()).abs() < 1e-9);
        // Reflection is weaker than the direct path.
        assert!(refl.gain.abs() < paths[0].gain.abs());
        // Phase-inverting reflection coefficient (exact with smooth walls).
        assert!(refl.gain.re < 0.0);
    }

    #[test]
    fn roughness_is_deterministic_but_position_sensitive() {
        let fp =
            Floorplan::empty().with_wall(seg(pt(-20.0, 5.0), pt(30.0, 5.0)), Material::CONCRETE);
        let tracer = PathTracer::new(&fp);
        let refl_at = |x: f64| {
            tracer
                .trace(pt(x, 0.0), 1.5, pt(10.0, 0.0), 1.5)
                .into_iter()
                .find(|p| p.order == 1)
                .expect("reflection")
                .gain
        };
        // Same geometry twice → identical gain (static channel).
        let a = refl_at(0.0);
        let b = refl_at(0.0);
        assert_eq!(a, b);
        // A decimeter of client motion shifts the reflection point into a
        // different roughness patch → different complex gain.
        let c = refl_at(0.4);
        assert!(
            (a - c).abs() > 1e-6 * a.abs(),
            "roughness should decorrelate"
        );
        // Roughness never amplifies beyond the smooth-wall gain.
        let smooth = PathTracer::new(&fp)
            .with_smooth_surfaces()
            .trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5)
            .into_iter()
            .find(|p| p.order == 1)
            .unwrap()
            .gain;
        assert!(a.abs() <= smooth.abs() + 1e-12);
    }

    #[test]
    fn reflection_point_must_lie_on_wall_segment() {
        // Short wall segment far to the side: mirror image exists but the
        // specular point misses the segment, so no reflected path.
        let fp = Floorplan::empty().with_wall(seg(pt(100.0, 5.0), pt(101.0, 5.0)), Material::METAL);
        let paths = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        assert_eq!(paths.len(), 1, "only the direct path should survive");
    }

    #[test]
    fn parallel_walls_make_second_order_path() {
        let fp = Floorplan::empty()
            .with_wall(seg(pt(-20.0, 5.0), pt(30.0, 5.0)), Material::METAL)
            .with_wall(seg(pt(-20.0, -5.0), pt(30.0, -5.0)), Material::METAL);
        let paths = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        let orders: Vec<usize> = paths.iter().map(|p| p.order).collect();
        assert!(orders.contains(&0));
        assert!(
            orders.iter().filter(|&&o| o == 1).count() >= 2,
            "{orders:?}"
        );
        assert!(orders.contains(&2), "{orders:?}");
    }

    #[test]
    fn max_order_limits_paths() {
        let fp = Floorplan::empty()
            .with_wall(seg(pt(-20.0, 5.0), pt(30.0, 5.0)), Material::METAL)
            .with_wall(seg(pt(-20.0, -5.0), pt(30.0, -5.0)), Material::METAL);
        let t0 = PathTracer::new(&fp).with_max_order(0);
        assert_eq!(t0.trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5).len(), 1);
        let t1 = PathTracer::new(&fp).with_max_order(1);
        assert!(t1
            .trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5)
            .iter()
            .all(|p| p.order <= 1));
    }

    #[test]
    fn pillar_attenuates_direct_path() {
        let clear = free_space_path(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        let fp = Floorplan::empty().with_pillar(Pillar::concrete(pt(5.0, 0.0), 0.4));
        let blocked = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        let direct = blocked.iter().find(|p| p.order == 0).expect("direct");
        let drop_db = clear.power_db() - direct.power_db();
        assert!((drop_db - 6.0).abs() < 1e-9, "pillar loss {drop_db}");
    }

    #[test]
    fn height_difference_lengthens_path() {
        let flat = free_space_path(pt(0.0, 0.0), 1.5, pt(5.0, 0.0), 1.5);
        let tall = free_space_path(pt(0.0, 0.0), 0.0, pt(5.0, 0.0), 1.5);
        assert!((flat.length - 5.0).abs() < 1e-12);
        assert!((tall.length - (25.0f64 + 2.25).sqrt()).abs() < 1e-12);
        assert!(tall.gain.abs() < flat.gain.abs());
    }

    #[test]
    fn paths_sorted_strongest_first() {
        let fp = Floorplan::empty()
            .with_wall(seg(pt(-20.0, 3.0), pt(30.0, 3.0)), Material::METAL)
            .with_wall(seg(pt(-20.0, -8.0), pt(30.0, -8.0)), Material::DRYWALL);
        let paths = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        for w in paths.windows(2) {
            assert!(w[0].gain.abs() >= w[1].gain.abs());
        }
    }

    #[test]
    fn delay_is_length_over_c() {
        let p = free_space_path(pt(0.0, 0.0), 1.5, pt(30.0, 0.0), 1.5);
        assert!((p.delay() - 30.0 / SPEED_OF_LIGHT).abs() < 1e-18);
    }

    #[test]
    fn blocked_direct_path_weaker_than_strong_reflection() {
        // Metal wall reflection vs. direct path through two concrete walls:
        // the reflection should dominate (the paper's S1 NLoS scenario).
        let fp = Floorplan::empty()
            .with_wall(seg(pt(4.0, -3.0), pt(4.0, 3.0)), Material::CONCRETE)
            .with_wall(seg(pt(6.0, -3.0), pt(6.0, 3.0)), Material::CONCRETE)
            .with_wall(seg(pt(-20.0, 4.0), pt(30.0, 4.0)), Material::METAL);
        let paths = PathTracer::new(&fp).trace(pt(0.0, 0.0), 1.5, pt(10.0, 0.0), 1.5);
        let direct = paths.iter().find(|p| p.order == 0).expect("direct");
        let strongest = &paths[0];
        assert!(strongest.order > 0, "reflection should be strongest");
        assert!(strongest.gain.abs() > direct.gain.abs());
    }
}
