//! Property-based tests for geometry and propagation invariants.

use at_channel::geometry::{angle_diff, pt, seg, wrap_angle, Point};
use at_channel::{
    free_space_path, AntennaArray, ChannelSim, Floorplan, Material, PathTracer, Transmitter,
};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-40.0f64..40.0, -40.0f64..40.0).prop_map(|(x, y)| pt(x, y))
}

proptest! {
    #[test]
    fn mirror_is_involution(a in point(), b in point(), p in point()) {
        prop_assume!(a.distance(b) > 0.1);
        let wall = seg(a, b);
        let back = wall.mirror(wall.mirror(p));
        prop_assert!(back.distance(p) < 1e-6);
    }

    #[test]
    fn mirror_preserves_distances_to_wall_line(a in point(), b in point(), p in point()) {
        prop_assume!(a.distance(b) > 0.1);
        let wall = seg(a, b);
        let m = wall.mirror(p);
        prop_assert!((wall.distance_to_line(p) - wall.distance_to_line(m)).abs() < 1e-6);
    }

    #[test]
    fn wrap_angle_is_canonical(theta in -100.0f64..100.0) {
        let w = wrap_angle(theta);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        // Same direction.
        prop_assert!(angle_diff(w, theta) < 1e-9);
    }

    #[test]
    fn angle_diff_symmetric_and_bounded(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let d = angle_diff(a, b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        prop_assert!((d - angle_diff(b, a)).abs() < 1e-12);
    }

    #[test]
    fn free_space_gain_matches_friis(tx in point(), rx in point()) {
        prop_assume!(tx.distance(rx) > 1.0);
        let p = free_space_path(tx, 1.5, rx, 1.5);
        let lambda = at_channel::wavelength();
        let expect = lambda / (4.0 * std::f64::consts::PI * tx.distance(rx));
        prop_assert!((p.gain.abs() - expect).abs() < 1e-12);
        prop_assert!(p.order == 0);
    }

    #[test]
    fn traced_paths_have_sane_invariants(tx in point(), rx in point()) {
        prop_assume!(tx.distance(rx) > 1.0);
        let fp = Floorplan::empty()
            .with_rect(pt(-45.0, -45.0), pt(45.0, 45.0), Material::CONCRETE);
        let paths = PathTracer::new(&fp).trace(tx, 1.5, rx, 1.5);
        prop_assert!(!paths.is_empty());
        for p in &paths {
            prop_assert!(p.length > 0.0);
            prop_assert!(p.gain.is_finite());
            prop_assert!(p.order <= 2);
            // Virtual source distance equals 2D path length component.
            prop_assert!(p.image.distance(rx) <= p.length + 1e-9);
        }
        // Sorted strongest-first.
        for w in paths.windows(2) {
            prop_assert!(w[0].gain.abs() >= w[1].gain.abs());
        }
        // Direct path exists and is first-order-free.
        prop_assert!(paths.iter().any(|p| p.order == 0));
    }

    #[test]
    fn bearing_round_trip(theta in 0.01f64..6.2, d in 2.0f64..40.0, axis in -3.0f64..3.0) {
        let array = AntennaArray::ula(pt(0.0, 0.0), axis, 8);
        let p = array.point_at(theta, d);
        prop_assert!(angle_diff(array.bearing_to(p), theta) < 1e-9);
    }

    #[test]
    fn received_power_is_positive_and_scales(txp in point(), amp in 0.1f64..10.0) {
        prop_assume!(txp.norm() > 1.0);
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 4);
        let base = sim.received_power(&Transmitter::at(txp), &array);
        let scaled = sim.received_power(&Transmitter::at(txp).with_amplitude(amp), &array);
        prop_assert!(base > 0.0);
        prop_assert!((scaled / base - amp * amp).abs() < 1e-6 * amp * amp);
    }
}
