//! The canonical system configuration: one [`SystemConfig`] every layer
//! agrees on, plus the topology-epoch transitions that let the AP set
//! change on a live service.
//!
//! Before this crate, the service's shape was scattered: `at-serve` held
//! poses/region/bins/health in its `ServiceConfig` and sized the engine,
//! the health tracker, and the session store from `poses.len()`
//! independently; the replay journal hashed the same fields with its own
//! hand-rolled FNV walk. One drifting copy meant a silent disagreement
//! between what the engine searched, what the store held, and what the
//! journal claimed to have recorded.
//!
//! [`SystemConfig`] unifies all of it — AP poses, search region, spectrum
//! resolution, health policy, session policy, default uplink codec — with
//! a **canonical byte serialization** ([`SystemConfig::canonical_bytes`],
//! bit-exact for the float fields) and a **derived fingerprint**
//! ([`SystemConfig::fingerprint`], FNV-1a over the canonical bytes). Two
//! processes holding the same fingerprint provably search the same grid,
//! age spectra by the same policy, and bound residency the same way —
//! which is exactly the guarantee capture→replay needs.
//!
//! **Topology epochs**: the AP set is versioned runtime state, not a
//! construction-time constant. A [`TopologyOp`] (add / remove / move an
//! AP) applied via [`SystemConfig::apply`] produces the next epoch's
//! config plus an [`ApMapping`] saying where every old AP's *data* lives
//! in the new epoch — `None` for a departed AP (its spectra are reaped)
//! and for a moved one (its calibration changed; stale geometry must not
//! leak into fixes). Every consumer — engine rebuild, session-store
//! remap, health-tracker remap, journal epoch record — derives from this
//! one transition, so they can never disagree about what the
//! reconfiguration meant.
//!
//! Everything here is total and typed: malformed bytes and invalid
//! configurations come back as [`ConfigError`], never a panic, because
//! these values arrive over the wire (protocol v5 `Reconfigure`) and from
//! disk (journal epoch records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use at_channel::geometry::pt;
use at_core::health::HealthPolicy;
use at_core::synthesis::{ApPose, SearchRegion};
use std::fmt;
use std::time::Duration;

/// Version tag of the canonical serialization this crate writes.
pub const CANONICAL_VERSION: u16 = 1;

/// Magic prefix of the canonical serialization.
pub const CANONICAL_MAGIC: [u8; 4] = *b"ATCF";

/// Hard ceiling on deployment size: enough for a campus, small enough
/// that a hostile `Reconfigure` stream cannot balloon per-AP state.
pub const MAX_APS: usize = 4096;

/// Residency and eviction policy of the keyed session store.
///
/// Lives here (not in `at-serve`) because it is part of the canonical
/// system configuration: the resident-spectra cap changes which sessions
/// survive, so replaying a journal bit-exactly requires pinning it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionPolicy {
    /// A session untouched (no submit, no query) for longer than this is
    /// evicted by the reaper.
    pub idle_timeout: Duration,
    /// Hard cap on spectra resident across all sessions; an insert over
    /// the cap evicts the least-recently-touched *other* session first.
    /// Must be at least the deployment's AP count (one full session).
    pub max_resident_spectra: usize,
    /// Cadence of the background reaper's idle sweep.
    pub reap_interval: Duration,
    /// Length of one staleness refresh interval: every elapsed interval
    /// ages every resident spectrum by one, feeding
    /// `HealthPolicy::max_spectrum_age`.
    pub refresh_interval: Duration,
    /// Shard count (keys hash across shards; more shards, less writer
    /// contention).
    pub shards: usize,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        Self {
            idle_timeout: Duration::from_secs(60),
            max_resident_spectra: 1 << 16,
            reap_interval: Duration::from_millis(250),
            refresh_interval: Duration::from_secs(1),
            shards: 16,
        }
    }
}

impl SessionPolicy {
    /// Typed validation of the policy.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.max_resident_spectra < 1 {
            return Err(ConfigError::Session("the cap must admit spectra"));
        }
        if self.shards < 1 {
            return Err(ConfigError::Session("the store needs at least one shard"));
        }
        if self.reap_interval.is_zero() || self.refresh_interval.is_zero() {
            return Err(ConfigError::Session("reaper cadences must be non-zero"));
        }
        if self.idle_timeout.is_zero() {
            return Err(ConfigError::Session("idle timeout must be non-zero"));
        }
        Ok(())
    }

    /// Validates the policy.
    ///
    /// # Panics
    /// Panics on a zero cap, zero shard count, or zero intervals — the
    /// legacy entry point; prefer [`SessionPolicy::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Default uplink wire encoding the service advertises to AP clients
/// (the codec itself lives in `at-serve`; the canonical config records
/// the *policy* so two deployments with different defaults fingerprint
/// differently).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CodecDefault {
    /// Uncompressed `f64` bins (every server speaks it).
    #[default]
    Raw,
    /// 16-bit log-domain quantization (protocol v3, ~10× smaller).
    Quantized,
    /// Bit-exact XOR-delta compression (protocol v3, ~1.5× smaller).
    LosslessDelta,
}

impl CodecDefault {
    fn to_byte(self) -> u8 {
        match self {
            Self::Raw => 0,
            Self::Quantized => 1,
            Self::LosslessDelta => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ConfigError> {
        match b {
            0 => Ok(Self::Raw),
            1 => Ok(Self::Quantized),
            2 => Ok(Self::LosslessDelta),
            _ => Err(ConfigError::Malformed("unknown codec default")),
        }
    }
}

/// Why a configuration (or a topology transition) was refused. Total and
/// descriptive: these cross the wire as protocol-error payloads, so an
/// admin sees *what* was wrong, and nothing here ever panics a server
/// thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The AP set is empty — a service needs at least one AP.
    NoAps,
    /// The AP set exceeds [`MAX_APS`].
    TooManyAps {
        /// Requested AP count.
        n_aps: usize,
    },
    /// Spectrum resolution outside the supported `8..=65536` range.
    BinsOutOfRange {
        /// Requested bin count.
        bins: usize,
    },
    /// An AP pose carries a non-finite coordinate or axis angle.
    NonFinitePose {
        /// Index of the offending AP.
        ap_id: u32,
    },
    /// The search region is degenerate or non-finite.
    BadRegion,
    /// The health policy is inconsistent (reason attached).
    Health(&'static str),
    /// The session policy is inconsistent (reason attached).
    Session(&'static str),
    /// The resident-spectra cap cannot hold one full session.
    CapBelowApCount {
        /// The configured cap.
        cap: usize,
        /// The AP count one session needs.
        n_aps: usize,
    },
    /// A topology op referenced an AP the current epoch does not have.
    BadApId {
        /// The referenced AP.
        ap_id: u32,
        /// APs in the current epoch.
        n_aps: usize,
    },
    /// A topology op would remove the last AP.
    LastAp,
    /// Canonical bytes (or an encoded op) did not parse.
    Malformed(&'static str),
    /// Canonical bytes carry a serialization version this build does not
    /// speak.
    UnsupportedVersion {
        /// The version found in the bytes.
        version: u16,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoAps => write!(f, "a service needs at least one AP"),
            Self::TooManyAps { n_aps } => {
                write!(f, "{n_aps} APs exceeds the {MAX_APS}-AP ceiling")
            }
            Self::BinsOutOfRange { bins } => {
                write!(f, "bins must be in 8..=65536, got {bins}")
            }
            Self::NonFinitePose { ap_id } => {
                write!(f, "AP {ap_id} has a non-finite pose")
            }
            Self::BadRegion => write!(f, "search region is degenerate or non-finite"),
            Self::Health(why) => write!(f, "health policy: {why}"),
            Self::Session(why) => write!(f, "session policy: {why}"),
            Self::CapBelowApCount { cap, n_aps } => write!(
                f,
                "resident-spectra cap {cap} cannot hold one full {n_aps}-AP session"
            ),
            Self::BadApId { ap_id, n_aps } => {
                write!(f, "AP {ap_id} out of range (epoch has {n_aps} APs)")
            }
            Self::LastAp => write!(f, "cannot remove the last AP"),
            Self::Malformed(what) => write!(f, "malformed config bytes: {what}"),
            Self::UnsupportedVersion { version } => {
                write!(f, "unsupported canonical config version {version}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The single canonical configuration of an ArrayTrack location service:
/// everything that determines what a fix *is* — geometry, resolution,
/// fusion policy, residency policy, uplink codec default.
///
/// See the module docs for why this is one struct with one byte form and
/// one fingerprint instead of per-layer copies.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Pose of every AP's antenna array, indexed by deployment AP id.
    pub poses: Vec<ApPose>,
    /// The rectangular search region and grid pitch.
    pub region: SearchRegion,
    /// Angular resolution of the spectra APs submit (pipeline default
    /// 720).
    pub bins: usize,
    /// AP health and fusion-quorum policy.
    pub health: HealthPolicy,
    /// Session residency and eviction policy.
    pub session: SessionPolicy,
    /// Default uplink wire encoding.
    pub codec: CodecDefault,
}

const POSE_BYTES: usize = 24;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_pose(out: &mut Vec<u8>, pose: &ApPose) {
    put_f64(out, pose.center.x);
    put_f64(out, pose.center.y);
    put_f64(out, pose.axis_angle);
}

/// A bounds-checked little-endian cursor; every getter is total.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], ConfigError> {
        let end = self
            .at
            .checked_add(N)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ConfigError::Malformed(what))?;
        let mut buf = [0u8; N];
        buf.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(buf)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ConfigError> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ConfigError> {
        Ok(u16::from_le_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ConfigError> {
        Ok(u32::from_le_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ConfigError> {
        Ok(u64::from_le_bytes(self.take(what)?))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ConfigError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take(what)?)))
    }

    fn pose(&mut self) -> Result<ApPose, ConfigError> {
        Ok(ApPose {
            center: pt(self.f64("pose x")?, self.f64("pose y")?),
            axis_angle: self.f64("pose axis")?,
        })
    }

    fn consumed(&self) -> usize {
        self.at
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// FNV-1a over `bytes` — the one hash every fingerprint in the system
/// derives from.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SystemConfig {
    /// Number of APs in this epoch's topology.
    pub fn n_aps(&self) -> usize {
        self.poses.len()
    }

    /// Typed validation: every constraint a service refuses to start (or
    /// reconfigure) under, as a [`ConfigError`] instead of a panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.poses.is_empty() {
            return Err(ConfigError::NoAps);
        }
        if self.poses.len() > MAX_APS {
            return Err(ConfigError::TooManyAps {
                n_aps: self.poses.len(),
            });
        }
        for (i, pose) in self.poses.iter().enumerate() {
            check_pose(pose, i as u32)?;
        }
        if !self.region.min.x.is_finite()
            || !self.region.min.y.is_finite()
            || !self.region.max.x.is_finite()
            || !self.region.max.y.is_finite()
            || !self.region.resolution.is_finite()
            || self.region.max.x <= self.region.min.x
            || self.region.max.y <= self.region.min.y
            || self.region.resolution <= 0.0
        {
            return Err(ConfigError::BadRegion);
        }
        if !(8..=(1 << 16)).contains(&self.bins) {
            return Err(ConfigError::BinsOutOfRange { bins: self.bins });
        }
        if self.health.degraded_after > self.health.down_after {
            return Err(ConfigError::Health(
                "an AP must degrade before it goes down",
            ));
        }
        if !(0.0..=1.0).contains(&self.health.degraded_weight) {
            return Err(ConfigError::Health("confidence weight must be in [0, 1]"));
        }
        if self.health.min_quorum < 1 {
            return Err(ConfigError::Health("a fix needs at least one AP"));
        }
        self.session.check()?;
        if self.session.max_resident_spectra < self.poses.len() {
            return Err(ConfigError::CapBelowApCount {
                cap: self.session.max_resident_spectra,
                n_aps: self.poses.len(),
            });
        }
        Ok(())
    }

    /// The canonical byte serialization: versioned, little-endian, floats
    /// as IEEE-754 bits (so encode→decode→encode is byte-identical).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.poses.len() * POSE_BYTES);
        out.extend_from_slice(&CANONICAL_MAGIC);
        out.extend_from_slice(&CANONICAL_VERSION.to_le_bytes());
        out.push(self.codec.to_byte());
        out.push(0); // reserved
        put_u32(&mut out, self.poses.len() as u32);
        for pose in &self.poses {
            put_pose(&mut out, pose);
        }
        put_f64(&mut out, self.region.min.x);
        put_f64(&mut out, self.region.min.y);
        put_f64(&mut out, self.region.max.x);
        put_f64(&mut out, self.region.max.y);
        put_f64(&mut out, self.region.resolution);
        put_u32(&mut out, self.bins as u32);
        put_u32(&mut out, self.health.degraded_after);
        put_u32(&mut out, self.health.down_after);
        put_u64(&mut out, self.health.max_spectrum_age);
        put_u32(&mut out, self.health.min_quorum as u32);
        put_f64(&mut out, self.health.degraded_weight);
        put_u64(&mut out, duration_us(self.session.idle_timeout));
        put_u64(&mut out, self.session.max_resident_spectra as u64);
        put_u64(&mut out, duration_us(self.session.reap_interval));
        put_u64(&mut out, duration_us(self.session.refresh_interval));
        put_u32(&mut out, self.session.shards as u32);
        out
    }

    /// Parses (and validates) a canonical serialization. Total: malformed
    /// or trailing bytes come back as [`ConfigError`], never a panic.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, ConfigError> {
        let mut c = Cursor::new(bytes);
        if c.take::<4>("magic")? != CANONICAL_MAGIC {
            return Err(ConfigError::Malformed("bad magic"));
        }
        let version = c.u16("version")?;
        if version != CANONICAL_VERSION {
            return Err(ConfigError::UnsupportedVersion { version });
        }
        let codec = CodecDefault::from_byte(c.u8("codec")?)?;
        let _reserved = c.u8("reserved")?;
        let n_aps = c.u32("ap count")? as usize;
        if n_aps > MAX_APS {
            return Err(ConfigError::TooManyAps { n_aps });
        }
        let mut poses = Vec::with_capacity(n_aps);
        for _ in 0..n_aps {
            poses.push(c.pose()?);
        }
        let region = SearchRegion {
            min: pt(c.f64("region min x")?, c.f64("region min y")?),
            max: pt(c.f64("region max x")?, c.f64("region max y")?),
            resolution: c.f64("region resolution")?,
        };
        let bins = c.u32("bins")? as usize;
        let health = HealthPolicy {
            degraded_after: c.u32("degraded_after")?,
            down_after: c.u32("down_after")?,
            max_spectrum_age: c.u64("max_spectrum_age")?,
            min_quorum: c.u32("min_quorum")? as usize,
            degraded_weight: c.f64("degraded_weight")?,
        };
        let session = SessionPolicy {
            idle_timeout: Duration::from_micros(c.u64("idle_timeout")?),
            max_resident_spectra: usize::try_from(c.u64("max_resident_spectra")?)
                .map_err(|_| ConfigError::Malformed("cap overflows usize"))?,
            reap_interval: Duration::from_micros(c.u64("reap_interval")?),
            refresh_interval: Duration::from_micros(c.u64("refresh_interval")?),
            shards: c.u32("shards")? as usize,
        };
        if !c.done() {
            return Err(ConfigError::Malformed("trailing bytes"));
        }
        let config = Self {
            poses,
            region,
            bins,
            health,
            session,
            codec,
        };
        config.validate()?;
        Ok(config)
    }

    /// The derived fingerprint: FNV-1a over the canonical bytes. Equal
    /// fingerprints ⇒ byte-identical canonical configs ⇒ the same grid,
    /// the same policies, the same epoch semantics.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.canonical_bytes())
    }

    /// Applies one topology op, producing the next epoch's config and the
    /// [`ApMapping`] every stateful layer remaps through. The op is
    /// validated against *this* config and the result re-validated, so an
    /// invalid transition is a typed refusal and the current epoch stays
    /// untouched.
    pub fn apply(&self, op: &TopologyOp) -> Result<(SystemConfig, ApMapping), ConfigError> {
        let n = self.poses.len();
        let mut next = self.clone();
        let mapping = match *op {
            TopologyOp::Add { pose } => {
                check_pose(&pose, n as u32)?;
                next.poses.push(pose);
                ApMapping {
                    old_to_new: (0..n).map(|i| Some(i as u32)).collect(),
                    n_new: n + 1,
                }
            }
            TopologyOp::Remove { ap_id } => {
                let idx = check_ap_id(ap_id, n)?;
                if n == 1 {
                    return Err(ConfigError::LastAp);
                }
                next.poses.remove(idx);
                ApMapping {
                    old_to_new: (0..n)
                        .map(|i| match i.cmp(&idx) {
                            std::cmp::Ordering::Less => Some(i as u32),
                            std::cmp::Ordering::Equal => None,
                            std::cmp::Ordering::Greater => Some((i - 1) as u32),
                        })
                        .collect(),
                    n_new: n - 1,
                }
            }
            TopologyOp::Move { ap_id, pose } => {
                let idx = check_ap_id(ap_id, n)?;
                check_pose(&pose, ap_id)?;
                next.poses[idx] = pose;
                // The moved AP keeps its id but its calibration changed:
                // spectra captured under the old geometry must not fuse
                // into new-epoch fixes, so its data maps nowhere.
                ApMapping {
                    old_to_new: (0..n)
                        .map(|i| if i == idx { None } else { Some(i as u32) })
                        .collect(),
                    n_new: n,
                }
            }
        };
        next.validate()?;
        Ok((next, mapping))
    }
}

fn check_pose(pose: &ApPose, ap_id: u32) -> Result<(), ConfigError> {
    if pose.center.x.is_finite() && pose.center.y.is_finite() && pose.axis_angle.is_finite() {
        Ok(())
    } else {
        Err(ConfigError::NonFinitePose { ap_id })
    }
}

fn check_ap_id(ap_id: u32, n_aps: usize) -> Result<usize, ConfigError> {
    let idx = ap_id as usize;
    if idx < n_aps {
        Ok(idx)
    } else {
        Err(ConfigError::BadApId { ap_id, n_aps })
    }
}

/// One topology transition: the unit an admin requests over the wire
/// (protocol v5 `Reconfigure`) and the journal records as an epoch event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyOp {
    /// A new AP joins at `pose`; it gets the next free id and starts
    /// cold (no spectra, healthy).
    Add {
        /// Pose of the joining AP's array.
        pose: ApPose,
    },
    /// AP `ap_id` leaves; its spectra are reaped and higher ids shift
    /// down by one.
    Remove {
        /// Departing AP.
        ap_id: u32,
    },
    /// AP `ap_id` is moved/recalibrated to `pose`; it keeps its id but
    /// starts cold (old-geometry spectra are reaped).
    Move {
        /// The AP being moved.
        ap_id: u32,
        /// Its new pose.
        pose: ApPose,
    },
}

impl fmt::Display for TopologyOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Add { pose } => write!(
                f,
                "add AP at ({:.2}, {:.2})@{:.3}rad",
                pose.center.x, pose.center.y, pose.axis_angle
            ),
            Self::Remove { ap_id } => write!(f, "remove AP {ap_id}"),
            Self::Move { ap_id, pose } => write!(
                f,
                "move AP {ap_id} to ({:.2}, {:.2})@{:.3}rad",
                pose.center.x, pose.center.y, pose.axis_angle
            ),
        }
    }
}

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_MOVE: u8 = 3;

impl TopologyOp {
    /// Appends the op's canonical wire encoding (shared by protocol v5
    /// frames and journal epoch records).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Self::Add { pose } => {
                out.push(OP_ADD);
                put_pose(out, &pose);
            }
            Self::Remove { ap_id } => {
                out.push(OP_REMOVE);
                put_u32(out, ap_id);
            }
            Self::Move { ap_id, pose } => {
                out.push(OP_MOVE);
                put_u32(out, ap_id);
                put_pose(out, &pose);
            }
        }
    }

    /// Decodes one op from the front of `bytes`, returning it and the
    /// bytes consumed. Total: anything unparseable is a typed error.
    pub fn decode(bytes: &[u8]) -> Result<(TopologyOp, usize), ConfigError> {
        let mut c = Cursor::new(bytes);
        let op = match c.u8("op tag")? {
            OP_ADD => TopologyOp::Add { pose: c.pose()? },
            OP_REMOVE => TopologyOp::Remove {
                ap_id: c.u32("ap id")?,
            },
            OP_MOVE => TopologyOp::Move {
                ap_id: c.u32("ap id")?,
                pose: c.pose()?,
            },
            _ => return Err(ConfigError::Malformed("unknown op tag")),
        };
        Ok((op, c.consumed()))
    }
}

/// Where every old AP's data lives after a topology transition.
///
/// `old_to_new[i] = Some(j)` means old AP `i`'s spectra and health state
/// carry over as new AP `j`; `None` means they are dropped (the AP left,
/// or moved and its old-geometry spectra are invalid). Joining APs have
/// no preimage — they start cold and surface through the existing
/// `QuorumNotMet` path until they submit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApMapping {
    /// Per old AP id: the new id its data carries over to, or `None`.
    pub old_to_new: Vec<Option<u32>>,
    /// AP count of the new epoch.
    pub n_new: usize,
}

impl ApMapping {
    /// The identity mapping over `n` APs (no-op epoch).
    pub fn identity(n: usize) -> Self {
        Self {
            old_to_new: (0..n).map(|i| Some(i as u32)).collect(),
            n_new: n,
        }
    }

    /// Whether the mapping carries every AP over unchanged.
    pub fn is_identity(&self) -> bool {
        self.n_new == self.old_to_new.len()
            && self
                .old_to_new
                .iter()
                .enumerate()
                .all(|(i, m)| *m == Some(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office() -> SystemConfig {
        SystemConfig {
            poses: (0..6)
                .map(|i| ApPose {
                    center: pt(f64::from(i) * 5.0, 2.0),
                    axis_angle: f64::from(i) * 0.3,
                })
                .collect(),
            region: SearchRegion::new(pt(0.0, 0.0), pt(30.0, 20.0)),
            bins: 720,
            health: HealthPolicy::default(),
            session: SessionPolicy::default(),
            codec: CodecDefault::LosslessDelta,
        }
    }

    #[test]
    fn canonical_bytes_roundtrip_bit_exactly() {
        let cfg = office();
        let bytes = cfg.canonical_bytes();
        let back = SystemConfig::from_canonical_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.canonical_bytes(), bytes);
        assert_eq!(back.fingerprint(), cfg.fingerprint());
    }

    #[test]
    fn fingerprint_changes_with_every_field() {
        let base = office().fingerprint();
        let mut moved = office();
        moved.poses[3].center.x += 0.01;
        assert_ne!(moved.fingerprint(), base);
        let mut rebinned = office();
        rebinned.bins = 360;
        assert_ne!(rebinned.fingerprint(), base);
        let mut requorumed = office();
        requorumed.health.min_quorum = 2;
        assert_ne!(requorumed.fingerprint(), base);
        let mut recapped = office();
        recapped.session.max_resident_spectra = 77;
        assert_ne!(recapped.fingerprint(), base);
        let mut recoded = office();
        recoded.codec = CodecDefault::Raw;
        assert_ne!(recoded.fingerprint(), base);
    }

    #[test]
    fn validate_refuses_bad_configs_with_typed_errors() {
        let mut empty = office();
        empty.poses.clear();
        assert_eq!(empty.validate(), Err(ConfigError::NoAps));

        let mut bins = office();
        bins.bins = 4;
        assert_eq!(
            bins.validate(),
            Err(ConfigError::BinsOutOfRange { bins: 4 })
        );

        let mut nan = office();
        nan.poses[2].axis_angle = f64::NAN;
        assert_eq!(nan.validate(), Err(ConfigError::NonFinitePose { ap_id: 2 }));

        let mut cap = office();
        cap.session.max_resident_spectra = 3;
        assert_eq!(
            cap.validate(),
            Err(ConfigError::CapBelowApCount { cap: 3, n_aps: 6 })
        );

        let mut health = office();
        health.health.degraded_after = 9;
        health.health.down_after = 2;
        assert!(matches!(health.validate(), Err(ConfigError::Health(_))));
    }

    #[test]
    fn decode_is_total_on_garbage() {
        assert!(SystemConfig::from_canonical_bytes(&[]).is_err());
        assert!(SystemConfig::from_canonical_bytes(b"ATCF").is_err());
        let mut bytes = office().canonical_bytes();
        bytes.push(0);
        assert_eq!(
            SystemConfig::from_canonical_bytes(&bytes),
            Err(ConfigError::Malformed("trailing bytes"))
        );
        bytes.pop();
        bytes[4] = 99; // version
        assert!(matches!(
            SystemConfig::from_canonical_bytes(&bytes),
            Err(ConfigError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn remove_shifts_ids_down_and_drops_the_departed() {
        let cfg = office();
        let (next, map) = cfg.apply(&TopologyOp::Remove { ap_id: 2 }).expect("apply");
        assert_eq!(next.n_aps(), 5);
        assert_eq!(next.poses[2], cfg.poses[3]);
        assert_eq!(
            map.old_to_new,
            vec![Some(0), Some(1), None, Some(2), Some(3), Some(4)]
        );
        assert_eq!(map.n_new, 5);
        assert_ne!(next.fingerprint(), cfg.fingerprint());
    }

    #[test]
    fn add_appends_cold_and_keeps_existing_ids() {
        let cfg = office();
        let pose = ApPose {
            center: pt(1.0, 19.0),
            axis_angle: 0.5,
        };
        let (next, map) = cfg.apply(&TopologyOp::Add { pose }).expect("apply");
        assert_eq!(next.n_aps(), 7);
        assert_eq!(next.poses[6], pose);
        assert!(map
            .old_to_new
            .iter()
            .enumerate()
            .all(|(i, m)| *m == Some(i as u32)));
        assert_eq!(map.n_new, 7);
    }

    #[test]
    fn move_keeps_the_id_but_drops_its_data() {
        let cfg = office();
        let pose = ApPose {
            center: pt(9.0, 9.0),
            axis_angle: 1.0,
        };
        let (next, map) = cfg
            .apply(&TopologyOp::Move { ap_id: 4, pose })
            .expect("apply");
        assert_eq!(next.n_aps(), 6);
        assert_eq!(next.poses[4], pose);
        assert_eq!(map.old_to_new[4], None);
        assert_eq!(map.old_to_new[3], Some(3));
        assert!(!map.is_identity());
    }

    #[test]
    fn apply_refuses_invalid_ops_and_leaves_config_untouched() {
        let cfg = office();
        assert!(matches!(
            cfg.apply(&TopologyOp::Remove { ap_id: 6 }),
            Err(ConfigError::BadApId { ap_id: 6, n_aps: 6 })
        ));
        let single = SystemConfig {
            poses: vec![cfg.poses[0]],
            ..office()
        };
        assert!(matches!(
            single.apply(&TopologyOp::Remove { ap_id: 0 }),
            Err(ConfigError::LastAp)
        ));
        // A cap that can't fit the grown session count refuses the add.
        let mut tight = office();
        tight.session.max_resident_spectra = 6;
        assert!(matches!(
            tight.apply(&TopologyOp::Add { pose: cfg.poses[0] }),
            Err(ConfigError::CapBelowApCount { .. })
        ));
    }

    #[test]
    fn op_encoding_roundtrips() {
        let ops = [
            TopologyOp::Add {
                pose: ApPose {
                    center: pt(1.5, -2.5),
                    axis_angle: 0.25,
                },
            },
            TopologyOp::Remove { ap_id: 3 },
            TopologyOp::Move {
                ap_id: 1,
                pose: ApPose {
                    center: pt(0.0, 7.0),
                    axis_angle: -1.0,
                },
            },
        ];
        for op in &ops {
            let mut bytes = Vec::new();
            op.encode(&mut bytes);
            let (back, used) = TopologyOp::decode(&bytes).expect("decode");
            assert_eq!(back, *op);
            assert_eq!(used, bytes.len());
        }
        assert!(TopologyOp::decode(&[]).is_err());
        assert!(TopologyOp::decode(&[9]).is_err());
        assert!(TopologyOp::decode(&[OP_MOVE, 1]).is_err());
    }

    #[test]
    fn mapping_identity_helpers() {
        let id = ApMapping::identity(4);
        assert!(id.is_identity());
        let (_, map) = office().apply(&TopologyOp::Remove { ap_id: 5 }).unwrap();
        assert!(!map.is_identity());
    }
}
