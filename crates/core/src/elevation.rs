//! Elevation estimation with a vertical array (paper §4.3.1 future work).
//!
//! "In future work, we are planning to extend the ArrayTrack system to
//! three dimensions by using a vertically-oriented antenna array in
//! conjunction with the existing horizontally-oriented array. This will
//! allow the system to estimate elevation directly."
//!
//! A vertical λ/2 ULA is mathematically a horizontal ULA whose axis points
//! at the zenith: the inter-element phase is `π·cos(θ_z)` with `θ_z` the
//! angle from vertical, and the elevation above the horizon is
//! `φ = π/2 − θ_z` — so `sin φ = cos θ_z` and we can reuse the standard
//! MUSIC machinery wholesale, then convert.

use crate::music::{music_analysis, MusicConfig};
use at_channel::geometry::Point;
use at_dsp::SnapshotBlock;
use std::f64::consts::FRAC_PI_2;

/// An elevation estimate from a vertical array.
#[derive(Clone, Copy, Debug)]
pub struct ElevationEstimate {
    /// Elevation above the array's horizontal plane, radians
    /// (positive = source above the array center).
    pub elevation: f64,
    /// Peak spectrum power (relative confidence).
    pub power: f64,
}

/// Estimates the dominant arrival elevation from a vertical-array capture.
///
/// `block` rows must be the vertical array's elements bottom-to-top (the
/// order `at_channel::AntennaArray::vertical` positions them).
/// MUSIC's vertical spectrum is symmetric fore/aft of the mast, which
/// doesn't matter for elevation: both image bearings share the same
/// `cos θ_z`, hence the same elevation.
pub fn estimate_elevation(block: &SnapshotBlock, cfg: &MusicConfig) -> Option<ElevationEstimate> {
    let analysis = music_analysis(block, cfg);
    let peak = analysis.spectrum.find_peaks(0.5).into_iter().next()?;
    // θ_z is measured from the array axis, which points *up* through the
    // element order: element m sits at height + (m − (M−1)/2)·s, matching
    // a ULA whose axis unit vector is +z. Fold the mirrored spectrum into
    // [0, π] first.
    let theta_z = if peak.theta > std::f64::consts::PI {
        std::f64::consts::TAU - peak.theta
    } else {
        peak.theta
    };
    Some(ElevationEstimate {
        elevation: FRAC_PI_2 - theta_z,
        power: peak.power,
    })
}

/// Converts an elevation measured at a vertical array into a client height
/// estimate, given the client's plan-view position (from the horizontal
/// arrays' 2D fix) — the paper's proposed 3D composition.
pub fn height_from_elevation(
    array_center: Point,
    array_height: f64,
    client_xy: Point,
    elevation: f64,
) -> f64 {
    let d2d = array_center.distance(client_xy);
    array_height + d2d * elevation.tan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::pt;
    use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
    use at_linalg::Complex64;

    /// Captures snapshots at a vertical array from a client at the given
    /// plan distance and height.
    fn capture_vertical(dist: f64, client_h: f64, array_h: f64) -> SnapshotBlock {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::vertical(pt(0.0, 0.0), 8).with_height(array_h);
        let tx = Transmitter::at(pt(dist, 0.0)).with_height(client_h);
        let streams = sim.receive(
            &tx,
            &array,
            |t| Complex64::cis(std::f64::consts::TAU * 1e6 * t),
            0.0,
            10.0 / at_dsp::SAMPLE_RATE_HZ,
            at_dsp::SAMPLE_RATE_HZ,
        );
        SnapshotBlock::new(streams)
    }

    #[test]
    fn level_client_has_zero_elevation() {
        let block = capture_vertical(10.0, 2.0, 2.0);
        let est = estimate_elevation(&block, &MusicConfig::default()).unwrap();
        assert!(
            est.elevation.abs() < 1.5f64.to_radians(),
            "elevation {:.2}°",
            est.elevation.to_degrees()
        );
    }

    #[test]
    fn elevation_sign_tracks_client_height() {
        // Client below the array → negative elevation; above → positive.
        let below =
            estimate_elevation(&capture_vertical(8.0, 1.0, 2.5), &MusicConfig::default()).unwrap();
        let above =
            estimate_elevation(&capture_vertical(8.0, 4.0, 2.5), &MusicConfig::default()).unwrap();
        assert!(below.elevation < -2f64.to_radians(), "{}", below.elevation);
        assert!(above.elevation > 2f64.to_radians(), "{}", above.elevation);
    }

    #[test]
    fn elevation_matches_geometry() {
        for (d, hc, ha) in [(6.0, 1.0, 3.0), (10.0, 1.5, 2.5), (15.0, 0.5, 3.0)] {
            let block = capture_vertical(d, hc, ha);
            let est = estimate_elevation(&block, &MusicConfig::default()).unwrap();
            let truth = ((hc - ha) / d).atan();
            assert!(
                (est.elevation - truth).abs() < 1.5f64.to_radians(),
                "d={d}: est {:.2}° truth {:.2}°",
                est.elevation.to_degrees(),
                truth.to_degrees()
            );
        }
    }

    #[test]
    fn height_recovered_from_elevation() {
        let d = 9.0;
        let (hc, ha) = (0.8, 2.8);
        let block = capture_vertical(d, hc, ha);
        let est = estimate_elevation(&block, &MusicConfig::default()).unwrap();
        let h = height_from_elevation(pt(0.0, 0.0), ha, pt(d, 0.0), est.elevation);
        assert!(
            (h - hc).abs() < 0.35,
            "height estimate {h:.2} vs truth {hc}"
        );
    }

    #[test]
    fn height_conversion_geometry() {
        // 45° up at 5 m horizontal → 5 m above the array.
        let h = height_from_elevation(pt(0.0, 0.0), 2.0, pt(5.0, 0.0), FRAC_PI_2 / 2.0);
        assert!((h - 7.0).abs() < 1e-9);
        // Level → array height.
        let h = height_from_elevation(pt(0.0, 0.0), 2.0, pt(5.0, 0.0), 0.0);
        assert!((h - 2.0).abs() < 1e-12);
    }
}
