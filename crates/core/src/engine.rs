//! Query-scale spectra synthesis: a precomputed localization engine
//! (paper §2.5, engineered for many queries per deployment).
//!
//! [`crate::synthesis::localize`] evaluates `L(x) = Π Pᵢ(θᵢ(x))` at every
//! cell of the ~10 cm search grid for every query — an `atan2` plus a
//! spectrum interpolation per (cell, AP), ~7·10⁵ of them for the paper's
//! office. But `θᵢ(x)` depends only on the deployment geometry (AP poses,
//! region, pitch), never on the query. [`LocalizationEngine`] hoists all of
//! that out of the query path:
//!
//! - **Bearing grids** — for each AP, the spectrum-bin index of every grid
//!   cell's bearing, quantized once to a `u16` (error ≤ half a bin). A
//!   query turns the inner loop into table lookups.
//! - **Log-domain accumulation** — each query builds one small per-AP LUT
//!   `ln(max(P[bin], floor))`, so the likelihood product becomes a sum and
//!   the floor is applied in log space, once per bin instead of per cell.
//! - **Coarse-to-fine search** — the grid is tiled into ~50 cm blocks; for
//!   each block the engine precomputes the (circular) interval of spectrum
//!   bins its cells subtend per AP, dilated by one bin so the interval max
//!   also bounds the *interpolated* likelihood anywhere in the block.
//!   Queries score blocks by that upper bound and refine best-first,
//!   stopping as soon as no unrefined block can beat the current top cells
//!   — a branch-and-bound that inspects a few percent of the grid yet
//!   finds the same top cells as the exhaustive scan.
//!
//! The selected top cells are re-evaluated with the *exact* interpolated
//! likelihood and refined with the same hill climb as the legacy path, so
//! engine and legacy results agree to sub-millimeter (the
//! `engine_parity` proptest pins this down). The legacy `heatmap` /
//! `localize` functions remain as the straight-line reference
//! implementation.
//!
//! Memory: one `u16` per cell per AP — ≈ 1.4 MB for six APs over the
//! 41 m × 23 m office at 10 cm — plus four bytes per 50 cm block per AP.
//! The caches depend only on (poses, region, bins): rebuild on deployment
//! change, never per query.

use crate::parallel::{available_threads, parallel_map};
use crate::spectrum::AoaSpectrum;
use crate::synthesis::{
    hill_climb, likelihood, ApObservation, ApPose, Heatmap, LocationEstimate, SearchRegion,
    LIKELIHOOD_FLOOR,
};
use at_channel::geometry::Point;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::TAU;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Coarse block edge length the engine targets, meters.
const COARSE_BLOCK_M: f64 = 0.5;

/// Fine cells carried from the coarse-to-fine search into exact
/// re-evaluation (a superset of the 3 hill-climb starts, so the exact
/// top-3 ordering is robust to the ≤ half-bin quantization of the grid).
const CANDIDATE_CELLS: usize = 8;

/// Hill-climb starts (paper §2.5: "the three highest-likelihood cells").
const HILL_CLIMB_STARTS: usize = 3;

/// Entries the process-wide per-AP grid cache retains before it is
/// cleared wholesale (a topology churning through hundreds of poses must
/// not hold every historical grid forever).
const GRID_CACHE_CAP: usize = 512;

/// One AP's precomputed bearing caches: the fine per-cell bin grid and
/// the dilated coarse block intervals. Depends only on
/// `(pose, region, bins)` — never on the epoch or the rest of the
/// topology — which is what makes it shareable across epochs.
#[derive(Debug)]
struct ApGrid {
    fine: Vec<u16>,
    blocks: Vec<(u16, u16)>,
}

/// Cache key: the exact bit patterns of everything an AP's grid depends
/// on. Bit-level equality (not float equality) so a cache hit is
/// guaranteed byte-identical to a recompute.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct GridKey {
    pose: [u64; 3],
    region: [u64; 5],
    bins: usize,
}

impl GridKey {
    fn new(pose: &ApPose, region: &SearchRegion, bins: usize) -> Self {
        Self {
            pose: [
                pose.center.x.to_bits(),
                pose.center.y.to_bits(),
                pose.axis_angle.to_bits(),
            ],
            region: [
                region.min.x.to_bits(),
                region.min.y.to_bits(),
                region.max.x.to_bits(),
                region.max.y.to_bits(),
                region.resolution.to_bits(),
            ],
            bins,
        }
    }
}

static GRID_CACHE: OnceLock<Mutex<HashMap<GridKey, Arc<ApGrid>>>> = OnceLock::new();
static GRID_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static GRID_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-wide per-AP grid cache since process
/// start. An epoch rebuild that keeps `k` of `n` APs unchanged shows up
/// as `k` hits and `n − k` misses (the topology tests pin this down).
pub fn grid_cache_stats() -> (u64, u64) {
    (
        GRID_CACHE_HITS.load(Ordering::Relaxed),
        GRID_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Looks up (or computes and caches) one AP's grid. The computation is a
/// pure function of the key, so concurrent misses for the same key are
/// benign — last insert wins with an identical value.
fn ap_grid(pose: &ApPose, region: SearchRegion, bins: usize) -> Arc<ApGrid> {
    let key = GridKey::new(pose, &region, bins);
    let cache = GRID_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("grid cache lock").get(&key) {
        GRID_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    GRID_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let grid = Arc::new(build_ap_grid(pose, region, bins));
    let mut map = cache.lock().expect("grid cache lock");
    if map.len() >= GRID_CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&grid));
    grid
}

/// Computes one AP's fine bearing grid (rows in parallel) and its coarse
/// block intervals.
fn build_ap_grid(pose: &ApPose, region: SearchRegion, bins: usize) -> ApGrid {
    let (nx, ny) = region.grid_size();
    let stride = coarse_stride(&region);
    let bx = nx.div_ceil(stride);
    let by = ny.div_ceil(stride);
    let rows: Vec<usize> = (0..ny).collect();
    let fine: Vec<u16> = parallel_map(&rows, available_threads(), |_, &iy| {
        (0..nx)
            .map(|ix| {
                let theta = pose.bearing_to(region.cell_center(ix, iy));
                (((theta / TAU) * bins as f64).round() as usize % bins) as u16
            })
            .collect::<Vec<u16>>()
    })
    .concat();
    let mut blocks: Vec<(u16, u16)> = Vec::with_capacity(bx * by);
    for byi in 0..by {
        for bxi in 0..bx {
            let mut cell_bins = Vec::with_capacity(stride * stride);
            for iy in (byi * stride)..((byi + 1) * stride).min(ny) {
                for ix in (bxi * stride)..((bxi + 1) * stride).min(nx) {
                    cell_bins.push(fine[iy * nx + ix]);
                }
            }
            blocks.push(circular_cover(&mut cell_bins, bins));
        }
    }
    ApGrid { fine, blocks }
}

fn coarse_stride(region: &SearchRegion) -> usize {
    ((COARSE_BLOCK_M / region.resolution).round() as usize).clamp(1, 256)
}

/// Gauge name: heap bytes retained by localize scratch arenas (set when an
/// arena grows; steady-state queries never touch it).
pub const SCRATCH_BYTES_GAUGE: &str = "at_localize_scratch_bytes";

/// Counter name: scratch arena growth events. Zero growth per interval
/// means the warm path is allocation-free.
pub const SCRATCH_GROW_COUNTER: &str = "at_localize_scratch_grow_total";

/// A reusable per-worker workspace for engine queries.
///
/// Everything a query needs to allocate — normalized spectrum copies for
/// exact re-evaluation, flat log-likelihood LUTs, block bounds, the
/// best-first ordering, the candidate heap, and the planar row
/// accumulator — lives here and is recycled between queries. After the
/// first query of a given shape (observation count × spectrum bins), a
/// repeat query performs **zero** heap allocations (the
/// `zero_alloc` integration test pins this down with a counting
/// allocator).
///
/// Ownership model: one scratch per *thread of execution*. Engine entry
/// points that don't take a scratch borrow a thread-local default, so
/// every caller gets recycling for free; the serve tier's exec workers and
/// `fuse_batch` pass explicit arenas. A scratch is bound to no particular
/// engine — it adapts to whatever engine/query shape it is used with,
/// growing monotonically to the largest shape seen.
#[derive(Clone, Debug, Default)]
pub struct LocalizeScratch {
    /// Normalized owned observations for exact re-evaluation / hill climb
    /// (slot `i` is recycled in place; only the first `n` are live).
    exact: Vec<ApObservation>,
    /// Flat per-observation log-likelihood LUTs, `n × bins` row-major.
    luts: Vec<f64>,
    /// AP index of each LUT row.
    lut_aps: Vec<usize>,
    /// Per coarse block: accumulated likelihood upper bound.
    bounds: Vec<f64>,
    /// Blocks ordered by bound, best first.
    order: Vec<(f64, usize)>,
    /// Current top cells, ascending by quantized score.
    top: Vec<(f64, usize)>,
    /// Exact re-evaluated candidates, descending by likelihood.
    cells: Vec<(Point, f64)>,
    /// One block row of AP-major planar accumulation.
    row_acc: Vec<f64>,
    /// Footprint last published to the scratch gauge.
    reported: usize,
}

impl LocalizeScratch {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently retained by the workspace's buffers.
    pub fn footprint_bytes(&self) -> usize {
        let spectra: usize = self
            .exact
            .iter()
            .map(|o| o.spectrum.bins() * std::mem::size_of::<f64>())
            .sum();
        spectra
            + self.exact.capacity() * std::mem::size_of::<ApObservation>()
            + self.luts.capacity() * std::mem::size_of::<f64>()
            + self.lut_aps.capacity() * std::mem::size_of::<usize>()
            + self.bounds.capacity() * std::mem::size_of::<f64>()
            + self.order.capacity() * std::mem::size_of::<(f64, usize)>()
            + self.top.capacity() * std::mem::size_of::<(f64, usize)>()
            + self.cells.capacity() * std::mem::size_of::<(Point, f64)>()
            + self.row_acc.capacity() * std::mem::size_of::<f64>()
    }

    /// The most recent query's exact candidates, descending by likelihood.
    fn candidates(&self) -> &[(Point, f64)] {
        &self.cells
    }

    /// Publishes the footprint gauge when (and only when) the arena grew —
    /// the steady state compares two integers and does nothing else.
    fn note_growth(&mut self) {
        let bytes = self.footprint_bytes();
        if bytes != self.reported {
            self.reported = bytes;
            at_obs::metrics::global()
                .gauge(SCRATCH_BYTES_GAUGE, &[])
                .set(bytes as f64);
            at_obs::count!(SCRATCH_GROW_COUNTER);
        }
    }
}

thread_local! {
    /// The default workspace engine entry points use when the caller
    /// doesn't pass one: per-thread, so the public API stays
    /// allocation-free after warm-up without threading scratch through
    /// every call site.
    static DEFAULT_SCRATCH: RefCell<LocalizeScratch> = RefCell::new(LocalizeScratch::new());
}

/// Runs `f` with the calling thread's default scratch. Falls back to a
/// fresh workspace if the thread-local is already borrowed (re-entrant
/// use through a callback).
pub(crate) fn with_default_scratch<R>(f: impl FnOnce(&mut LocalizeScratch) -> R) -> R {
    DEFAULT_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut LocalizeScratch::new()),
    })
}

/// A reusable, deployment-bound localization engine.
///
/// Build once per (AP poses, search region, spectrum resolution) with
/// [`LocalizationEngine::new`], then call [`LocalizationEngine::localize`]
/// for every query — any client, any subset of the deployment's APs.
#[derive(Clone, Debug)]
pub struct LocalizationEngine {
    region: SearchRegion,
    poses: Vec<ApPose>,
    bins: usize,
    /// Topology epoch this engine was built for (0 for a fixed
    /// deployment). Purely a tag — the caches depend only on poses,
    /// region, and bins — but serving layers use it to assert a batch
    /// executes against the epoch its observations were snapshotted in.
    epoch: u64,
    nx: usize,
    ny: usize,
    /// Coarse tiling: block edge in cells, and block-grid dimensions.
    stride: usize,
    bx: usize,
    by: usize,
    /// Spectrum-bin index of each cell's bearing: one contiguous AP-major
    /// slab, `fine[ap · nx·ny + iy · nx + ix]`. Row segments are
    /// contiguous, so the fusion inner loop streams them planar, AP by AP.
    fine: Vec<u16>,
    /// Dilated circular bin interval `(start, len)` covering every cell
    /// bearing of a block, AP-major: `blocks[ap · bx·by + block]`.
    blocks: Vec<(u16, u16)>,
}

impl LocalizationEngine {
    /// Precomputes the bearing caches for a deployment (epoch 0).
    ///
    /// `bins` is the angular resolution of the spectra that queries will
    /// carry (the pipeline default is 720).
    ///
    /// # Panics
    /// Panics if `poses` is empty or `bins` doesn't fit the `u16` grid.
    pub fn new(poses: &[ApPose], region: SearchRegion, bins: usize) -> Self {
        Self::for_epoch(poses, region, bins, 0)
    }

    /// [`LocalizationEngine::new`] tagged with a topology epoch.
    ///
    /// Per-AP grids are fetched from the process-wide cache keyed by the
    /// exact `(pose, region, bins)` bits, so rebuilding for a new epoch
    /// pays only for the APs whose pose actually changed — an add/remove/
    /// move of one AP out of `n` recomputes one grid, not `n`
    /// ([`grid_cache_stats`] makes the reuse observable). Cache hits are
    /// byte-identical to recomputes, so engines for the same geometry are
    /// bit-exact regardless of what epoch path produced them.
    pub fn for_epoch(poses: &[ApPose], region: SearchRegion, bins: usize, epoch: u64) -> Self {
        assert!(!poses.is_empty(), "need at least one AP pose");
        assert!(
            (8..=u16::MAX as usize + 1).contains(&bins),
            "bins out of range"
        );
        let (nx, ny) = region.grid_size();
        let stride = coarse_stride(&region);
        let bx = nx.div_ceil(stride);
        let by = ny.div_ceil(stride);

        // Per-AP grids (cached or computed), concatenated into the
        // AP-major slabs the fusion inner loop streams.
        let mut fine: Vec<u16> = Vec::with_capacity(poses.len() * nx * ny);
        let mut blocks: Vec<(u16, u16)> = Vec::with_capacity(poses.len() * bx * by);
        for pose in poses {
            let grid = ap_grid(pose, region, bins);
            fine.extend_from_slice(&grid.fine);
            blocks.extend_from_slice(&grid.blocks);
        }

        Self {
            region,
            poses: poses.to_vec(),
            bins,
            epoch,
            nx,
            ny,
            stride,
            bx,
            by,
            fine,
            blocks,
        }
    }

    /// The AP poses the engine was built for, in index order.
    pub fn poses(&self) -> &[ApPose] {
        &self.poses
    }

    /// The topology epoch this engine serves (0 for a fixed deployment).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The search region (and grid pitch) the engine covers.
    pub fn region(&self) -> SearchRegion {
        self.region
    }

    /// The spectrum resolution queries must match.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Grid dimensions `(nx, ny)` of the fine search grid.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The precomputed spectrum-bin index of cell `(ix, iy)`'s bearing from
    /// AP `ap` (diagnostic accessor; the quantization unit tests check its
    /// error stays within half a bin).
    pub fn bearing_bin(&self, ap: usize, ix: usize, iy: usize) -> usize {
        self.fine[ap * self.nx * self.ny + iy * self.nx + ix] as usize
    }

    /// Localizes a client from `(AP index, processed spectrum)` pairs — any
    /// non-empty subset of the deployment's APs.
    ///
    /// Equivalent to [`crate::synthesis::localize`] over the same
    /// observations (same top cells, same hill climb), but via the
    /// precomputed caches and coarse-to-fine search. Uses the calling
    /// thread's default [`LocalizeScratch`], so repeat queries allocate
    /// nothing; pass an explicit arena via
    /// [`Self::localize_with`] to control pooling.
    pub fn localize(&self, observations: &[(usize, &AoaSpectrum)]) -> LocationEstimate {
        with_default_scratch(|scratch| self.localize_with(observations, scratch))
    }

    /// [`Self::localize`] with a caller-owned workspace (zero heap
    /// allocations once `scratch` has warmed to the query shape).
    pub fn localize_with(
        &self,
        observations: &[(usize, &AoaSpectrum)],
        scratch: &mut LocalizeScratch,
    ) -> LocationEstimate {
        self.localize_indexed(observations.len(), &|i| observations[i], scratch)
    }

    /// The accessor-based core of [`Self::localize`]: observations are
    /// supplied as `get(i) -> (AP index, spectrum)` for `i < n`, so callers
    /// (the fusion pipeline, the serve tier) can feed borrowed spectra
    /// straight from their own storage without materializing a slice.
    ///
    /// # Panics
    /// Panics if `n == 0`, any AP index is out of range, or any spectrum's
    /// resolution differs from the engine's.
    pub fn localize_indexed<'a, F>(
        &self,
        n: usize,
        get: &F,
        scratch: &mut LocalizeScratch,
    ) -> LocationEstimate
    where
        F: Fn(usize) -> (usize, &'a AoaSpectrum),
    {
        assert!(n > 0, "need at least one AP observation");
        let _t = at_obs::time_stage!(at_obs::stages::FUSION, "aps" => n);
        self.fill_exact(n, get, scratch);
        self.search_core(n, get, HILL_CLIMB_STARTS, scratch);
        let exact = &scratch.exact[..n];
        let starts = scratch.candidates();
        let mut best = LocationEstimate {
            position: starts[0].0,
            likelihood: starts[0].1,
        };
        for &(start, _) in starts {
            let refined = hill_climb(exact, start, self.region);
            if refined.likelihood > best.likelihood {
                best = refined;
            }
        }
        scratch.note_growth();
        best
    }

    /// The `k` best grid cells for a query, by *exact* likelihood,
    /// descending — the coarse-to-fine equivalent of
    /// `heatmap(..).top_cells(k)` (the parity tests compare the two).
    pub fn top_candidates(
        &self,
        observations: &[(usize, &AoaSpectrum)],
        k: usize,
    ) -> Vec<(Point, f64)> {
        assert!(!observations.is_empty(), "need at least one AP observation");
        with_default_scratch(|scratch| {
            let get = |i: usize| observations[i];
            self.fill_exact(observations.len(), &get, scratch);
            self.search_core(observations.len(), &get, k, scratch);
            scratch.note_growth();
            scratch.candidates().to_vec()
        })
    }

    /// Fills the full fine-grid heatmap (Fig. 14's rendering data) from the
    /// bearing caches, one row per parallel work item with AP-major planar
    /// accumulation over the contiguous bin-index slabs. Values use the
    /// quantized (nearest-bin) spectra, which is what a visualization
    /// needs; the exhaustive-interpolating reference is
    /// [`crate::synthesis::heatmap`].
    pub fn heatmap(&self, observations: &[(usize, &AoaSpectrum)]) -> Heatmap {
        assert!(!observations.is_empty(), "need at least one AP observation");
        with_default_scratch(|scratch| {
            let get = |i: usize| observations[i];
            self.fill_luts(observations.len(), &get, scratch);
            let luts = &scratch.luts;
            let lut_aps = &scratch.lut_aps;
            let (bins, ncells) = (self.bins, self.nx * self.ny);
            let rows: Vec<usize> = (0..self.ny).collect();
            let values = parallel_map(&rows, available_threads(), |_, &iy| {
                let mut row = vec![0.0f64; self.nx];
                for (j, &ap) in lut_aps.iter().enumerate() {
                    let lut = &luts[j * bins..(j + 1) * bins];
                    let seg_start = ap * ncells + iy * self.nx;
                    let seg = &self.fine[seg_start..seg_start + self.nx];
                    for (acc, &bin) in row.iter_mut().zip(seg) {
                        *acc += lut[bin as usize];
                    }
                }
                for v in &mut row {
                    *v = v.exp();
                }
                row
            })
            .concat();
            Heatmap {
                region: self.region,
                values,
                nx: self.nx,
                ny: self.ny,
            }
        })
    }

    /// Recycles `scratch.exact[..n]` into normalized owned observations
    /// for exact re-evaluation / hill climb (mirrors
    /// `synthesis::normalize_observations`, reusing each slot's spectrum
    /// allocation when the resolution matches).
    fn fill_exact<'a, F>(&self, n: usize, get: &F, scratch: &mut LocalizeScratch)
    where
        F: Fn(usize) -> (usize, &'a AoaSpectrum),
    {
        for i in 0..n {
            let (ap, spectrum) = get(i);
            assert!(ap < self.poses.len(), "AP index {ap} out of range");
            assert_eq!(
                spectrum.bins(),
                self.bins,
                "spectrum resolution doesn't match the engine's bearing grids"
            );
            let pose = self.poses[ap];
            match scratch.exact.get_mut(i) {
                Some(slot) if slot.spectrum.bins() == spectrum.bins() => {
                    slot.pose = pose;
                    slot.spectrum.copy_normalized_from(spectrum);
                }
                Some(slot) => {
                    *slot = ApObservation {
                        pose,
                        spectrum: spectrum.normalized(),
                    };
                }
                None => scratch.exact.push(ApObservation {
                    pose,
                    spectrum: spectrum.normalized(),
                }),
            }
        }
    }

    /// Fills the flat per-observation log-likelihood LUTs
    /// `ln(max(P[bin]/max(P), floor))` into `scratch.luts` /
    /// `scratch.lut_aps`.
    fn fill_luts<'a, F>(&self, n: usize, get: &F, scratch: &mut LocalizeScratch)
    where
        F: Fn(usize) -> (usize, &'a AoaSpectrum),
    {
        scratch.luts.clear();
        scratch.lut_aps.clear();
        for i in 0..n {
            let (ap, spectrum) = get(i);
            assert!(ap < self.poses.len(), "AP index {ap} out of range");
            assert_eq!(
                spectrum.bins(),
                self.bins,
                "spectrum resolution doesn't match the engine's bearing grids"
            );
            let max = spectrum.max_value();
            let scale = if max > 0.0 { 1.0 / max } else { 1.0 };
            scratch.luts.extend(
                spectrum
                    .values()
                    .iter()
                    .map(|&v| (v * scale).max(LIKELIHOOD_FLOOR).ln()),
            );
            scratch.lut_aps.push(ap);
        }
    }

    /// Best-first coarse-to-fine search leaving the top-`k` cells by exact
    /// likelihood, descending, in `scratch.cells`. Requires
    /// [`Self::fill_exact`] to have populated `scratch.exact[..n]`.
    fn search_core<'a, F>(&self, n: usize, get: &F, k: usize, scratch: &mut LocalizeScratch)
    where
        F: Fn(usize) -> (usize, &'a AoaSpectrum),
    {
        self.fill_luts(n, get, scratch);
        let keep = CANDIDATE_CELLS.max(k).min(self.nx * self.ny);
        let (bins, ncells, nblocks) = (self.bins, self.nx * self.ny, self.bx * self.by);
        let LocalizeScratch {
            exact,
            luts,
            lut_aps,
            bounds,
            order,
            top,
            cells,
            row_acc,
            ..
        } = scratch;

        // Upper-bound every coarse block, AP-major: each observation adds
        // its dilated-interval max into the per-block accumulator, walking
        // its own contiguous interval slab. The per-block sum order is the
        // observation order, so bounds are bit-identical to the previous
        // cell-major fold.
        bounds.clear();
        bounds.resize(nblocks, 0.0);
        for (j, &ap) in lut_aps.iter().enumerate() {
            let lut = &luts[j * bins..(j + 1) * bins];
            let intervals = &self.blocks[ap * nblocks..(ap + 1) * nblocks];
            for (acc, &(start, len)) in bounds.iter_mut().zip(intervals) {
                let (start, len) = (start as usize, len as usize);
                // A circular interval is at most two contiguous runs; max
                // is order-independent, so splitting keeps bounds
                // bit-identical while the scan stays branch-free and
                // vectorizable (no per-element modulo).
                let mut m = f64::NEG_INFINITY;
                let end = start + len;
                if end <= bins {
                    for &v in &lut[start..end] {
                        m = m.max(v);
                    }
                } else {
                    for &v in &lut[start..bins] {
                        m = m.max(v);
                    }
                    for &v in &lut[..end - bins] {
                        m = m.max(v);
                    }
                }
                *acc += m;
            }
        }

        // Score order: best bound first.
        order.clear();
        order.extend(bounds.iter().enumerate().map(|(b, &s)| (s, b)));
        order.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite bounds"));

        // Refine best-first: expand blocks into fine cells until no
        // unrefined block's bound can beat the current `keep`-th cell.
        // Each block row is scored by AP-major planar accumulation over
        // the contiguous `fine` row segments (log-domain adds into one
        // cache-resident row accumulator).
        if row_acc.len() < self.stride {
            row_acc.resize(self.stride, 0.0);
        }
        top.clear();
        for &(bound, b) in order.iter() {
            if top.len() == keep && bound <= top[0].0 {
                break;
            }
            let (bxi, byi) = (b % self.bx, b / self.bx);
            let x0 = bxi * self.stride;
            let x1 = ((bxi + 1) * self.stride).min(self.nx);
            let y0 = byi * self.stride;
            let y1 = ((byi + 1) * self.stride).min(self.ny);
            for iy in y0..y1 {
                let acc = &mut row_acc[..x1 - x0];
                acc.fill(0.0);
                for (j, &ap) in lut_aps.iter().enumerate() {
                    let lut = &luts[j * bins..(j + 1) * bins];
                    let seg_start = ap * ncells + iy * self.nx;
                    let seg = &self.fine[seg_start + x0..seg_start + x1];
                    for (a, &bin) in acc.iter_mut().zip(seg) {
                        *a += lut[bin as usize];
                    }
                }
                for (dx, &s) in acc.iter().enumerate() {
                    let cell = iy * self.nx + x0 + dx;
                    if top.len() < keep {
                        top.push((s, cell));
                        top.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                    } else if s > top[0].0 {
                        top[0] = (s, cell);
                        let mut i = 0;
                        while i + 1 < top.len() && top[i].0 > top[i + 1].0 {
                            top.swap(i, i + 1);
                            i += 1;
                        }
                    }
                }
            }
        }

        // Exact re-evaluation of the survivors, then the final ordering: a
        // stable insertion sort, descending — the same permutation as the
        // stable `sort_by` it replaces, without its merge buffer.
        cells.clear();
        for &(_, cell) in top.iter() {
            let p = self.region.cell_center(cell % self.nx, cell / self.nx);
            cells.push((p, likelihood(&exact[..n], p)));
        }
        for i in 1..cells.len() {
            let mut j = i;
            while j > 0 && cells[j].1 > cells[j - 1].1 {
                cells.swap(j, j - 1);
                j -= 1;
            }
        }
        cells.truncate(k);
    }
}

/// The minimal circular interval (over `bins` bins) covering every value in
/// `cell_bins`, dilated by one bin on each side so the interval max also
/// bounds linear interpolation between neighboring bins. Returns
/// `(start, len)`.
fn circular_cover(cell_bins: &mut Vec<u16>, bins: usize) -> (u16, u16) {
    if cell_bins.is_empty() {
        return (0, 0);
    }
    cell_bins.sort_unstable();
    cell_bins.dedup();
    if cell_bins.len() == 1 {
        let start = (cell_bins[0] as usize + bins - 1) % bins;
        return (start as u16, 3.min(bins) as u16);
    }
    // The minimal cover is the complement of the largest circular gap
    // between consecutive occupied bins.
    let mut gap_len = 0usize;
    let mut gap_after = 0usize; // index whose successor-gap is largest
    for i in 0..cell_bins.len() {
        let a = cell_bins[i] as usize;
        let b = cell_bins[(i + 1) % cell_bins.len()] as usize;
        let g = (b + bins - a) % bins;
        if g > gap_len {
            gap_len = g;
            gap_after = i;
        }
    }
    let start = cell_bins[(gap_after + 1) % cell_bins.len()] as usize;
    let len = bins - gap_len + 1;
    // Dilate by one bin on each side, capped at the full circle.
    let start = (start + bins - 1) % bins;
    let len = (len + 2).min(bins);
    ((start % bins) as u16, len as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{heatmap, localize};
    use at_channel::geometry::{angle_diff, pt, Point};

    /// An epoch rebuild that keeps `k` APs pays only for the changed
    /// ones: the process-wide grid cache serves the unchanged APs, and
    /// the slabs it yields are byte-identical to a cold build.
    #[test]
    fn epoch_rebuild_reuses_cached_grids_bit_exactly() {
        let poses: Vec<ApPose> = (0..4)
            .map(|i| ApPose {
                center: pt(f64::from(i) * 3.0 + 100.0, 50.5),
                axis_angle: f64::from(i) * 0.7,
            })
            .collect();
        let region = SearchRegion::new(pt(100.0, 50.0), pt(106.0, 55.0));
        let e0 = LocalizationEngine::for_epoch(&poses, region, 720, 0);
        assert_eq!(e0.epoch(), 0);

        // Remove AP 1: three grids survive unchanged.
        let mut fewer = poses.clone();
        fewer.remove(1);
        let (h0, m0) = grid_cache_stats();
        let e1 = LocalizationEngine::for_epoch(&fewer, region, 720, 1);
        let (h1, m1) = grid_cache_stats();
        assert_eq!(e1.epoch(), 1);
        assert_eq!(h1 - h0, 3, "three unchanged APs must hit the cache");
        assert_eq!(m1 - m0, 0);

        // The reused slabs are byte-identical to the original build's.
        let (nx, ny) = e0.grid_size();
        let cells = nx * ny;
        assert_eq!(e1.fine[..cells], e0.fine[..cells]); // old AP 0
        assert_eq!(e1.fine[cells..2 * cells], e0.fine[2 * cells..3 * cells]); // old AP 2
                                                                              // And a from-scratch engine over the same poses is bit-identical
                                                                              // to the cache-served one.
        let fresh = LocalizationEngine::for_epoch(&fewer, region, 720, 1);
        assert_eq!(fresh.fine, e1.fine);
        assert_eq!(fresh.blocks, e1.blocks);
    }

    /// A spectrum with a single Gaussian lobe at `theta` radians (plus the
    /// mirror image a plain ULA would produce).
    fn lobe(theta: f64, width: f64) -> AoaSpectrum {
        AoaSpectrum::from_fn(720, |t| {
            let d1 = angle_diff(t, theta);
            let d2 = angle_diff(t, TAU - theta);
            (-(d1 / width).powi(2)).exp() + 0.8 * (-(d2 / width).powi(2)).exp() + 1e-5
        })
    }

    fn fixture(target: Point) -> (Vec<ApPose>, Vec<AoaSpectrum>, SearchRegion) {
        let poses = vec![
            ApPose {
                center: pt(0.0, 0.0),
                axis_angle: 0.3,
            },
            ApPose {
                center: pt(12.0, 0.0),
                axis_angle: 2.0,
            },
            ApPose {
                center: pt(6.0, 9.0),
                axis_angle: 4.1,
            },
        ];
        let spectra = poses
            .iter()
            .map(|p| lobe(p.bearing_to(target), 0.08))
            .collect();
        (
            poses,
            spectra,
            SearchRegion::new(pt(0.0, 0.0), pt(12.0, 9.0)),
        )
    }

    fn indexed(spectra: &[AoaSpectrum]) -> Vec<(usize, &AoaSpectrum)> {
        spectra.iter().enumerate().collect()
    }

    #[test]
    fn engine_matches_legacy_localize() {
        for target in [pt(6.0, 4.0), pt(2.3, 7.1), pt(10.8, 1.2)] {
            let (poses, spectra, region) = fixture(target);
            let engine = LocalizationEngine::new(&poses, region, 720);
            let obs: Vec<ApObservation> = poses
                .iter()
                .zip(&spectra)
                .map(|(pose, s)| ApObservation {
                    pose: *pose,
                    spectrum: s.clone(),
                })
                .collect();
            let legacy = localize(&obs, region);
            let fast = engine.localize(&indexed(&spectra));
            assert!(
                fast.position.distance(legacy.position) < 1e-3,
                "target {target:?}: engine {:?} vs legacy {:?}",
                fast.position,
                legacy.position
            );
        }
    }

    #[test]
    fn engine_supports_ap_subsets() {
        let target = pt(4.0, 5.0);
        let (poses, spectra, region) = fixture(target);
        let engine = LocalizationEngine::new(&poses, region, 720);
        // Query with APs {0, 2} only.
        let obs: Vec<(usize, &AoaSpectrum)> = vec![(0, &spectra[0]), (2, &spectra[2])];
        let est = engine.localize(&obs);
        let legacy = localize(
            &[
                ApObservation {
                    pose: poses[0],
                    spectrum: spectra[0].clone(),
                },
                ApObservation {
                    pose: poses[2],
                    spectrum: spectra[2].clone(),
                },
            ],
            region,
        );
        assert!(est.position.distance(legacy.position) < 1e-3);
    }

    #[test]
    fn top_candidates_match_exhaustive_top_cells() {
        let target = pt(7.4, 3.3);
        let (poses, spectra, region) = fixture(target);
        let engine = LocalizationEngine::new(&poses, region, 720);
        let obs: Vec<ApObservation> = poses
            .iter()
            .zip(&spectra)
            .map(|(pose, s)| ApObservation {
                pose: *pose,
                spectrum: s.clone(),
            })
            .collect();
        let reference = heatmap(&obs, region).top_cells(3);
        let fast = engine.top_candidates(&indexed(&spectra), 3);
        assert_eq!(reference.len(), fast.len());
        for (r, f) in reference.iter().zip(&fast) {
            assert!(
                r.0.distance(f.0) < 1e-9,
                "cell order differs: {reference:?} vs {fast:?}"
            );
            assert!((r.1 - f.1).abs() <= 1e-9 * r.1.max(1.0));
        }
    }

    #[test]
    fn engine_heatmap_tracks_exact_heatmap() {
        let target = pt(5.0, 6.0);
        let (poses, spectra, region) = fixture(target);
        let region = region.with_resolution(0.25);
        let engine = LocalizationEngine::new(&poses, region, 720);
        let obs: Vec<ApObservation> = poses
            .iter()
            .zip(&spectra)
            .map(|(pose, s)| ApObservation {
                pose: *pose,
                spectrum: s.clone(),
            })
            .collect();
        let exact = heatmap(&obs, region);
        let fast = engine.heatmap(&indexed(&spectra));
        assert_eq!((exact.nx, exact.ny), (fast.nx, fast.ny));
        // Quantized values track the interpolated ones closely, and the
        // peak cell is the same.
        assert!(
            exact.top_cells(1)[0].0.distance(fast.top_cells(1)[0].0) < 1e-9,
            "heatmap peaks differ"
        );
        for (a, b) in exact.values.iter().zip(&fast.values) {
            assert!((a - b).abs() <= 0.35 * a.max(*b) + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn bearing_bins_quantize_within_half_a_bin() {
        let (poses, _, region) = fixture(pt(6.0, 4.0));
        let engine = LocalizationEngine::new(&poses, region, 720);
        let half_bin = TAU / 720.0 / 2.0;
        let (nx, ny) = engine.grid_size();
        for (ap, pose) in poses.iter().enumerate() {
            for iy in (0..ny).step_by(7) {
                for ix in (0..nx).step_by(7) {
                    let truth = pose.bearing_to(region.cell_center(ix, iy));
                    let stored = engine.bearing_bin(ap, ix, iy) as f64 * TAU / 720.0;
                    assert!(
                        angle_diff(truth, stored) <= half_bin + 1e-12,
                        "AP {ap} cell ({ix},{iy}): {truth} vs {stored}"
                    );
                }
            }
        }
    }

    #[test]
    fn circular_cover_handles_wrap() {
        // Bins straddling the 0 wrap: cover must stay short.
        let (start, len) = circular_cover(&mut vec![718, 719, 0, 1], 720);
        assert_eq!((start, len), (717, 6));
        // A single bin covers itself plus the dilation.
        let (start, len) = circular_cover(&mut vec![10], 720);
        assert_eq!((start, len), (9, 3));
        // Antipodal bins: cover is the smaller arc plus dilation.
        let (_, len) = circular_cover(&mut vec![0, 100], 720);
        assert_eq!(len, 103);
        // Empty blocks (outside the grid) are inert.
        assert_eq!(circular_cover(&mut Vec::new(), 720), (0, 0));
    }

    #[test]
    #[should_panic(expected = "spectrum resolution")]
    fn mismatched_bins_rejected() {
        let (poses, _, region) = fixture(pt(6.0, 4.0));
        let engine = LocalizationEngine::new(&poses, region, 360);
        let spec = lobe(1.0, 0.1); // 720 bins
        engine.localize(&[(0, &spec)]);
    }
}
