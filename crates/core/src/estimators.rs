//! Classical AoA estimators: Bartlett and MVDR (Capon).
//!
//! The paper builds on MUSIC because of its super-resolution; these two
//! textbook estimators provide the reference points that make that choice
//! quantitative (the `exp_estimators` bench compares all three on the same
//! captures):
//!
//! - **Bartlett** (delay-and-sum): `P(θ) = a(θ)ᴴ·R·a(θ)` — robust, but the
//!   beamwidth is diffraction-limited (~2/M radians);
//! - **MVDR / Capon**: `P(θ) = 1 / (a(θ)ᴴ·R⁻¹·a(θ))` — sharper than
//!   Bartlett, still resolution-limited versus MUSIC and sensitive to
//!   correlation-matrix conditioning (we diagonal-load via a regularized
//!   eigen-inverse).
//!
//! Both are computed for a λ/2 ULA and mirrored like the MUSIC spectrum.

use crate::spectrum::AoaSpectrum;
use crate::steering::SteeringTable;
use at_dsp::SnapshotBlock;
use at_linalg::{eigh, CMatrix};

/// Relative diagonal loading for the MVDR inverse.
const MVDR_LOADING: f64 = 1e-4;

/// Shared scan loop: evaluates `f(a(θ))` over the half-circle and mirrors,
/// drawing the steering vectors from the process-wide precomputed table.
fn scan_ula(elements: usize, bins: usize, f: impl Fn(&at_linalg::CVector) -> f64) -> AoaSpectrum {
    SteeringTable::shared(elements, bins).scan(f)
}

/// Bartlett (conventional beam-scan) spectrum from a correlation matrix.
pub fn bartlett_spectrum_from_rxx(rxx: &CMatrix, bins: usize) -> AoaSpectrum {
    assert!(rxx.is_square());
    scan_ula(rxx.rows(), bins, |a| a.dot(&rxx.mul_vec(a)).re)
}

/// Bartlett spectrum from a snapshot block (rows in ULA element order).
pub fn bartlett_spectrum(block: &SnapshotBlock, bins: usize) -> AoaSpectrum {
    bartlett_spectrum_from_rxx(&block.correlation_matrix(), bins)
}

/// MVDR (Capon) spectrum from a correlation matrix, with diagonal loading.
pub fn mvdr_spectrum_from_rxx(rxx: &CMatrix, bins: usize) -> AoaSpectrum {
    assert!(rxx.is_square());
    let eig = eigh(rxx).expect("correlation matrices are Hermitian");
    let rinv = eig.inverse_regularized(MVDR_LOADING);
    scan_ula(rxx.rows(), bins, |a| {
        1.0 / a.dot(&rinv.mul_vec(a)).re.max(1e-12)
    })
}

/// MVDR spectrum from a snapshot block (rows in ULA element order).
pub fn mvdr_spectrum(block: &SnapshotBlock, bins: usize) -> AoaSpectrum {
    mvdr_spectrum_from_rxx(&block.correlation_matrix(), bins)
}

/// Half-power (−3 dB) width of the spectrum's main lobe, radians — the
/// resolution figure of merit the estimator comparison reports.
pub fn main_lobe_width(spectrum: &AoaSpectrum) -> f64 {
    let s = spectrum.normalized();
    s.values().iter().filter(|&&v| v > 0.5).count() as f64 * s.resolution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{music_spectrum, MusicConfig};
    use crate::steering::ula_steering;
    use at_channel::geometry::angle_diff;
    use at_dsp::awgn::NoiseSource;
    use at_linalg::Complex64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::TAU;

    fn one_source_block(theta: f64, noise: f64, seed: u64) -> SnapshotBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = NoiseSource::with_power(noise);
        let a = ula_steering(8, theta);
        let mut streams = vec![Vec::new(); 8];
        for _ in 0..30 {
            // One common source phase per snapshot (coherent across the
            // array, incoherent across snapshots).
            let phase = Complex64::cis(rng.gen_range(0.0..TAU));
            for (m, s) in streams.iter_mut().enumerate() {
                s.push(a[m] * phase + n.sample(&mut rng));
            }
        }
        SnapshotBlock::new(streams)
    }

    /// A two-snapshot-correlated trick won't work here: generate per-
    /// snapshot common phases so the two sources stay incoherent.
    fn two_source_block(t1: f64, t2: f64, seed: u64) -> SnapshotBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = NoiseSource::with_power(0.01);
        let a1 = ula_steering(8, t1);
        let a2 = ula_steering(8, t2);
        let mut streams = vec![Vec::new(); 8];
        for _ in 0..60 {
            let p1 = Complex64::cis(rng.gen_range(0.0..TAU));
            let p2 = Complex64::cis(rng.gen_range(0.0..TAU));
            for (m, s) in streams.iter_mut().enumerate() {
                s.push(a1[m] * p1 + a2[m] * p2 + n.sample(&mut rng));
            }
        }
        SnapshotBlock::new(streams)
    }

    #[test]
    fn all_estimators_peak_at_the_source() {
        let theta = 70f64.to_radians();
        let block = one_source_block(theta, 0.05, 1);
        for (name, spec) in [
            ("bartlett", bartlett_spectrum(&block, 720)),
            ("mvdr", mvdr_spectrum(&block, 720)),
            ("music", music_spectrum(&block, &MusicConfig::default())),
        ] {
            let best = spec.find_peaks(0.5)[0].theta;
            let err = angle_diff(best, theta).min(angle_diff(best, TAU - theta));
            assert!(err < 2f64.to_radians(), "{name}: err {err}");
        }
    }

    #[test]
    fn resolution_ordering_music_beats_mvdr_beats_bartlett() {
        let theta = 95f64.to_radians();
        let block = one_source_block(theta, 0.02, 2);
        let bartlett = bartlett_spectrum(&block, 720);
        let mvdr = mvdr_spectrum(&block, 720);
        let music = music_spectrum(
            &block,
            &MusicConfig {
                smoothing_groups: 1,
                ..MusicConfig::default()
            },
        );
        let wb = main_lobe_width(&bartlett);
        let wm = main_lobe_width(&mvdr);
        let wmu = main_lobe_width(&music);
        assert!(
            wm < wb,
            "MVDR ({wm}) should be sharper than Bartlett ({wb})"
        );
        assert!(
            wmu <= wm,
            "MUSIC ({wmu}) should be at least as sharp as MVDR ({wm})"
        );
        // At high SNR the half-power width saturates at the bin size, so
        // also rank by spectrum floor (peak-to-mean): MUSIC ≫ MVDR ≫ Bartlett.
        let p2m = |s: &AoaSpectrum| {
            let n = s.normalized();
            n.bins() as f64 / n.values().iter().sum::<f64>()
        };
        assert!(
            p2m(&mvdr) > 2.0 * p2m(&bartlett),
            "MVDR floor should be far lower"
        );
        assert!(
            p2m(&music) > 1.5 * p2m(&mvdr),
            "MUSIC floor should be lower still"
        );
    }

    #[test]
    fn close_sources_separate_music_only() {
        // 12° apart at 8 elements: inside the Bartlett beamwidth.
        let t1 = 84f64.to_radians();
        let t2 = 96f64.to_radians();
        let block = two_source_block(t1, t2, 3);
        let near = |spec: &AoaSpectrum| {
            spec.has_peak_near(t1, 3f64.to_radians(), 0.2)
                && spec.has_peak_near(t2, 3f64.to_radians(), 0.2)
        };
        // At 12° the two steering vectors correlate ~0.77, pushing the
        // second eigenvalue near the default 10 % signal threshold; a
        // looser threshold keeps D = 2 (this is exactly the sensitivity
        // the paper's threshold rule trades off).
        let mspec = music_spectrum(
            &block,
            &MusicConfig {
                smoothing_groups: 1,
                eigenvalue_threshold: 0.03,
                ..MusicConfig::default()
            },
        );
        let music_ok = near(&mspec);
        assert!(music_ok, "MUSIC should resolve 12° at 8 elements");
        // "Resolved" means a genuine dip between the two bearings
        // (Rayleigh-style), not merely ripple on a flat top: Bartlett's
        // midpoint valley stays within a few percent of the lobe tops,
        // while MUSIC carves an order-of-magnitude notch.
        let mid = (t1 + t2) / 2.0;
        let dip = |spec: &AoaSpectrum| {
            let s = spec.normalized();
            s.sample(mid) / s.sample(t1).min(s.sample(t2)).max(1e-12)
        };
        let bartlett_dip = dip(&bartlett_spectrum(&block, 720));
        let music_dip = dip(&mspec);
        assert!(
            bartlett_dip > 0.85,
            "Bartlett should blur 12° into one lobe (dip {bartlett_dip})"
        );
        assert!(
            music_dip < 0.5,
            "MUSIC should notch between the sources (dip {music_dip})"
        );
    }

    #[test]
    fn spectra_are_mirror_symmetric_and_finite() {
        let block = one_source_block(1.0, 0.1, 4);
        for spec in [bartlett_spectrum(&block, 360), mvdr_spectrum(&block, 360)] {
            let n = spec.bins();
            for i in 1..n / 2 {
                let a = spec.values()[i];
                let b = spec.values()[n - i];
                assert!(a.is_finite() && a >= 0.0);
                assert!((a - b).abs() < 1e-9 * (1.0 + a));
            }
        }
    }

    #[test]
    fn mvdr_survives_rank_deficient_input() {
        // Single snapshot: R is rank one; diagonal loading must keep MVDR
        // finite and still peaked near the source.
        let theta = 60f64.to_radians();
        let a = ula_steering(8, theta);
        let block = SnapshotBlock::new((0..8).map(|m| vec![a[m]]).collect());
        let spec = mvdr_spectrum(&block, 720);
        assert!(spec.values().iter().all(|v| v.is_finite()));
        let best = spec.find_peaks(0.5)[0].theta;
        let err = angle_diff(best, theta).min(angle_diff(best, TAU - theta));
        assert!(err < 3f64.to_radians());
    }
}
