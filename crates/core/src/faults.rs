//! Deterministic fault injection for the ArrayTrack deployment.
//!
//! The paper's accuracy claims (§5) assume healthy APs, phase-locked
//! radios, and fresh calibration — but its own removal studies (Figs.
//! 13/14/16) show the system is *meant* to degrade gracefully as antennas
//! and APs disappear. A production deployment sees exactly those failure
//! modes, plus ones the paper never had to model: calibration drift,
//! missed preamble detections, stale spectra, and noise-floor spikes.
//!
//! A [`FaultPlan`] describes, per AP, which of those faults are active. It
//! is **deterministic**: every stochastic decision (does AP 3 miss client
//! 17's second frame?) is a pure function of `(plan seed, ap, client,
//! frame)` via a splitmix64 hash, so a fault scenario replays bit-for-bit
//! regardless of thread interleaving or call order — the property the
//! robustness test tier (`tests/faults.rs`) is built on.
//!
//! The plan itself only *describes* faults. Injection happens at the
//! physically honest layer for each kind:
//!
//! | fault                     | injected by                                  |
//! |---------------------------|----------------------------------------------|
//! | AP outage                 | `at-testbed` acquisition (no frames at all)   |
//! | antenna element dropout   | `at-channel` ([`AntennaArray::with_dead_elements`]) |
//! | calibration drift         | `at-frontend` ([`Calibration::with_drift`])   |
//! | missed preamble detection | `at-testbed` acquisition (per-frame draw)     |
//! | stale/expired spectra     | spectrum age, policed by [`crate::health`]    |
//! | AWGN-floor spike          | `at-testbed` capture noise power              |
//!
//! [`AntennaArray::with_dead_elements`]: at_channel::AntennaArray::with_dead_elements
//! [`Calibration::with_drift`]: at_frontend::Calibration::with_drift

use std::f64::consts::PI;

/// Fault switches for one AP. The default is a fully healthy AP.
#[derive(Clone, Debug, PartialEq)]
pub struct ApFaultProfile {
    /// The AP is completely down: it produces no frames at all.
    pub outage: bool,
    /// Indices of dead antenna elements (in-row `0..elements`, plus the
    /// off-row element at index `elements`). A dead element feeds only
    /// receiver noise into its radio port.
    pub dead_elements: Vec<usize>,
    /// Per-radio calibration drift magnitude, radians. Each radio's
    /// correction table is rotated by a deterministic draw in
    /// `[-drift, +drift]` — the slow oscillator walk and temperature drift
    /// that a one-time CW calibration cannot track.
    pub phase_drift_rad: f64,
    /// Probability that any given frame's preamble detection fails at this
    /// AP (drawn deterministically per `(client, frame, attempt)`).
    pub miss_rate: f64,
    /// Age, in server refresh intervals, of the spectra this AP serves.
    /// `0` = fresh. The server's [`crate::health::HealthPolicy`] decides
    /// when age becomes "stale" and the AP is dropped from fusion.
    pub spectrum_age: u64,
    /// Rise of the AWGN noise floor in dB (0 = nominal floor).
    pub noise_spike_db: f64,
}

impl Default for ApFaultProfile {
    fn default() -> Self {
        Self {
            outage: false,
            dead_elements: Vec::new(),
            phase_drift_rad: 0.0,
            miss_rate: 0.0,
            spectrum_age: 0,
            noise_spike_db: 0.0,
        }
    }
}

impl ApFaultProfile {
    /// Whether this profile is a completely healthy AP.
    pub fn is_healthy(&self) -> bool {
        *self == Self::default()
    }

    /// Multiplier the AWGN noise power is scaled by.
    pub fn noise_multiplier(&self) -> f64 {
        10f64.powf(self.noise_spike_db / 10.0)
    }
}

/// A seeded, deterministic fault scenario over an `n`-AP deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    aps: Vec<ApFaultProfile>,
}

impl FaultPlan {
    /// A plan with every AP healthy (the control scenario: running the
    /// fault-enabled path under this plan must match the fault-free path
    /// exactly).
    pub fn healthy(n_aps: usize) -> Self {
        Self {
            seed: 0,
            aps: vec![ApFaultProfile::default(); n_aps],
        }
    }

    /// A healthy plan whose stochastic draws (miss decisions, drift signs)
    /// derive from `seed`.
    pub fn seeded(n_aps: usize, seed: u64) -> Self {
        Self {
            seed,
            aps: vec![ApFaultProfile::default(); n_aps],
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of APs the plan covers.
    pub fn len(&self) -> usize {
        self.aps.len()
    }

    /// Whether the plan covers zero APs.
    pub fn is_empty(&self) -> bool {
        self.aps.is_empty()
    }

    /// The fault profile of AP `ap`.
    pub fn ap(&self, ap: usize) -> &ApFaultProfile {
        &self.aps[ap]
    }

    /// Whether every AP in the plan is healthy.
    pub fn is_all_healthy(&self) -> bool {
        self.aps.iter().all(ApFaultProfile::is_healthy)
    }

    /// Indices of APs that are *not* in outage.
    pub fn live_aps(&self) -> Vec<usize> {
        (0..self.aps.len())
            .filter(|&i| !self.aps[i].outage)
            .collect()
    }

    /// Marks AP `ap` as completely down.
    pub fn with_outage(mut self, ap: usize) -> Self {
        self.aps[ap].outage = true;
        self
    }

    /// Marks every AP in `aps` as down.
    pub fn with_outages(mut self, aps: &[usize]) -> Self {
        for &ap in aps {
            self.aps[ap].outage = true;
        }
        self
    }

    /// Kills the listed antenna elements of AP `ap`.
    pub fn with_dead_elements(mut self, ap: usize, elements: &[usize]) -> Self {
        self.aps[ap].dead_elements = elements.to_vec();
        self
    }

    /// Applies calibration drift of magnitude `rad` to AP `ap`.
    pub fn with_phase_drift(mut self, ap: usize, rad: f64) -> Self {
        assert!(rad >= 0.0, "drift magnitude must be non-negative");
        self.aps[ap].phase_drift_rad = rad;
        self
    }

    /// Sets AP `ap`'s per-frame preamble miss probability.
    pub fn with_miss_rate(mut self, ap: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "miss rate must be in [0, 1]");
        self.aps[ap].miss_rate = p;
        self
    }

    /// Marks AP `ap`'s spectra as `age` refresh intervals old.
    pub fn with_spectrum_age(mut self, ap: usize, age: u64) -> Self {
        self.aps[ap].spectrum_age = age;
        self
    }

    /// Raises AP `ap`'s noise floor by `db` decibels.
    pub fn with_noise_spike(mut self, ap: usize, db: f64) -> Self {
        assert!(db >= 0.0, "a noise spike raises the floor");
        self.aps[ap].noise_spike_db = db;
        self
    }

    /// A scenario with `k` APs in outage, chosen deterministically from
    /// `seed` (the Fig. 14-style "k failed APs" sweep).
    pub fn random_outages(n_aps: usize, k: usize, seed: u64) -> Self {
        assert!(k <= n_aps, "cannot fail more APs than exist");
        let mut plan = Self::seeded(n_aps, seed);
        // Deterministic Fisher–Yates prefix over the AP indices.
        let mut idx: Vec<usize> = (0..n_aps).collect();
        for i in 0..k {
            let j = i + (mix(&[seed, 0xFA11, i as u64]) as usize) % (n_aps - i);
            idx.swap(i, j);
        }
        for &ap in &idx[..k] {
            plan.aps[ap].outage = true;
        }
        plan
    }

    /// A scenario where every AP loses the same number of (deterministically
    /// chosen) in-row elements — the Fig. 16-style antenna-count sweep
    /// expressed as element *failure* rather than configuration.
    pub fn random_dead_elements(n_aps: usize, elements: usize, dead: usize, seed: u64) -> Self {
        assert!(dead <= elements, "cannot kill more elements than exist");
        let mut plan = Self::seeded(n_aps, seed);
        for ap in 0..n_aps {
            let mut idx: Vec<usize> = (0..elements).collect();
            for i in 0..dead {
                let j = i + (mix(&[seed, 0xDEAD, ap as u64, i as u64]) as usize) % (elements - i);
                idx.swap(i, j);
            }
            plan.aps[ap].dead_elements = idx[..dead].to_vec();
            plan.aps[ap].dead_elements.sort_unstable();
        }
        plan
    }

    /// Deterministic draw: does AP `ap` miss the preamble of frame `frame`
    /// (attempt `attempt`) from client `client`? Pure in all arguments, so
    /// a scenario replays identically in any execution order.
    pub fn misses_frame(&self, ap: usize, client: usize, frame: u64, attempt: u64) -> bool {
        let p = self.aps[ap].miss_rate;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = unit_f64(mix(&[
            self.seed,
            0x3155ED,
            ap as u64,
            client as u64,
            frame,
            attempt,
        ]));
        let missed = u < p;
        if missed {
            at_obs::count!("at_faults_injected_total", "kind" => "missed_detection");
        }
        missed
    }

    /// Deterministic per-radio calibration drift for AP `ap`, radians:
    /// uniform in `[-drift, +drift]` with the plan's magnitude for that AP.
    pub fn drift_for(&self, ap: usize, radios: usize) -> Vec<f64> {
        let mag = self.aps[ap].phase_drift_rad;
        (0..radios)
            .map(|r| {
                if mag == 0.0 {
                    0.0
                } else {
                    (unit_f64(mix(&[self.seed, 0xD21F7, ap as u64, r as u64])) * 2.0 - 1.0)
                        * mag.min(PI)
                }
            })
            .collect()
    }
}

/// splitmix64-style avalanche of a word sequence (the same generator the
/// channel model uses for static element imperfections — no `rand`
/// dependency, no call-order sensitivity).
fn mix(words: &[u64]) -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        z = z.wrapping_add(w).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Maps a hash to a uniform `[0, 1)` double.
fn unit_f64(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_is_healthy() {
        let p = FaultPlan::healthy(6);
        assert!(p.is_all_healthy());
        assert_eq!(p.len(), 6);
        assert_eq!(p.live_aps(), vec![0, 1, 2, 3, 4, 5]);
        assert!(!p.misses_frame(0, 0, 0, 0));
        assert_eq!(p.drift_for(3, 8), vec![0.0; 8]);
    }

    #[test]
    fn builders_set_profiles() {
        let p = FaultPlan::seeded(6, 9)
            .with_outage(1)
            .with_dead_elements(2, &[0, 3])
            .with_phase_drift(3, 0.4)
            .with_miss_rate(4, 0.5)
            .with_spectrum_age(5, 7)
            .with_noise_spike(0, 10.0);
        assert!(p.ap(1).outage);
        assert_eq!(p.ap(2).dead_elements, vec![0, 3]);
        assert_eq!(p.ap(3).phase_drift_rad, 0.4);
        assert_eq!(p.ap(4).miss_rate, 0.5);
        assert_eq!(p.ap(5).spectrum_age, 7);
        assert!((p.ap(0).noise_multiplier() - 10.0).abs() < 1e-12);
        assert_eq!(p.live_aps(), vec![0, 2, 3, 4, 5]);
        assert!(!p.is_all_healthy());
    }

    #[test]
    fn miss_draws_are_deterministic_and_rate_accurate() {
        let p = FaultPlan::seeded(2, 77).with_miss_rate(0, 0.3);
        // Replays identically.
        for f in 0..50 {
            assert_eq!(p.misses_frame(0, 5, f, 0), p.misses_frame(0, 5, f, 0));
        }
        // Empirical rate over many draws near 0.3.
        let n = 20_000;
        let hits = (0..n).filter(|&f| p.misses_frame(0, 1, f, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical miss rate {rate}");
        // Healthy AP never misses.
        assert!((0..100).all(|f| !p.misses_frame(1, 1, f, 0)));
    }

    #[test]
    fn extreme_rates_are_exact() {
        let p = FaultPlan::seeded(1, 3).with_miss_rate(0, 1.0);
        assert!((0..32).all(|f| p.misses_frame(0, 0, f, 0)));
    }

    #[test]
    fn drift_is_bounded_and_seed_dependent() {
        let a = FaultPlan::seeded(1, 1).with_phase_drift(0, 0.5);
        let b = FaultPlan::seeded(1, 2).with_phase_drift(0, 0.5);
        let da = a.drift_for(0, 8);
        let db = b.drift_for(0, 8);
        assert!(da.iter().all(|d| d.abs() <= 0.5));
        assert_ne!(da, db, "different seeds must draw different drifts");
        assert_eq!(da, a.drift_for(0, 8), "drift draws must replay");
    }

    #[test]
    fn random_outages_fail_exactly_k_without_repeats() {
        for k in 0..=6 {
            let p = FaultPlan::random_outages(6, k, 42 + k as u64);
            assert_eq!(p.live_aps().len(), 6 - k);
        }
        // Different seeds pick different failure sets (with 6C2 = 15
        // choices, two fixed seeds colliding is possible but these don't).
        let a = FaultPlan::random_outages(6, 2, 1).live_aps();
        let b = FaultPlan::random_outages(6, 2, 4).live_aps();
        assert_ne!(a, b);
    }

    #[test]
    fn random_dead_elements_kills_dead_per_ap() {
        let p = FaultPlan::random_dead_elements(6, 8, 3, 5);
        for ap in 0..6 {
            let d = &p.ap(ap).dead_elements;
            assert_eq!(d.len(), 3);
            assert!(d.windows(2).all(|w| w[0] < w[1]), "sorted unique: {d:?}");
            assert!(d.iter().all(|&e| e < 8));
        }
    }

    #[test]
    #[should_panic(expected = "more APs than exist")]
    fn overfull_outage_rejected() {
        FaultPlan::random_outages(3, 4, 0);
    }
}
