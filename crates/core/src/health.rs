//! Per-AP health tracking and the typed error surface of the server's
//! degradation policy.
//!
//! The ArrayTrack server must keep localizing — with quantified, *tested*
//! degradation — while parts of the deployment misbehave. This module
//! supplies the two pieces the fused hot path needs:
//!
//! - [`HealthTracker`]: a consecutive-failure counter per AP, mapping
//!   acquisition outcomes to [`ApStatus`] under a [`HealthPolicy`]
//!   (healthy → degraded → down), plus spectrum-age staleness checks;
//! - [`LocalizeError`]: the typed errors the server returns instead of
//!   panicking when the deployment cannot support a fix (no observations,
//!   quorum not met, resolution mismatch, degenerate spectra).
//!
//! Policy semantics: a *down* or *stale* AP is excluded from fusion
//! entirely; a *degraded* AP stays in but its pseudospectrum is flattened
//! toward uniform by the policy's confidence exponent (see
//! [`crate::weighting::confidence_weighted`]), so it can still vote but
//! can no longer veto. If fewer than `min_quorum` APs survive the filter,
//! the server refuses to guess and returns
//! [`LocalizeError::QuorumNotMet`].

use std::fmt;

/// Health state of one AP, as seen by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApStatus {
    /// Fully trusted: spectra enter fusion at full weight.
    Healthy,
    /// Suspect (repeated acquisition failures): spectra enter fusion at
    /// the policy's reduced confidence weight.
    Degraded,
    /// Not trusted at all: excluded from fusion.
    Down,
}

/// Thresholds and weights of the degradation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Consecutive acquisition failures after which an AP is `Degraded`.
    pub degraded_after: u32,
    /// Consecutive acquisition failures after which an AP is `Down`.
    pub down_after: u32,
    /// Maximum spectrum age (in server refresh intervals) accepted into
    /// fusion; older spectra are treated as expired and dropped.
    pub max_spectrum_age: u64,
    /// Minimum number of APs that must survive filtering for the server
    /// to produce a fix.
    pub min_quorum: usize,
    /// Confidence exponent applied to a `Degraded` AP's spectrum
    /// (`1` = full trust, `0` = ignore; see
    /// [`crate::weighting::confidence_weighted`]).
    pub degraded_weight: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            degraded_after: 2,
            down_after: 5,
            max_spectrum_age: 3,
            min_quorum: 1,
            degraded_weight: 0.5,
        }
    }
}

impl HealthPolicy {
    /// Validates the policy's internal consistency.
    ///
    /// # Panics
    /// Panics if thresholds are inverted or the weight is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.degraded_after <= self.down_after,
            "an AP must degrade before it goes down"
        );
        assert!(
            (0.0..=1.0).contains(&self.degraded_weight),
            "confidence weight must be in [0, 1]"
        );
        assert!(self.min_quorum >= 1, "a fix needs at least one AP");
    }

    /// Status implied by a consecutive-failure count.
    pub fn status_for_failures(&self, consecutive_failures: u32) -> ApStatus {
        if consecutive_failures >= self.down_after {
            ApStatus::Down
        } else if consecutive_failures >= self.degraded_after {
            ApStatus::Degraded
        } else {
            ApStatus::Healthy
        }
    }

    /// Whether a spectrum of the given age is too old to fuse.
    pub fn is_stale(&self, age: u64) -> bool {
        age > self.max_spectrum_age
    }
}

/// Consecutive-failure tracking for every AP of a deployment.
#[derive(Clone, Debug, Default)]
pub struct HealthTracker {
    failures: Vec<u32>,
}

impl HealthTracker {
    /// A tracker for `n_aps` APs, all healthy.
    pub fn new(n_aps: usize) -> Self {
        Self {
            failures: vec![0; n_aps],
        }
    }

    /// Number of APs tracked.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether the tracker covers zero APs.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Grows the tracker to cover at least `n_aps` APs (new APs healthy).
    pub fn ensure_len(&mut self, n_aps: usize) {
        if self.failures.len() < n_aps {
            self.failures.resize(n_aps, 0);
        }
    }

    /// Records a successful spectrum acquisition from AP `ap`.
    pub fn report_success(&mut self, ap: usize) {
        self.ensure_len(ap + 1);
        if self.failures[ap] > 0 {
            at_obs::count!("at_ap_recoveries_total");
        }
        self.failures[ap] = 0;
    }

    /// Records a failed spectrum acquisition (missed detection, timeout,
    /// outage) from AP `ap`.
    pub fn report_failure(&mut self, ap: usize) {
        self.ensure_len(ap + 1);
        self.failures[ap] = self.failures[ap].saturating_add(1);
        at_obs::count!("at_ap_failures_total");
    }

    /// Current consecutive-failure count of AP `ap`.
    pub fn consecutive_failures(&self, ap: usize) -> u32 {
        self.failures.get(ap).copied().unwrap_or(0)
    }

    /// Current status of AP `ap` under `policy`.
    pub fn status(&self, ap: usize, policy: &HealthPolicy) -> ApStatus {
        policy.status_for_failures(self.consecutive_failures(ap))
    }

    /// Number of APs not `Down` under `policy`.
    pub fn available_aps(&self, policy: &HealthPolicy) -> usize {
        (0..self.failures.len())
            .filter(|&ap| self.status(ap, policy) != ApStatus::Down)
            .count()
    }

    /// Carries the tracker across a topology epoch: `old_to_new[i]` says
    /// which new AP id inherits old AP `i`'s failure count (`None` drops
    /// it — the AP departed or was moved/recalibrated). APs with no
    /// preimage (joiners, movers) start cold at zero failures — healthy,
    /// but with no spectra, so they surface through the existing
    /// `QuorumNotMet` path until they submit.
    pub fn remap(&mut self, old_to_new: &[Option<u32>], n_new: usize) {
        let mut next = vec![0u32; n_new];
        for (old, target) in old_to_new.iter().enumerate() {
            if let (Some(&count), Some(new)) = (self.failures.get(old), target) {
                if let Some(slot) = next.get_mut(*new as usize) {
                    *slot = count;
                }
            }
        }
        self.failures = next;
    }
}

/// Why the server could not produce a location fix. The hot loop returns
/// these instead of panicking: a degraded deployment is an expected
/// operating regime, not a programming error.
#[derive(Clone, Debug, PartialEq)]
pub enum LocalizeError {
    /// No observations were submitted at all.
    NoObservations,
    /// Fewer APs survived health/staleness filtering than the policy's
    /// quorum requires.
    QuorumNotMet {
        /// APs that survived filtering.
        available: usize,
        /// The policy's `min_quorum`.
        required: usize,
        /// Of the filtered-out APs, how many were dropped for staleness.
        stale: usize,
        /// Of the filtered-out APs, how many were dropped as down.
        down: usize,
        /// Of the filtered-out APs, how many had degenerate spectra.
        degenerate: usize,
    },
    /// An observation's spectrum resolution disagrees with the rest.
    ResolutionMismatch {
        /// Index of the offending observation.
        observation: usize,
        /// Its bin count.
        bins: usize,
        /// The bin count of the first observation.
        expected: usize,
    },
}

impl fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoObservations => write!(f, "need at least one AP observation"),
            Self::QuorumNotMet {
                available,
                required,
                stale,
                down,
                degenerate,
            } => write!(
                f,
                "quorum not met: {available} usable AP(s), {required} required \
                 ({stale} stale, {down} down, {degenerate} degenerate)"
            ),
            Self::ResolutionMismatch {
                observation,
                bins,
                expected,
            } => write!(
                f,
                "observation {observation} has {bins} spectrum bins, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for LocalizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_consistent() {
        HealthPolicy::default().validate();
    }

    #[test]
    fn status_thresholds() {
        let p = HealthPolicy::default();
        assert_eq!(p.status_for_failures(0), ApStatus::Healthy);
        assert_eq!(p.status_for_failures(1), ApStatus::Healthy);
        assert_eq!(p.status_for_failures(2), ApStatus::Degraded);
        assert_eq!(p.status_for_failures(4), ApStatus::Degraded);
        assert_eq!(p.status_for_failures(5), ApStatus::Down);
        assert_eq!(p.status_for_failures(u32::MAX), ApStatus::Down);
    }

    #[test]
    fn tracker_counts_consecutive_failures() {
        let p = HealthPolicy::default();
        let mut t = HealthTracker::new(3);
        assert_eq!(t.status(0, &p), ApStatus::Healthy);
        for _ in 0..5 {
            t.report_failure(1);
        }
        assert_eq!(t.status(1, &p), ApStatus::Down);
        assert_eq!(t.available_aps(&p), 2);
        // A success resets the streak entirely.
        t.report_success(1);
        assert_eq!(t.status(1, &p), ApStatus::Healthy);
        assert_eq!(t.available_aps(&p), 3);
        // Two failures → degraded but still available.
        t.report_failure(2);
        t.report_failure(2);
        assert_eq!(t.status(2, &p), ApStatus::Degraded);
        assert_eq!(t.available_aps(&p), 3);
    }

    #[test]
    fn tracker_grows_on_demand() {
        let mut t = HealthTracker::default();
        t.report_failure(4);
        assert_eq!(t.len(), 5);
        assert_eq!(t.consecutive_failures(4), 1);
        // Unknown APs read as healthy.
        assert_eq!(t.consecutive_failures(11), 0);
    }

    #[test]
    fn staleness_respects_max_age() {
        let p = HealthPolicy::default();
        assert!(!p.is_stale(0));
        assert!(!p.is_stale(3));
        assert!(p.is_stale(4));
    }

    #[test]
    fn errors_format_usefully() {
        let e = LocalizeError::QuorumNotMet {
            available: 1,
            required: 2,
            stale: 1,
            down: 3,
            degenerate: 0,
        };
        let s = e.to_string();
        assert!(s.contains("1 usable"));
        assert!(s.contains("2 required"));
        assert!(s.contains("3 down"));
        assert!(LocalizeError::NoObservations
            .to_string()
            .contains("at least one"));
    }

    #[test]
    #[should_panic(expected = "degrade before")]
    fn inverted_thresholds_rejected() {
        HealthPolicy {
            degraded_after: 6,
            down_after: 2,
            ..HealthPolicy::default()
        }
        .validate();
    }
}
