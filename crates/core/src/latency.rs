//! System latency accounting (paper §4.4, Fig. 21).
//!
//! The end-to-end latency from a frame hitting the air to a location
//! estimate decomposes into:
//!
//! | term | meaning                         | paper value            |
//! |------|---------------------------------|------------------------|
//! | `T`  | frame airtime                   | 222 µs – 12 ms         |
//! | `Td` | preamble detection              | 16 µs                  |
//! | `Tt` | WARP→PC serialization           | 2.56 ms at 1 Mbit/s    |
//! | `Tl` | WARP→PC bus latency             | ≈ 30 ms                |
//! | `Tp` | server-side processing          | ≈ 100 ms (Matlab/Xeon) |
//!
//! ArrayTrack only needs 10 preamble samples, so everything after `Td`
//! happens while the rest of the frame is still on the air; the added
//! latency from the end of the packet is `Td + Tt + Tl + Tp − T ≈ 100 ms`.
//!
//! # Model vs. measurement
//!
//! This module is the *prediction* side of the latency story; the
//! [`at_obs`] metrics layer is the *observation* side. The two meet in
//! [`LatencyModel::observed`], which fills `Td` and `Tp` from the
//! per-stage histograms the instrumented pipeline records
//! (`at_stage_seconds{stage=detect|spectrum|fusion}`, read out as an
//! [`at_obs::LatencyBudget`]) instead of assuming the paper's Matlab-era
//! numbers. The end-to-end test in `tests/obs_end_to_end.rs` asserts the
//! model's processing term agrees with wall-clock measurements of the same
//! stages within tolerance on the simulated testbed.

use at_obs::LatencyBudget;
use std::time::Duration;

/// Bits per complex sample shipped from AP to server (16-bit I + 16-bit Q).
pub const BITS_PER_SAMPLE: f64 = 32.0;

/// The latency budget of one ArrayTrack location fix.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Frame airtime `T`, seconds.
    pub airtime: f64,
    /// Preamble detection time `Td`, seconds (10 short + 2 long symbols).
    pub detection: f64,
    /// Sample serialization time `Tt`, seconds.
    pub transfer: f64,
    /// Bus latency `Tl`, seconds.
    pub bus: f64,
    /// Server processing time `Tp`, seconds.
    pub processing: f64,
}

impl LatencyModel {
    /// The paper's operating point for a given frame airtime and a measured
    /// (or assumed) processing time.
    pub fn paper_defaults(airtime: f64, processing: f64) -> Self {
        Self {
            airtime,
            detection: 16e-6,
            transfer: transfer_time(10, 8, 1.0e6),
            bus: 30e-3,
            processing,
        }
    }

    /// The paper's operating point with the detection and processing terms
    /// *measured* rather than assumed: `Td` from the observed preamble
    /// detection p50 and `Tp` from the observed spectrum + fusion p50s
    /// (an [`at_obs::LatencyBudget`], usually read from a live
    /// [`at_obs::MetricsSnapshot`] via [`LatencyBudget::from_snapshot`]).
    /// Transfer and bus terms keep the paper's WARP link values — the
    /// simulation has no serial link to measure.
    pub fn observed(airtime: f64, budget: &LatencyBudget) -> Self {
        Self {
            airtime,
            detection: budget.detect_ms * 1e-3,
            transfer: transfer_time(10, 8, 1.0e6),
            bus: 30e-3,
            processing: budget.processing_ms() * 1e-3,
        }
    }

    /// Total latency added beyond the end of the packet:
    /// `Td + Tt + Tl + Tp − T`, floored at zero (for very long frames the
    /// pipeline finishes before the frame does).
    pub fn added_latency(&self) -> Duration {
        let s =
            (self.detection + self.transfer + self.bus + self.processing - self.airtime).max(0.0);
        Duration::from_secs_f64(s)
    }

    /// Latency from the *start* of the frame (preamble arrival) to the fix.
    pub fn total_from_frame_start(&self) -> Duration {
        Duration::from_secs_f64(self.detection + self.transfer + self.bus + self.processing)
    }
}

/// Airtime of a frame of `bytes` payload at `rate_bps`, plus the 20 µs
/// PLCP preamble+header (§4.4 quotes 222 µs for 1500 B at 54 Mbit/s).
pub fn frame_airtime(bytes: usize, rate_bps: f64) -> f64 {
    assert!(rate_bps > 0.0);
    20e-6 + bytes as f64 * 8.0 / rate_bps
}

/// Serialization time for shipping `samples` complex samples from `radios`
/// radios over a link of `link_bps` (paper eq. in §4.4: 2.56 ms for
/// 10 samples × 8 radios over 1 Mbit/s).
pub fn transfer_time(samples: usize, radios: usize, link_bps: f64) -> f64 {
    assert!(link_bps > 0.0);
    samples as f64 * BITS_PER_SAMPLE * radios as f64 / link_bps
}

/// Network overhead of continuous ArrayTrack operation at a given refresh
/// interval (paper §4.3.3: 0.0256 Mbit/s for 10 samples, 8 radios, 100 ms).
pub fn traffic_bps(samples: usize, radios: usize, refresh_s: f64) -> f64 {
    assert!(refresh_s > 0.0);
    samples as f64 * BITS_PER_SAMPLE * radios as f64 / refresh_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_airtime_range_reproduced() {
        // ~222 µs for 1500 B at 54 Mbit/s; ~12 ms at 1 Mbit/s.
        let fast = frame_airtime(1500, 54e6);
        let slow = frame_airtime(1500, 1e6);
        assert!((fast - 222e-6).abs() < 30e-6, "{fast}");
        assert!((slow - 12e-3).abs() < 0.1e-3, "{slow}");
    }

    #[test]
    fn paper_transfer_time_reproduced() {
        // (10 samples)(32 bits)(8 radios) / 1 Mbit/s = 2.56 ms.
        let tt = transfer_time(10, 8, 1.0e6);
        assert!((tt - 2.56e-3).abs() < 1e-9, "{tt}");
    }

    #[test]
    fn paper_traffic_overhead_reproduced() {
        // 0.0256 Mbit/s at a 100 ms refresh interval.
        let bps = traffic_bps(10, 8, 0.100);
        assert!((bps - 25_600.0).abs() < 1e-6, "{bps}");
    }

    #[test]
    fn added_latency_near_100ms_at_paper_point() {
        // 1500 B at 54 Mbit/s with a 100 ms processing stage (Matlab-era).
        let m = LatencyModel::paper_defaults(frame_airtime(1500, 54e6), 100e-3);
        let added = m.added_latency().as_secs_f64();
        assert!((added - 0.1323).abs() < 0.003, "{added}");
        // The paper's ≈100 ms summary excludes the 30 ms bus latency
        // ("total latency that ArrayTrack adds ... (excluding bus latency)").
        let without_bus = added - m.bus;
        assert!((without_bus - 0.102).abs() < 0.003, "{without_bus}");
    }

    #[test]
    fn long_frames_hide_the_pipeline() {
        // A 12 ms frame at 1 Mbit/s still can't hide a 130 ms pipeline, but
        // a hypothetical long frame would floor at zero.
        let m = LatencyModel {
            airtime: 1.0,
            detection: 16e-6,
            transfer: 2.56e-3,
            bus: 30e-3,
            processing: 0.1,
        };
        assert_eq!(m.added_latency(), Duration::ZERO);
    }

    #[test]
    fn observed_model_mirrors_budget() {
        let budget = LatencyBudget {
            detect_ms: 0.02,
            spectrum_ms: 0.08,
            fusion_ms: 0.9,
        };
        let m = LatencyModel::observed(frame_airtime(1500, 54e6), &budget);
        assert!((m.detection - 20e-6).abs() < 1e-12);
        assert!((m.processing - 0.98e-3).abs() < 1e-12);
        // This repo's measured pipeline beats the paper's 100 ms Matlab
        // processing budget by orders of magnitude, so the added latency is
        // dominated by the (unchanged) transfer + bus model terms.
        let added = m.added_latency().as_secs_f64();
        let matlab = LatencyModel::paper_defaults(m.airtime, 100e-3)
            .added_latency()
            .as_secs_f64();
        assert!(added < matlab);
        // 1e-9 tolerance: `Duration` quantizes to whole nanoseconds.
        assert!(
            (added - (m.detection + m.transfer + m.bus + m.processing - m.airtime)).abs() < 1e-9
        );
    }

    #[test]
    fn total_from_frame_start_sums_stages() {
        let m = LatencyModel::paper_defaults(222e-6, 50e-3);
        let total = m.total_from_frame_start().as_secs_f64();
        assert!((total - (16e-6 + 2.56e-3 + 30e-3 + 50e-3)).abs() < 1e-12);
    }
}
