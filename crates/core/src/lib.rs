//! # at-core — the ArrayTrack algorithms
//!
//! The paper's primary contribution, as a library. The processing chain
//! (Figure 1) runs:
//!
//! 1. [`music`] — MUSIC pseudospectrum over the steering-vector continuum
//!    (§2.3.1, eqs. 4–6), with [`smoothing`] for coherent multipath
//!    (§2.3.2) and [`steering`] vectors matching the channel model;
//! 2. [`weighting`] — the array geometry window `W(θ)` (§2.3.3, eq. 7);
//! 3. [`symmetry`] — resolving the linear array's 180° ambiguity with the
//!    off-row ninth antenna (§2.3.4);
//! 4. [`suppression`] — multipath suppression across temporally adjacent
//!    frames (§2.4, Fig. 8);
//! 5. [`synthesis`] — the multi-AP likelihood product `L(x) = Π Pᵢ(θᵢ)`
//!    with 10 cm grid search and hill climbing (§2.5, eq. 8);
//!
//! plus [`sic`] for colliding packets (§4.3.5), [`latency`] for the §4.4
//! budget, and [`pipeline`] tying the stages into per-AP and server-side
//! entry points. [`spectrum`] defines the AoA spectrum type they all share.
//!
//! Deployments misbehave; [`faults`] describes seeded, deterministic fault
//! scenarios (AP outages, element dropout, calibration drift, missed
//! detections, stale spectra, noise spikes) and [`health`] supplies the
//! per-AP health tracking, quorum policy, and typed error surface the
//! server's graceful-degradation path is built on.
//!
//! Two performance layers keep query-scale operation fast without touching
//! the algorithms above: [`steering::SteeringTable`] caches the scan
//! steering vectors process-wide, and [`engine::LocalizationEngine`]
//! precomputes per-deployment bearing grids for coarse-to-fine synthesis
//! ([`parallel`] provides the thread fan-out both reuse).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elevation;
pub mod engine;
pub mod estimators;
pub mod faults;
pub mod health;
pub mod latency;
pub mod music;
pub mod parallel;
pub mod pipeline;
pub mod sic;
pub mod smoothing;
pub mod spectrum;
pub mod steering;
pub mod suppression;
pub mod symmetry;
pub mod synthesis;
pub mod tracking;
pub mod weighting;

pub use engine::{LocalizationEngine, LocalizeScratch};
pub use faults::{ApFaultProfile, FaultPlan};
pub use health::{ApStatus, HealthPolicy, HealthTracker, LocalizeError};
pub use music::{music_analysis, music_spectrum, MusicAnalysis, MusicConfig};
pub use parallel::parallel_map;
pub use pipeline::{
    execute_fusion, fuse_batch, fuse_batch_into, fuse_with_engine, fuse_with_scratch, plan_fusion,
    plan_fusion_indexed, process_frame, process_frame_group, ApPipelineConfig, ArrayTrackServer,
    FusedObservation, FusionPlan, FusionScratch,
};
pub use spectrum::{AoaSpectrum, Peak};
pub use suppression::{suppress_multipath, SuppressionConfig};
pub use synthesis::{
    heatmap, likelihood, localize, ApObservation, ApPose, Heatmap, LocationEstimate, SearchRegion,
};
pub use tracking::{Tracker, TrackerConfig};
