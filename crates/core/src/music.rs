//! The MUSIC AoA pseudospectrum (paper §2.3.1, eqs. 4–6).
//!
//! MUSIC splits the eigenvectors of the array correlation matrix into a
//! signal subspace (the `D` largest eigenvalues) and a noise subspace, then
//! scores each candidate bearing by how nearly its steering vector is
//! orthogonal to the noise subspace:
//!
//! ```text
//! P(θ) = 1 / (a(θ)ᴴ · E_N·E_Nᴴ · a(θ))
//! ```
//!
//! Spatial smoothing (§2.3.2) is applied to the correlation matrix first to
//! decorrelate coherent multipath; the paper's default is `NG = 2` groups.

use crate::smoothing::{spatial_smooth, spatial_smooth_fb};
use crate::spectrum::AoaSpectrum;
use crate::steering::SteeringTable;
use at_dsp::SnapshotBlock;
use at_linalg::{eigh, CMatrix, NoiseSubspace};
use std::borrow::Cow;
use std::f64::consts::TAU;

/// Configuration for the MUSIC estimator.
#[derive(Clone, Copy, Debug)]
pub struct MusicConfig {
    /// Angular bins over the full circle (720 ⇒ 0.5° resolution).
    pub bins: usize,
    /// Spatial smoothing groups `NG` (1 disables smoothing; paper uses 2).
    pub smoothing_groups: usize,
    /// Use forward–backward smoothing instead of forward-only (ablation
    /// extension; the paper uses forward-only).
    pub forward_backward: bool,
    /// Eigenvalues larger than this fraction of the largest are classified
    /// as signals (paper: "a threshold that is a fraction of the largest
    /// eigenvalue").
    pub eigenvalue_threshold: f64,
}

impl Default for MusicConfig {
    fn default() -> Self {
        Self {
            bins: 720,
            smoothing_groups: 2,
            forward_backward: false,
            eigenvalue_threshold: 0.1,
        }
    }
}

/// Diagnostic output of a MUSIC run.
#[derive(Clone, Debug)]
pub struct MusicAnalysis {
    /// The pseudospectrum over `[0, 2π)` (mirror-symmetric about the axis
    /// for a plain ULA).
    pub spectrum: AoaSpectrum,
    /// Eigenvalues of the (smoothed) correlation matrix, descending.
    pub eigenvalues: Vec<f64>,
    /// Estimated number of incoming signals `D`.
    pub signals: usize,
    /// Effective antennas after smoothing.
    pub effective_antennas: usize,
}

/// Runs MUSIC on a block of array snapshots from a λ/2 ULA whose rows are
/// in element order.
pub fn music_analysis(block: &SnapshotBlock, cfg: &MusicConfig) -> MusicAnalysis {
    music_analysis_from_rxx(&block.correlation_matrix(), cfg)
}

/// Runs MUSIC on a precomputed correlation matrix.
pub fn music_analysis_from_rxx(rxx: &CMatrix, cfg: &MusicConfig) -> MusicAnalysis {
    // Borrow the input when smoothing is off: the eigendecomposition only
    // needs a reference, so the no-smoothing path is copy-free.
    let smoothed: Cow<'_, CMatrix> = if cfg.smoothing_groups <= 1 {
        Cow::Borrowed(rxx)
    } else {
        let _t = at_obs::time_stage!(at_obs::stages::SMOOTHING);
        if cfg.forward_backward {
            Cow::Owned(spatial_smooth_fb(rxx, cfg.smoothing_groups))
        } else {
            Cow::Owned(spatial_smooth(rxx, cfg.smoothing_groups))
        }
    };
    let ms = smoothed.rows();
    assert!(ms >= 2, "need at least two effective antennas");

    let (noise, eigenvalues, d) = {
        let _t = at_obs::time_stage!(at_obs::stages::MUSIC_EIG);
        noise_subspace(&smoothed, cfg.eigenvalue_threshold)
    };

    // Pseudospectrum over [0, π], mirrored to the full circle (a plain ULA
    // cannot distinguish the sides; §2.3.4 handles that separately). The
    // shared table's split re/im slabs feed one batched
    // `aᴴ·E_N·E_Nᴴ·a` kernel call for the whole sweep — no per-bin
    // matrix–vector product or `CVector` temporaries.
    let table = SteeringTable::shared(ms, cfg.bins);
    let spectrum = {
        let _t = at_obs::time_stage!(at_obs::stages::MUSIC_SCAN);
        table.scan_projection(&noise)
    };

    MusicAnalysis {
        spectrum,
        eigenvalues,
        signals: d,
        effective_antennas: ms,
    }
}

/// Eigendecomposes a correlation matrix and extracts the noise subspace
/// `E_N` in SoA layout: returns `(E_N, eigenvalues, D)` with the source
/// count `D` clamped so at least one noise dimension remains (MUSIC needs a
/// noise subspace). Shared by the ULA and arbitrary-layout paths. The
/// projector `Q = E_N·E_Nᴴ` is never materialized — the scan evaluates
/// `aᴴ·Q·a = Σ_k |e_kᴴ·a|²` directly from the eigenvectors.
fn noise_subspace(rxx: &CMatrix, eigenvalue_threshold: f64) -> (NoiseSubspace, Vec<f64>, usize) {
    let ms = rxx.rows();
    let eig = eigh(rxx).expect("correlation matrices are Hermitian");
    let lmax = eig.eigenvalues[0].max(0.0);

    // Source count D: eigenvalues above the threshold fraction (paper's
    // "fraction of the largest eigenvalue" rule).
    let mut d = eig
        .eigenvalues
        .iter()
        .filter(|&&l| l > eigenvalue_threshold * lmax)
        .count()
        .max(1);
    if d >= ms {
        d = ms - 1;
    }

    let noise = NoiseSubspace::from_eigen(&eig, d);
    (noise, eig.eigenvalues, d)
}

/// Convenience wrapper returning just the pseudospectrum.
pub fn music_spectrum(block: &SnapshotBlock, cfg: &MusicConfig) -> AoaSpectrum {
    music_analysis(block, cfg).spectrum
}

/// MUSIC over an arbitrary element layout (e.g. the circular array of the
/// paper's §6 discussion), scanning the full circle with general steering
/// vectors — no mirror ambiguity, but also no subarray spatial smoothing
/// (shift invariance doesn't hold for non-linear layouts, so
/// `cfg.smoothing_groups` must be 1).
pub fn music_analysis_positions(
    rxx: &CMatrix,
    positions: &[at_channel::geometry::Point],
    cfg: &MusicConfig,
) -> MusicAnalysis {
    assert_eq!(rxx.rows(), positions.len(), "one position per antenna");
    assert!(
        cfg.smoothing_groups <= 1,
        "subarray smoothing requires a uniform linear array; use smoothing_groups = 1"
    );
    let ms = rxx.rows();
    assert!(ms >= 2, "need at least two antennas");
    let (noise, eigenvalues, d) = {
        let _t = at_obs::time_stage!(at_obs::stages::MUSIC_EIG);
        noise_subspace(rxx, cfg.eigenvalue_threshold)
    };
    let bins = cfg.bins;
    let values = (0..bins)
        .map(|i| {
            let theta = i as f64 * TAU / bins as f64;
            let a = crate::steering::general_steering(positions, theta);
            1.0 / noise.projection(&a).max(1e-12)
        })
        .collect();
    MusicAnalysis {
        spectrum: AoaSpectrum::from_values(values),
        eigenvalues,
        signals: d,
        effective_antennas: ms,
    }
}

/// Ground-truth-free helper: the bearing of the strongest spectrum peak.
pub fn strongest_bearing(spectrum: &AoaSpectrum) -> Option<f64> {
    spectrum.find_peaks(0.0).first().map(|p| p.theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::ula_steering;
    use at_channel::geometry::angle_diff;
    use at_dsp::awgn::NoiseSource;
    use at_linalg::{CVector, Complex64};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    /// Synthesizes `k` snapshots of independent sources at given bearings
    /// and SNRs for an `m`-element ULA.
    fn synth_block(
        m: usize,
        k: usize,
        sources: &[(f64, f64)], // (bearing rad, amplitude)
        noise_power: f64,
        seed: u64,
    ) -> SnapshotBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = NoiseSource::with_power(noise_power);
        let steering: Vec<CVector> = sources.iter().map(|(th, _)| ula_steering(m, *th)).collect();
        let mut streams = vec![Vec::with_capacity(k); m];
        for _t in 0..k {
            // Independent random source phases (incoherent sources).
            let coeffs: Vec<Complex64> = sources
                .iter()
                .map(|(_, amp)| {
                    Complex64::from_polar(*amp, rand::Rng::gen_range(&mut rng, 0.0..TAU))
                })
                .collect();
            for (mi, stream) in streams.iter_mut().enumerate() {
                let mut acc = noise.sample(&mut rng);
                for (s, c) in steering.iter().zip(&coeffs) {
                    acc += s[mi] * *c;
                }
                stream.push(acc);
            }
        }
        SnapshotBlock::new(streams)
    }

    #[test]
    fn single_source_peak_at_true_bearing() {
        for theta_deg in [30.0f64, 60.0, 90.0, 120.0, 155.0] {
            let theta = theta_deg.to_radians();
            let block = synth_block(8, 50, &[(theta, 1.0)], 0.01, 7);
            let cfg = MusicConfig::default();
            let spec = music_spectrum(&block, &cfg);
            let best = strongest_bearing(&spec).unwrap();
            // Mirror ambiguity: accept θ or 2π−θ.
            let err = angle_diff(best, theta).min(angle_diff(best, TAU - theta));
            assert!(err < 1.5f64.to_radians(), "θ={theta_deg}°: got {best}");
        }
    }

    #[test]
    fn two_incoherent_sources_resolved() {
        let t1 = 50f64.to_radians();
        let t2 = 110f64.to_radians();
        let block = synth_block(8, 100, &[(t1, 1.0), (t2, 0.8)], 0.01, 3);
        let cfg = MusicConfig {
            smoothing_groups: 1, // incoherent: no smoothing needed
            ..MusicConfig::default()
        };
        let analysis = music_analysis(&block, &cfg);
        assert_eq!(analysis.signals, 2, "{:?}", analysis.eigenvalues);
        let spec = analysis.spectrum;
        assert!(spec.has_peak_near(t1, 2.0f64.to_radians(), 0.05));
        assert!(spec.has_peak_near(t2, 2.0f64.to_radians(), 0.05));
    }

    #[test]
    fn coherent_multipath_needs_smoothing() {
        // Two fully coherent paths: without smoothing the spectrum is
        // distorted (peak offset / spurious); with NG=2..3 both true
        // bearings emerge. This is Fig. 7's story.
        let t1 = 70f64.to_radians();
        let t2 = 130f64.to_radians();
        let m = 8;
        let k = 20;
        // Coherent: same source phase each snapshot, fixed relative gain.
        let a1 = ula_steering(m, t1);
        let a2 = ula_steering(m, t2);
        let g2 = Complex64::from_polar(0.8, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let noise = NoiseSource::with_power(1e-4);
        let streams: Vec<Vec<Complex64>> = (0..m)
            .map(|mi| {
                (0..k)
                    .map(|_| a1[mi] + g2 * a2[mi] + noise.sample(&mut rng))
                    .collect()
            })
            .collect();
        let block = SnapshotBlock::new(streams);

        let smoothed = music_spectrum(
            &block,
            &MusicConfig {
                smoothing_groups: 3,
                ..MusicConfig::default()
            },
        );
        assert!(
            smoothed.has_peak_near(t1, 3.0f64.to_radians(), 0.03),
            "smoothed spectrum misses path 1"
        );
        assert!(
            smoothed.has_peak_near(t2, 3.0f64.to_radians(), 0.03),
            "smoothed spectrum misses path 2"
        );
    }

    #[test]
    fn spectrum_is_mirror_symmetric() {
        let block = synth_block(8, 30, &[(1.0, 1.0)], 0.01, 5);
        let spec = music_spectrum(&block, &MusicConfig::default());
        let n = spec.bins();
        for i in 1..n / 2 {
            let a = spec.values()[i];
            let b = spec.values()[n - i];
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "bin {i}");
        }
    }

    #[test]
    fn more_antennas_sharpen_the_peak() {
        let theta = 75f64.to_radians();
        // Half-power width saturates at one bin once the peak is sharp
        // enough, so compare the (normalized) spectrum mean too: a larger
        // aperture pushes the MUSIC noise floor further below the peak.
        let sharpness = |m: usize| {
            let block = synth_block(m, 50, &[(theta, 1.0)], 0.02, 9);
            let spec = music_spectrum(&block, &MusicConfig::default()).normalized();
            let width = spec.values().iter().filter(|&&v| v > 0.5).count();
            let mean = spec.values().iter().sum::<f64>() / spec.bins() as f64;
            (width, mean)
        };
        let (w4, m4) = sharpness(4);
        let (w8, m8) = sharpness(8);
        assert!(w8 <= w4, "8-antenna width {w8} > 4-antenna width {w4}");
        assert!(m8 < m4, "8-antenna floor {m8} !< 4-antenna floor {m4}");
    }

    #[test]
    fn low_snr_degrades_peak_sharpness() {
        // Fig. 20: spectra lose sharpness as SNR drops below 0 dB.
        let theta = 100f64.to_radians();
        let sharpness = |noise_power: f64| {
            let block = synth_block(8, 10, &[(theta, 1.0)], noise_power, 21);
            let spec = music_spectrum(&block, &MusicConfig::default()).normalized();
            // Peak-to-mean ratio as a sharpness proxy.
            let mean: f64 = spec.values().iter().sum::<f64>() / spec.bins() as f64;
            1.0 / mean
        };
        let high_snr = sharpness(0.01); // ~20 dB
        let low_snr = sharpness(3.0); // ~ −5 dB
        assert!(high_snr > 2.0 * low_snr, "high {high_snr} vs low {low_snr}");
    }

    #[test]
    fn signal_count_clamped_below_effective_antennas() {
        // All-signal input (huge SNR, many sources) must still leave a
        // noise dimension.
        let sources: Vec<(f64, f64)> = (1..8).map(|i| (i as f64 * PI / 8.0, 1.0)).collect();
        let block = synth_block(8, 200, &sources, 1e-6, 13);
        let analysis = music_analysis(
            &block,
            &MusicConfig {
                smoothing_groups: 1,
                eigenvalue_threshold: 1e-9,
                ..MusicConfig::default()
            },
        );
        assert!(analysis.signals < analysis.effective_antennas);
    }

    #[test]
    fn ten_samples_suffice_for_stability() {
        // §4.3.3: spectra stabilize around 5–10 samples.
        let theta = 60f64.to_radians();
        let block = synth_block(8, 10, &[(theta, 1.0)], 0.05, 17);
        let spec = music_spectrum(&block, &MusicConfig::default());
        let best = strongest_bearing(&spec).unwrap();
        let err = angle_diff(best, theta).min(angle_diff(best, TAU - theta));
        assert!(err < 2.0f64.to_radians());
    }
}
