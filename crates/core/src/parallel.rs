//! Minimal data-parallel helper shared by the localization engine and the
//! testbed's experiment sweeps.
//!
//! Pure CPU-bound fan-out over a slice with plain scoped threads — no
//! dependencies, no work queue. Items are split into one contiguous chunk
//! per worker, each worker writing results straight into its own disjoint
//! `chunks_mut` slice, so there is no per-element synchronization at all
//! (the previous implementation locked a `Mutex` around every output
//! slot). Static partitioning is the right trade here: the sweep items
//! (per-client captures, per-subset localizations, heatmap rows) have
//! near-uniform cost.

/// Runs `f` over `items` on up to `threads` OS threads and collects the
/// results in input order. `f` receives `(index, &item)`.
///
/// # Panics
/// Panics if `threads == 0`, or propagates a panic from `f`.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = ci * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j, &items[base + j]));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every chunk was filled"))
        .collect()
}

/// A sensible default worker count for compute-bound fan-out.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let par = parallel_map(&items, 8, |i, x| i as u64 + x * 3);
        let ser: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 + x * 3)
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn handles_edge_shapes() {
        assert_eq!(parallel_map(&[] as &[u8], 4, |_, x| *x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], 16, |_, x| *x as u32), vec![7]);
        // More threads than items, uneven chunks.
        let items: Vec<usize> = (0..5).collect();
        assert_eq!(parallel_map(&items, 3, |i, _| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        parallel_map(&[1], 0, |_, x| *x);
    }
}
