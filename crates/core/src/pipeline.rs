//! The per-AP processing pipeline and the ArrayTrack server.
//!
//! Mirrors Figure 1's information flow: captured snapshots → MUSIC AoA
//! spectrum (§2.3) with spatial smoothing (§2.3.2) → array geometry
//! weighting (§2.3.3) → array symmetry removal (§2.3.4) → multipath
//! suppression across frames (§2.4) → spectra synthesis across APs (§2.5).
//! Every stage can be toggled, which is how the evaluation's
//! optimized-vs-unoptimized comparisons (Figs. 13/15) and the ablation
//! bench are expressed.

use crate::engine::{LocalizationEngine, LocalizeScratch};
use crate::health::{ApStatus, HealthPolicy, HealthTracker, LocalizeError};
use crate::music::{music_analysis, MusicConfig};
use crate::spectrum::AoaSpectrum;
use crate::suppression::{suppress_multipath, SuppressionConfig};
use crate::symmetry::{remove_symmetry, resolve_mirror_peaks};
use crate::synthesis::{ApObservation, ApPose, LocationEstimate, SearchRegion};
use crate::weighting::{apply_geometry_weighting, confidence_weighted};
use at_dsp::SnapshotBlock;
use std::cell::RefCell;

/// How the §2.3.4 mirror ambiguity is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Leave the mirrored 360° spectrum as-is (the Fig. 13 baseline).
    Off,
    /// The paper's literal rule: zero the half-circle with less total
    /// power. Fragile in strong multipath (a ghost-side reflection can
    /// erase the direct path); kept for the ablation bench.
    WholeSide,
    /// Per-peak resolution from the off-row antenna's phase (the default;
    /// see `symmetry::resolve_mirror_peaks`).
    PerPeak,
}

/// Per-AP pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApPipelineConfig {
    /// Number of in-row array elements (the MUSIC aperture).
    pub elements: usize,
    /// MUSIC estimator settings.
    pub music: MusicConfig,
    /// Apply the `W(θ)` geometry window (§2.3.3).
    pub weighting: bool,
    /// Mirror-ambiguity handling (§2.3.4). Any mode other than `Off`
    /// requires blocks to carry `elements + 1` rows, the last being the
    /// off-row antenna.
    pub symmetry: SymmetryMode,
}

impl ApPipelineConfig {
    /// The paper's full ArrayTrack configuration for `elements` antennas.
    pub fn arraytrack(elements: usize) -> Self {
        Self {
            elements,
            music: MusicConfig::default(),
            weighting: true,
            symmetry: SymmetryMode::PerPeak,
        }
    }

    /// The "unoptimized raw AoA" configuration used as the baseline in
    /// Figs. 13/15: MUSIC + smoothing only.
    pub fn unoptimized(elements: usize) -> Self {
        Self {
            elements,
            music: MusicConfig::default(),
            weighting: false,
            symmetry: SymmetryMode::Off,
        }
    }

    /// Whether the capture must include the off-row antenna row.
    pub fn needs_offrow(&self) -> bool {
        self.symmetry != SymmetryMode::Off
    }
}

/// Processes one captured frame into an AoA spectrum.
///
/// The block must hold `elements` rows (plus one off-row row if symmetry
/// resolution is enabled).
pub fn process_frame(block: &SnapshotBlock, cfg: &ApPipelineConfig) -> AoaSpectrum {
    let _t = at_obs::time_stage!(at_obs::stages::SPECTRUM, "elements" => cfg.elements);
    let expected = cfg.elements + usize::from(cfg.needs_offrow());
    assert_eq!(
        block.antennas(),
        expected,
        "block has {} rows, config expects {expected}",
        block.antennas()
    );
    // MUSIC on the in-row antennas only.
    let inrow = if block.antennas() == cfg.elements {
        block.clone()
    } else {
        SnapshotBlock::new(
            (0..cfg.elements)
                .map(|m| block.stream(m).to_vec())
                .collect(),
        )
    };
    let mut spectrum = music_analysis(&inrow, &cfg.music).spectrum;
    if cfg.weighting {
        apply_geometry_weighting(&mut spectrum);
    }
    match cfg.symmetry {
        SymmetryMode::Off => {}
        SymmetryMode::WholeSide => {
            remove_symmetry(&mut spectrum, block, cfg.elements);
        }
        SymmetryMode::PerPeak => {
            resolve_mirror_peaks(&mut spectrum, block, cfg.elements);
        }
    }
    spectrum
}

/// Processes a group of temporally-adjacent frames from one client at one
/// AP: per-frame spectra, then multipath suppression (§2.4).
pub fn process_frame_group(
    blocks: &[SnapshotBlock],
    cfg: &ApPipelineConfig,
    suppression: &SuppressionConfig,
) -> AoaSpectrum {
    assert!(!blocks.is_empty(), "need at least one frame");
    let spectra: Vec<AoaSpectrum> = blocks.iter().map(|b| process_frame(b, cfg)).collect();
    suppress_multipath(&spectra, suppression)
}

/// One observation entering policy-gated fusion against a shared
/// [`LocalizationEngine`].
///
/// This is the engine-shared (and batchable) form of what
/// [`ArrayTrackServer::try_localize`] consumes internally: the networked
/// location service keeps *one* engine per deployment and runs every
/// query through [`plan_fusion`] / [`execute_fusion`], getting results
/// bit-identical to an in-process server built from the same
/// submissions.
#[derive(Clone, Copy, Debug)]
pub struct FusedObservation<'a> {
    /// Index of the producing AP in the engine's pose table.
    pub pose_idx: usize,
    /// The processed AoA spectrum.
    pub spectrum: &'a AoaSpectrum,
    /// Deployment AP identity for health lookups (`None` = anonymous,
    /// always trusted — the legacy `add_observation` path).
    pub ap_id: Option<usize>,
    /// Spectrum age in server refresh intervals (0 = fresh).
    pub age: u64,
}

/// The survivors of policy filtering, ready for [`execute_fusion`]:
/// indices into the planned observation slice plus their confidence
/// weights.
///
/// Reusable: [`plan_fusion_indexed`] clears and refills the same plan, so
/// a serving thread plans query after query without reallocating.
#[derive(Clone, Debug, Default)]
pub struct FusionPlan {
    picked: Vec<(usize, f64)>,
}

impl FusionPlan {
    /// An empty plan, ready for [`plan_fusion_indexed`] to fill.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations that survived filtering.
    pub fn fused(&self) -> usize {
        self.picked.len()
    }
}

/// Reusable workspace for one fusion query: the [`FusionPlan`], owned
/// storage for tempered (degraded-AP) spectra, and the engine's
/// [`LocalizeScratch`]. One of these per serving thread makes the warm
/// localize path allocation-free end to end.
#[derive(Clone, Debug, Default)]
pub struct FusionScratch {
    plan: FusionPlan,
    tempered: Vec<Option<AoaSpectrum>>,
    engine: LocalizeScratch,
}

impl FusionScratch {
    /// An empty workspace; it grows to the query shape on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static FUSION_SCRATCH: RefCell<FusionScratch> = RefCell::new(FusionScratch::new());
}

/// Runs `f` with the calling thread's default fusion workspace (the
/// pool behind the non-`_scratch` entry points). Falls back to a fresh
/// arena under re-entrancy rather than panicking.
fn with_fusion_scratch<R>(f: impl FnOnce(&mut FusionScratch) -> R) -> R {
    FUSION_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut FusionScratch::new()),
    })
}

/// Filters and weights `obs` under the degradation policy, without
/// touching an engine: resolution check against `expected_bins`, then the
/// stale / degenerate / down drops and degraded-AP tempering documented on
/// [`ArrayTrackServer::try_localize`], then the quorum gate.
///
/// Callers holding a deployment-wide engine pass `engine.bins()`;
/// [`ArrayTrackServer::try_localize`] passes its first observation's
/// resolution (identical semantics — its engine is built with that
/// resolution).
pub fn plan_fusion(
    obs: &[FusedObservation<'_>],
    expected_bins: usize,
    health: &HealthTracker,
    policy: &HealthPolicy,
) -> Result<FusionPlan, LocalizeError> {
    let mut plan = FusionPlan::new();
    plan_fusion_indexed(
        obs.len(),
        &|i| obs[i],
        expected_bins,
        health,
        policy,
        &mut plan,
    )?;
    Ok(plan)
}

/// The accessor-based, allocation-free core of [`plan_fusion`]:
/// observations are supplied as `get(i)` for `i < n` and the survivors
/// land in the caller's reusable `plan` (cleared first, even on error).
pub fn plan_fusion_indexed<'a, F>(
    n: usize,
    get: &F,
    expected_bins: usize,
    health: &HealthTracker,
    policy: &HealthPolicy,
    plan: &mut FusionPlan,
) -> Result<(), LocalizeError>
where
    F: Fn(usize) -> FusedObservation<'a>,
{
    plan.picked.clear();
    if n == 0 {
        return Err(LocalizeError::NoObservations);
    }
    for i in 0..n {
        let o = get(i);
        if o.spectrum.bins() != expected_bins {
            return Err(LocalizeError::ResolutionMismatch {
                observation: i,
                bins: o.spectrum.bins(),
                expected: expected_bins,
            });
        }
    }

    let (mut stale, mut down, mut degenerate) = (0usize, 0usize, 0usize);
    for i in 0..n {
        let o = get(i);
        if policy.is_stale(o.age) {
            stale += 1;
            at_obs::count!("at_observations_dropped_total", "reason" => "stale");
            continue;
        }
        if o.spectrum.max_value() == 0.0 {
            degenerate += 1;
            at_obs::count!("at_observations_dropped_total", "reason" => "degenerate");
            continue;
        }
        let status = o
            .ap_id
            .map_or(ApStatus::Healthy, |ap| health.status(ap, policy));
        match status {
            ApStatus::Down => {
                down += 1;
                at_obs::count!("at_observations_dropped_total", "reason" => "down");
            }
            ApStatus::Degraded => {
                at_obs::count!("at_observations_fused_total", "health" => "degraded");
                plan.picked.push((i, policy.degraded_weight));
            }
            ApStatus::Healthy => {
                at_obs::count!("at_observations_fused_total", "health" => "healthy");
                plan.picked.push((i, 1.0));
            }
        }
    }

    let required = policy.min_quorum.max(1);
    if plan.picked.len() < required {
        let available = plan.picked.len();
        plan.picked.clear();
        return Err(LocalizeError::QuorumNotMet {
            available,
            required,
            stale,
            down,
            degenerate,
        });
    }
    Ok(())
}

/// Runs a [`FusionPlan`]'s surviving observations through `engine`.
///
/// Tempered (degraded) spectra get owned storage; full-trust spectra are
/// borrowed as-is, so an all-healthy plan is byte-identical to calling
/// [`LocalizationEngine::localize`] on the raw spectra. Uses the calling
/// thread's pooled [`FusionScratch`]; repeat queries allocate nothing
/// beyond degraded-spectrum tempering.
pub fn execute_fusion(
    engine: &LocalizationEngine,
    obs: &[FusedObservation<'_>],
    plan: &FusionPlan,
) -> LocationEstimate {
    with_fusion_scratch(|scratch| {
        execute_plan(
            engine,
            &|i| obs[i],
            plan,
            &mut scratch.tempered,
            &mut scratch.engine,
        )
    })
}

/// The accessor-based core of [`execute_fusion`], writing through the
/// caller's tempering buffer and engine arena (split out of a
/// [`FusionScratch`] so the plan inside the same scratch can be borrowed
/// simultaneously).
fn execute_plan<'a, F>(
    engine: &LocalizationEngine,
    get: &F,
    plan: &FusionPlan,
    tempered: &mut Vec<Option<AoaSpectrum>>,
    engine_scratch: &mut LocalizeScratch,
) -> LocationEstimate
where
    F: Fn(usize) -> FusedObservation<'a>,
{
    tempered.clear();
    tempered.resize(plan.picked.len(), None);
    for (slot, &(i, w)) in tempered.iter_mut().zip(&plan.picked) {
        if w < 1.0 {
            *slot = Some(confidence_weighted(get(i).spectrum, w));
        }
    }
    let tempered: &[Option<AoaSpectrum>] = tempered;
    let get_spec = |j: usize| {
        let (i, _) = plan.picked[j];
        let o = get(i);
        (o.pose_idx, tempered[j].as_ref().unwrap_or(o.spectrum))
    };
    engine.localize_indexed(plan.picked.len(), &get_spec, engine_scratch)
}

/// [`plan_fusion`] + [`execute_fusion`] against a deployment-shared
/// engine — one networked localize query, on the calling thread's pooled
/// [`FusionScratch`].
pub fn fuse_with_engine(
    engine: &LocalizationEngine,
    obs: &[FusedObservation<'_>],
    health: &HealthTracker,
    policy: &HealthPolicy,
) -> Result<LocationEstimate, LocalizeError> {
    with_fusion_scratch(|scratch| fuse_with_scratch(engine, obs, health, policy, scratch))
}

/// [`fuse_with_engine`] with a caller-owned workspace: a serving worker
/// that keeps one [`FusionScratch`] per exec thread localizes with zero
/// heap allocations once the arena has warmed to the query shape.
pub fn fuse_with_scratch(
    engine: &LocalizationEngine,
    obs: &[FusedObservation<'_>],
    health: &HealthTracker,
    policy: &HealthPolicy,
    scratch: &mut FusionScratch,
) -> Result<LocationEstimate, LocalizeError> {
    let FusionScratch {
        plan,
        tempered,
        engine: engine_scratch,
    } = scratch;
    plan_fusion_indexed(obs.len(), &|i| obs[i], engine.bins(), health, policy, plan)?;
    Ok(execute_plan(
        engine,
        &|i| obs[i],
        plan,
        tempered,
        engine_scratch,
    ))
}

/// Batch-localize entry point: runs every query of `queries` through the
/// shared `engine` under one health snapshot, fanning out across up to
/// `threads` OS threads (the queries of a batch are independent).
///
/// This is what a serving layer's batch executor calls after coalescing
/// concurrent localize requests: engine caches stay hot across the whole
/// batch and per-query results are identical to calling
/// [`fuse_with_engine`] one query at a time.
pub fn fuse_batch(
    engine: &LocalizationEngine,
    queries: &[&[FusedObservation<'_>]],
    health: &HealthTracker,
    policy: &HealthPolicy,
    threads: usize,
) -> Vec<Result<LocationEstimate, LocalizeError>> {
    let mut out = Vec::with_capacity(queries.len());
    fuse_batch_into(engine, queries, health, policy, threads, &mut out);
    out
}

/// [`fuse_batch`] writing into a caller-reused results vector (cleared
/// first): the fully allocation-free batch path for a serving worker that
/// owns both its [`FusionScratch`] (via the thread pool) and its results
/// buffer. Single-threaded batches reuse the calling thread's scratch
/// across every query of the batch.
pub fn fuse_batch_into(
    engine: &LocalizationEngine,
    queries: &[&[FusedObservation<'_>]],
    health: &HealthTracker,
    policy: &HealthPolicy,
    threads: usize,
    out: &mut Vec<Result<LocationEstimate, LocalizeError>>,
) {
    out.clear();
    if queries.len() <= 1 || threads <= 1 {
        with_fusion_scratch(|scratch| {
            out.extend(
                queries
                    .iter()
                    .map(|q| fuse_with_scratch(engine, q, health, policy, scratch)),
            );
        });
        return;
    }
    out.extend(crate::parallel::parallel_map(queries, threads, |_, q| {
        fuse_with_engine(engine, q, health, policy)
    }));
}

/// Submission metadata carried alongside each observation: which
/// deployment AP produced it (for health tracking) and how old it is.
#[derive(Clone, Copy, Debug)]
struct ObservationMeta {
    /// Deployment AP index, when known. Anonymous observations (the legacy
    /// [`ArrayTrackServer::add_observation`] path) are always trusted.
    ap_id: Option<usize>,
    /// Spectrum age in server refresh intervals (0 = fresh).
    age: u64,
}

/// The central ArrayTrack server: accumulates per-AP spectra for a client
/// and produces a location estimate (Fig. 1's right half).
///
/// The server keeps a [`LocalizationEngine`] keyed to the current AP poses
/// and spectrum resolution: the first `localize` call after a deployment
/// change pays the bearing-grid precomputation, every later call (the
/// steady state — one query per client per refresh interval) reuses it.
///
/// # Graceful degradation
///
/// Production deployments lose APs, antennas, and calibration; the server
/// keeps localizing through [`ArrayTrackServer::try_localize`]:
///
/// - observations submitted with [`ArrayTrackServer::add_observation_from`]
///   carry an AP identity and age; acquisition failures reported through
///   [`ArrayTrackServer::report_acquisition_failure`] drive a per-AP
///   [`HealthTracker`] (healthy → degraded → down);
/// - fusion drops spectra that are stale (older than the
///   [`HealthPolicy`]'s `max_spectrum_age`), degenerate (all-zero), or
///   from a down AP, and *tempers* degraded APs' spectra with the
///   policy's confidence exponent ([`confidence_weighted`]) so they vote
///   but cannot veto;
/// - if fewer than `min_quorum` APs survive, the server returns a typed
///   [`LocalizeError`] instead of guessing or panicking.
///
/// With every AP healthy and fresh, `try_localize` takes exactly the same
/// engine path as [`ArrayTrackServer::localize`] — bit-identical results
/// (the robustness tier asserts this).
#[derive(Clone, Debug)]
pub struct ArrayTrackServer {
    observations: Vec<ApObservation>,
    meta: Vec<ObservationMeta>,
    region: SearchRegion,
    engine: RefCell<Option<LocalizationEngine>>,
    policy: HealthPolicy,
    health: HealthTracker,
}

impl ArrayTrackServer {
    /// A server searching the given region, with the default
    /// [`HealthPolicy`].
    pub fn new(region: SearchRegion) -> Self {
        Self {
            observations: Vec::new(),
            meta: Vec::new(),
            region,
            engine: RefCell::new(None),
            policy: HealthPolicy::default(),
            health: HealthTracker::default(),
        }
    }

    /// Overrides the degradation policy.
    ///
    /// # Panics
    /// Panics if the policy is internally inconsistent
    /// (see [`HealthPolicy::validate`]).
    pub fn with_policy(mut self, policy: HealthPolicy) -> Self {
        policy.validate();
        self.policy = policy;
        self
    }

    /// The active degradation policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Adds one AP's processed spectrum (anonymous and fresh: not subject
    /// to health tracking — the legacy single-shot path).
    pub fn add_observation(&mut self, pose: ApPose, spectrum: AoaSpectrum) {
        self.observations.push(ApObservation { pose, spectrum });
        self.meta.push(ObservationMeta {
            ap_id: None,
            age: 0,
        });
    }

    /// Adds a spectrum from deployment AP `ap_id`, `age` refresh intervals
    /// old, and records the successful acquisition in the health tracker.
    pub fn add_observation_from(
        &mut self,
        ap_id: usize,
        pose: ApPose,
        spectrum: AoaSpectrum,
        age: u64,
    ) {
        self.health.report_success(ap_id);
        self.observations.push(ApObservation { pose, spectrum });
        self.meta.push(ObservationMeta {
            ap_id: Some(ap_id),
            age,
        });
    }

    /// Records that spectrum acquisition from AP `ap_id` failed (missed
    /// preamble, timeout, outage). Repeated failures degrade and then
    /// exclude the AP per the [`HealthPolicy`].
    pub fn report_acquisition_failure(&mut self, ap_id: usize) {
        self.health.report_failure(ap_id);
    }

    /// The current health status of deployment AP `ap_id`.
    pub fn ap_status(&self, ap_id: usize) -> ApStatus {
        self.health.status(ap_id, &self.policy)
    }

    /// The per-AP health tracker.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Forgets all tracked failures (e.g. after a maintenance window).
    pub fn reset_health(&mut self) {
        self.health = HealthTracker::default();
    }

    /// Number of AP observations accumulated.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Clears accumulated observations (between clients). Health state is
    /// deliberately retained: AP failures persist across clients.
    pub fn clear(&mut self) {
        self.observations.clear();
        self.meta.clear();
    }

    /// Ensures the cached engine matches the current observation poses and
    /// `bins`, rebuilding it if the deployment changed.
    fn ensure_engine(&self, bins: usize) -> std::cell::RefMut<'_, Option<LocalizationEngine>> {
        let mut slot = self.engine.borrow_mut();
        let stale = match slot.as_ref() {
            Some(e) => {
                e.bins() != bins
                    || e.poses().len() != self.observations.len()
                    || e.poses()
                        .iter()
                        .zip(&self.observations)
                        .any(|(p, o)| *p != o.pose)
            }
            None => true,
        };
        if stale {
            let poses: Vec<ApPose> = self.observations.iter().map(|o| o.pose).collect();
            *slot = Some(LocalizationEngine::new(&poses, self.region, bins));
        }
        slot
    }

    /// Produces the location estimate from all accumulated observations.
    ///
    /// Reuses the cached [`LocalizationEngine`] when the AP poses and
    /// spectrum resolution are unchanged since the last call; otherwise
    /// rebuilds it first (the deployment changed).
    ///
    /// # Panics
    /// Panics if no observations were added.
    pub fn localize(&self) -> LocationEstimate {
        assert!(
            !self.observations.is_empty(),
            "need at least one AP observation"
        );
        let bins = self.observations[0].spectrum.bins();
        let slot = self.ensure_engine(bins);
        let engine = slot.as_ref().expect("engine was just built");
        crate::engine::with_default_scratch(|scratch| {
            engine.localize_indexed(
                self.observations.len(),
                &|i| (i, &self.observations[i].spectrum),
                scratch,
            )
        })
    }

    /// Produces a location estimate under the degradation policy, or a
    /// typed error when the surviving deployment cannot support one.
    ///
    /// Filtering and reweighting, in order:
    ///
    /// 1. every observation's resolution must agree
    ///    ([`LocalizeError::ResolutionMismatch`] otherwise — the typed
    ///    replacement for the engine's panic);
    /// 2. stale spectra (age > `max_spectrum_age`), all-zero spectra, and
    ///    spectra from down APs are dropped;
    /// 3. spectra from degraded APs are tempered by `degraded_weight`
    ///    (see [`confidence_weighted`]); healthy spectra pass untouched;
    /// 4. fewer than `min_quorum` survivors ⇒
    ///    [`LocalizeError::QuorumNotMet`].
    ///
    /// With all observations healthy and fresh this is exactly
    /// [`ArrayTrackServer::localize`] (same engine, same spectra).
    pub fn try_localize(&self) -> Result<LocationEstimate, LocalizeError> {
        let _t = at_obs::time_stage!(
            at_obs::stages::LOCALIZE,
            "observations" => self.observations.len(),
        );
        let result = self.try_localize_inner();
        match &result {
            Ok(_) => at_obs::count!("at_localize_total", "result" => "ok"),
            Err(e) => {
                at_obs::count!("at_localize_total", "result" => "error");
                match e {
                    LocalizeError::NoObservations => {
                        at_obs::count!("at_localize_errors_total", "kind" => "no_observations")
                    }
                    LocalizeError::QuorumNotMet { .. } => {
                        at_obs::count!("at_localize_errors_total", "kind" => "quorum_not_met")
                    }
                    LocalizeError::ResolutionMismatch { .. } => {
                        at_obs::count!("at_localize_errors_total", "kind" => "resolution_mismatch")
                    }
                }
            }
        }
        result
    }

    fn try_localize_inner(&self) -> Result<LocationEstimate, LocalizeError> {
        if self.observations.is_empty() {
            return Err(LocalizeError::NoObservations);
        }
        let bins = self.observations[0].spectrum.bins();
        // The engine's pose table mirrors the observation list, so each
        // observation's pose index is simply its position; observations
        // are read through an accessor so no query-shaped vector is built.
        let get = |i: usize| FusedObservation {
            pose_idx: i,
            spectrum: &self.observations[i].spectrum,
            ap_id: self.meta[i].ap_id,
            age: self.meta[i].age,
        };
        with_fusion_scratch(|scratch| {
            let FusionScratch {
                plan,
                tempered,
                engine: engine_scratch,
            } = scratch;
            // Plan first: a quorum failure must not pay an engine rebuild.
            plan_fusion_indexed(
                self.observations.len(),
                &get,
                bins,
                &self.health,
                &self.policy,
                plan,
            )?;
            let slot = self.ensure_engine(bins);
            let engine = slot.as_ref().expect("engine was just built");
            Ok(execute_plan(engine, &get, plan, tempered, engine_scratch))
        })
    }

    /// The accumulated observations (for heatmap rendering).
    pub fn observations(&self) -> &[ApObservation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::{angle_diff, pt};
    use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
    use at_dsp::preamble::{Preamble, LTS0_START_S};
    use at_linalg::Complex64;

    /// Captures a snapshot block for a client through the channel.
    fn capture(
        fp: &Floorplan,
        array: &AntennaArray,
        tx: &Transmitter,
        snapshots: usize,
    ) -> SnapshotBlock {
        let sim = ChannelSim::new(fp);
        let p = Preamble::new();
        let streams = sim.receive(
            tx,
            array,
            |t| p.eval(t),
            LTS0_START_S + 1.0e-6,
            snapshots as f64 / at_dsp::SAMPLE_RATE_HZ,
            at_dsp::SAMPLE_RATE_HZ,
        );
        SnapshotBlock::new(streams)
    }

    #[test]
    fn full_pipeline_points_at_client() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        let theta = 235f64.to_radians();
        let tx = Transmitter::at(array.point_at(theta, 9.0));
        let block = capture(&fp, &array, &tx, 10);
        let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        let best = spec.find_peaks(0.2)[0];
        assert!(
            angle_diff(best.theta, theta) < 3f64.to_radians(),
            "peak {} vs truth {theta}",
            best.theta
        );
        // The mirror lobe must be strongly attenuated (×0.1) by per-peak
        // symmetry resolution.
        assert!(!spec.has_peak_near(std::f64::consts::TAU - theta, 0.05, 0.15));
    }

    #[test]
    fn unoptimized_pipeline_keeps_mirror() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        let theta = 50f64.to_radians();
        let tx = Transmitter::at(array.point_at(theta, 9.0));
        let block = capture(&fp, &array, &tx, 10);
        let spec = process_frame(&block, &ApPipelineConfig::unoptimized(8));
        assert!(spec.has_peak_near(theta, 0.05, 0.3));
        assert!(spec.has_peak_near(std::f64::consts::TAU - theta, 0.05, 0.3));
    }

    #[test]
    fn frame_group_suppression_runs() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        let theta = 100f64.to_radians();
        let base = array.point_at(theta, 10.0);
        let blocks: Vec<SnapshotBlock> = [0.0, 0.03, 0.05]
            .iter()
            .map(|d| {
                let tx = Transmitter::at(pt(base.x + d, base.y));
                capture(&fp, &array, &tx, 10)
            })
            .collect();
        let spec = process_frame_group(
            &blocks,
            &ApPipelineConfig::arraytrack(8),
            &SuppressionConfig::default(),
        );
        assert!(spec.has_peak_near(theta, 3f64.to_radians(), 0.2));
    }

    #[test]
    fn server_end_to_end_free_space() {
        let fp = Floorplan::empty();
        let client = pt(6.0, 4.0);
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        for (center, axis) in poses {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let tx = Transmitter::at(client);
            let block = capture(&fp, &array, &tx, 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(
                ApPose {
                    center,
                    axis_angle: axis,
                },
                spec,
            );
        }
        assert_eq!(server.observation_count(), 3);
        let est = server.localize();
        assert!(
            est.position.distance(client) < 0.25,
            "estimate {:?} vs client {client:?}",
            est.position
        );
        server.clear();
        assert_eq!(server.observation_count(), 0);
    }

    #[test]
    fn server_rebuilds_engine_when_deployment_changes() {
        let fp = Floorplan::empty();
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        // First client: three APs.
        let client_a = pt(6.0, 4.0);
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        for (center, axis) in poses {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let block = capture(&fp, &array, &Transmitter::at(client_a), 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(
                ApPose {
                    center,
                    axis_angle: axis,
                },
                spec,
            );
        }
        assert!(server.localize().position.distance(client_a) < 0.25);
        // The deployment changes (new AP poses): the cached engine is
        // stale and must be rebuilt, not reused.
        server.clear();
        let client_b = pt(3.0, 6.0);
        for (center, axis) in [
            (pt(0.0, 8.0), 5.4),
            (pt(12.0, 8.0), 3.6),
            (pt(6.0, 0.0), 1.2),
        ] {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let block = capture(&fp, &array, &Transmitter::at(client_b), 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(
                ApPose {
                    center,
                    axis_angle: axis,
                },
                spec,
            );
        }
        let est = server.localize();
        assert!(
            est.position.distance(client_b) < 0.4,
            "stale engine reused? estimate {:?} vs client {client_b:?}",
            est.position
        );
    }

    #[test]
    #[should_panic(expected = "config expects")]
    fn wrong_row_count_panics() {
        let block = SnapshotBlock::new(vec![vec![Complex64::ONE; 4]; 8]);
        process_frame(&block, &ApPipelineConfig::arraytrack(8)); // wants 9 rows
    }

    /// A synthetic single-lobe spectrum pointing at `target` from `pose`.
    fn lobe_toward(pose: ApPose, target: at_channel::geometry::Point) -> AoaSpectrum {
        let theta = pose.bearing_to(target);
        AoaSpectrum::from_fn(720, |t| {
            (-(angle_diff(t, theta) / 0.08).powi(2)).exp() + 1e-6
        })
    }

    fn synthetic_server(target: at_channel::geometry::Point) -> ArrayTrackServer {
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        for (i, (center, axis)) in [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ]
        .into_iter()
        .enumerate()
        {
            let pose = ApPose {
                center,
                axis_angle: axis,
            };
            server.add_observation_from(i, pose, lobe_toward(pose, target), 0);
        }
        server
    }

    #[test]
    fn try_localize_matches_localize_when_all_healthy() {
        let target = pt(7.0, 3.0);
        let server = synthetic_server(target);
        let a = server.localize();
        let b = server.try_localize().expect("healthy deployment must fix");
        // Bit-identical: the all-healthy degradation path is the same
        // engine call on the same borrowed spectra.
        assert_eq!(a.position.x, b.position.x);
        assert_eq!(a.position.y, b.position.y);
        assert_eq!(a.likelihood, b.likelihood);
    }

    #[test]
    fn empty_server_returns_typed_error() {
        let server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(1.0, 1.0)));
        assert_eq!(
            server.try_localize(),
            Err(crate::health::LocalizeError::NoObservations)
        );
    }

    #[test]
    fn resolution_mismatch_is_typed_not_panic() {
        let target = pt(6.0, 4.0);
        let mut server = synthetic_server(target);
        let pose = ApPose {
            center: pt(3.0, 0.0),
            axis_angle: 1.0,
        };
        let odd = AoaSpectrum::from_fn(360, |_| 1.0);
        server.add_observation(pose, odd);
        match server.try_localize() {
            Err(crate::health::LocalizeError::ResolutionMismatch {
                observation,
                bins,
                expected,
            }) => {
                assert_eq!((observation, bins, expected), (3, 360, 720));
            }
            other => panic!("expected ResolutionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn down_aps_are_excluded_and_quorum_enforced() {
        let target = pt(5.0, 5.0);
        let mut server = synthetic_server(target).with_policy(crate::health::HealthPolicy {
            min_quorum: 2,
            ..Default::default()
        });
        // Kill APs 0 and 1 (5 consecutive failures each → Down).
        for _ in 0..5 {
            server.report_acquisition_failure(0);
            server.report_acquisition_failure(1);
        }
        assert_eq!(server.ap_status(0), crate::health::ApStatus::Down);
        match server.try_localize() {
            Err(crate::health::LocalizeError::QuorumNotMet {
                available,
                required,
                down,
                ..
            }) => {
                assert_eq!((available, required, down), (1, 2, 2));
            }
            other => panic!("expected QuorumNotMet, got {other:?}"),
        }
        // Recovery: a successful acquisition resets AP 0 and quorum is met.
        let pose = server.observations()[0].pose;
        let spec = server.observations()[0].spectrum.clone();
        server.add_observation_from(0, pose, spec, 0);
        let est = server.try_localize().expect("quorum restored");
        assert!(est.position.distance(target) < 0.3);
    }

    #[test]
    fn stale_spectra_are_dropped() {
        let target = pt(4.0, 3.0);
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        // All three spectra expired (age beyond the default max of 3).
        for (i, (center, axis)) in poses.into_iter().enumerate() {
            let pose = ApPose {
                center,
                axis_angle: axis,
            };
            server.add_observation_from(i, pose, lobe_toward(pose, target), 10);
        }
        match server.try_localize() {
            Err(crate::health::LocalizeError::QuorumNotMet { stale, .. }) => {
                assert_eq!(stale, 3);
            }
            other => panic!("expected QuorumNotMet, got {other:?}"),
        }
        // Refresh one: a single fresh AP meets the default quorum of 1.
        let pose = ApPose {
            center: pt(0.0, 0.0),
            axis_angle: 0.3,
        };
        server.add_observation_from(0, pose, lobe_toward(pose, target), 0);
        assert!(server.try_localize().is_ok());
    }

    #[test]
    fn degraded_ap_votes_but_cannot_veto() {
        let target = pt(6.0, 4.0);
        let mut server = synthetic_server(target);
        // AP 2 becomes degraded (2 failures), then submits a *hostile*
        // spectrum pointing somewhere else entirely.
        server.report_acquisition_failure(2);
        server.report_acquisition_failure(2);
        assert_eq!(server.ap_status(2), crate::health::ApStatus::Degraded);
        server.clear();
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        for (i, (center, axis)) in poses.into_iter().enumerate() {
            let pose = ApPose {
                center,
                axis_angle: axis,
            };
            let spec = if i == 2 {
                lobe_toward(pose, pt(1.0, 1.0)) // wrong target
            } else {
                lobe_toward(pose, target)
            };
            server.add_observation_from(i, pose, spec, 0);
        }
        let est = server.try_localize().expect("two healthy APs agree");
        assert!(
            est.position.distance(target) < 0.5,
            "tempered dissenter must not drag the fix: {:?}",
            est.position
        );
    }

    #[test]
    fn degenerate_spectra_are_dropped() {
        let target = pt(6.0, 4.0);
        let mut server = synthetic_server(target);
        let pose = ApPose {
            center: pt(3.0, 0.0),
            axis_angle: 1.0,
        };
        let mut dead = AoaSpectrum::from_fn(720, |_| 1.0);
        for v in dead.values_mut() {
            *v = 0.0;
        }
        server.add_observation(pose, dead);
        // The all-zero spectrum is dropped, the healthy three still fix.
        let est = server.try_localize().expect("healthy APs remain");
        assert!(est.position.distance(target) < 0.3);
    }

    #[test]
    fn shared_engine_fusion_matches_in_process_server() {
        // A deployment-wide engine over six poses, queried with a subset,
        // must produce the *same bits* as an in-process server that only
        // ever saw that subset — the invariant the networked service
        // relies on.
        let target = pt(7.0, 3.0);
        let all_poses: Vec<ApPose> = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
            (pt(0.0, 8.0), 5.2),
            (pt(12.0, 8.0), 3.7),
            (pt(6.0, 0.0), 1.1),
        ]
        .into_iter()
        .map(|(center, axis)| ApPose {
            center,
            axis_angle: axis,
        })
        .collect();
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0));
        let engine = LocalizationEngine::new(&all_poses, region, 720);

        // The subset query: deployment APs 0, 2, 4.
        let subset = [0usize, 2, 4];
        let spectra: Vec<AoaSpectrum> = subset
            .iter()
            .map(|&i| lobe_toward(all_poses[i], target))
            .collect();

        let mut server = ArrayTrackServer::new(region);
        for (k, &i) in subset.iter().enumerate() {
            server.add_observation_from(i, all_poses[i], spectra[k].clone(), 0);
        }
        let in_process = server.try_localize().expect("healthy subset");

        let fused: Vec<FusedObservation> = subset
            .iter()
            .zip(&spectra)
            .map(|(&i, s)| FusedObservation {
                pose_idx: i,
                spectrum: s,
                ap_id: Some(i),
                age: 0,
            })
            .collect();
        let health = HealthTracker::new(all_poses.len());
        let shared = fuse_with_engine(&engine, &fused, &health, &HealthPolicy::default())
            .expect("healthy subset");
        assert_eq!(in_process.position.x.to_bits(), shared.position.x.to_bits());
        assert_eq!(in_process.position.y.to_bits(), shared.position.y.to_bits());
        assert_eq!(in_process.likelihood.to_bits(), shared.likelihood.to_bits());

        // And the batch entry point agrees with the one-at-a-time path.
        let queries: Vec<&[FusedObservation]> = vec![&fused, &fused];
        let batch = fuse_batch(&engine, &queries, &health, &HealthPolicy::default(), 2);
        for r in batch {
            let est = r.expect("healthy batch");
            assert_eq!(est.position.x.to_bits(), shared.position.x.to_bits());
            assert_eq!(est.position.y.to_bits(), shared.position.y.to_bits());
        }
    }

    #[test]
    fn plan_fusion_surfaces_typed_errors() {
        let pose = ApPose {
            center: pt(0.0, 0.0),
            axis_angle: 0.0,
        };
        let spec = lobe_toward(pose, pt(3.0, 3.0));
        let policy = HealthPolicy::default();
        let health = HealthTracker::new(1);
        assert_eq!(
            plan_fusion(&[], 720, &health, &policy).unwrap_err(),
            crate::health::LocalizeError::NoObservations
        );
        let obs = [FusedObservation {
            pose_idx: 0,
            spectrum: &spec,
            ap_id: Some(0),
            age: 0,
        }];
        match plan_fusion(&obs, 360, &health, &policy) {
            Err(crate::health::LocalizeError::ResolutionMismatch {
                observation,
                bins,
                expected,
            }) => assert_eq!((observation, bins, expected), (0, 720, 360)),
            other => panic!("expected ResolutionMismatch, got {other:?}"),
        }
        // A stale-only submission fails quorum with the stale count.
        let stale_obs = [FusedObservation { age: 99, ..obs[0] }];
        match plan_fusion(&stale_obs, 720, &health, &policy) {
            Err(crate::health::LocalizeError::QuorumNotMet { stale, .. }) => {
                assert_eq!(stale, 1)
            }
            other => panic!("expected QuorumNotMet, got {other:?}"),
        }
    }

    #[test]
    fn health_survives_clear_but_not_reset() {
        let mut server = synthetic_server(pt(5.0, 4.0));
        for _ in 0..5 {
            server.report_acquisition_failure(1);
        }
        server.clear();
        assert_eq!(server.ap_status(1), crate::health::ApStatus::Down);
        server.reset_health();
        assert_eq!(server.ap_status(1), crate::health::ApStatus::Healthy);
    }
}
