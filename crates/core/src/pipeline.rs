//! The per-AP processing pipeline and the ArrayTrack server.
//!
//! Mirrors Figure 1's information flow: captured snapshots → MUSIC AoA
//! spectrum (§2.3) with spatial smoothing (§2.3.2) → array geometry
//! weighting (§2.3.3) → array symmetry removal (§2.3.4) → multipath
//! suppression across frames (§2.4) → spectra synthesis across APs (§2.5).
//! Every stage can be toggled, which is how the evaluation's
//! optimized-vs-unoptimized comparisons (Figs. 13/15) and the ablation
//! bench are expressed.

use crate::engine::LocalizationEngine;
use crate::music::{music_analysis, MusicConfig};
use crate::spectrum::AoaSpectrum;
use crate::suppression::{suppress_multipath, SuppressionConfig};
use crate::symmetry::{remove_symmetry, resolve_mirror_peaks};
use crate::synthesis::{ApObservation, ApPose, LocationEstimate, SearchRegion};
use crate::weighting::apply_geometry_weighting;
use at_dsp::SnapshotBlock;
use std::cell::RefCell;

/// How the §2.3.4 mirror ambiguity is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Leave the mirrored 360° spectrum as-is (the Fig. 13 baseline).
    Off,
    /// The paper's literal rule: zero the half-circle with less total
    /// power. Fragile in strong multipath (a ghost-side reflection can
    /// erase the direct path); kept for the ablation bench.
    WholeSide,
    /// Per-peak resolution from the off-row antenna's phase (the default;
    /// see `symmetry::resolve_mirror_peaks`).
    PerPeak,
}

/// Per-AP pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApPipelineConfig {
    /// Number of in-row array elements (the MUSIC aperture).
    pub elements: usize,
    /// MUSIC estimator settings.
    pub music: MusicConfig,
    /// Apply the `W(θ)` geometry window (§2.3.3).
    pub weighting: bool,
    /// Mirror-ambiguity handling (§2.3.4). Any mode other than `Off`
    /// requires blocks to carry `elements + 1` rows, the last being the
    /// off-row antenna.
    pub symmetry: SymmetryMode,
}

impl ApPipelineConfig {
    /// The paper's full ArrayTrack configuration for `elements` antennas.
    pub fn arraytrack(elements: usize) -> Self {
        Self {
            elements,
            music: MusicConfig::default(),
            weighting: true,
            symmetry: SymmetryMode::PerPeak,
        }
    }

    /// The "unoptimized raw AoA" configuration used as the baseline in
    /// Figs. 13/15: MUSIC + smoothing only.
    pub fn unoptimized(elements: usize) -> Self {
        Self {
            elements,
            music: MusicConfig::default(),
            weighting: false,
            symmetry: SymmetryMode::Off,
        }
    }

    /// Whether the capture must include the off-row antenna row.
    pub fn needs_offrow(&self) -> bool {
        self.symmetry != SymmetryMode::Off
    }
}

/// Processes one captured frame into an AoA spectrum.
///
/// The block must hold `elements` rows (plus one off-row row if symmetry
/// resolution is enabled).
pub fn process_frame(block: &SnapshotBlock, cfg: &ApPipelineConfig) -> AoaSpectrum {
    let expected = cfg.elements + usize::from(cfg.needs_offrow());
    assert_eq!(
        block.antennas(),
        expected,
        "block has {} rows, config expects {expected}",
        block.antennas()
    );
    // MUSIC on the in-row antennas only.
    let inrow = if block.antennas() == cfg.elements {
        block.clone()
    } else {
        SnapshotBlock::new(
            (0..cfg.elements)
                .map(|m| block.stream(m).to_vec())
                .collect(),
        )
    };
    let mut spectrum = music_analysis(&inrow, &cfg.music).spectrum;
    if cfg.weighting {
        apply_geometry_weighting(&mut spectrum);
    }
    match cfg.symmetry {
        SymmetryMode::Off => {}
        SymmetryMode::WholeSide => {
            remove_symmetry(&mut spectrum, block, cfg.elements);
        }
        SymmetryMode::PerPeak => {
            resolve_mirror_peaks(&mut spectrum, block, cfg.elements);
        }
    }
    spectrum
}

/// Processes a group of temporally-adjacent frames from one client at one
/// AP: per-frame spectra, then multipath suppression (§2.4).
pub fn process_frame_group(
    blocks: &[SnapshotBlock],
    cfg: &ApPipelineConfig,
    suppression: &SuppressionConfig,
) -> AoaSpectrum {
    assert!(!blocks.is_empty(), "need at least one frame");
    let spectra: Vec<AoaSpectrum> = blocks.iter().map(|b| process_frame(b, cfg)).collect();
    suppress_multipath(&spectra, suppression)
}

/// The central ArrayTrack server: accumulates per-AP spectra for a client
/// and produces a location estimate (Fig. 1's right half).
///
/// The server keeps a [`LocalizationEngine`] keyed to the current AP poses
/// and spectrum resolution: the first `localize` call after a deployment
/// change pays the bearing-grid precomputation, every later call (the
/// steady state — one query per client per refresh interval) reuses it.
#[derive(Clone, Debug)]
pub struct ArrayTrackServer {
    observations: Vec<ApObservation>,
    region: SearchRegion,
    engine: RefCell<Option<LocalizationEngine>>,
}

impl ArrayTrackServer {
    /// A server searching the given region.
    pub fn new(region: SearchRegion) -> Self {
        Self {
            observations: Vec::new(),
            region,
            engine: RefCell::new(None),
        }
    }

    /// Adds one AP's processed spectrum.
    pub fn add_observation(&mut self, pose: ApPose, spectrum: AoaSpectrum) {
        self.observations.push(ApObservation { pose, spectrum });
    }

    /// Number of AP observations accumulated.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Clears accumulated observations (between clients).
    pub fn clear(&mut self) {
        self.observations.clear();
    }

    /// Produces the location estimate from all accumulated observations.
    ///
    /// Reuses the cached [`LocalizationEngine`] when the AP poses and
    /// spectrum resolution are unchanged since the last call; otherwise
    /// rebuilds it first (the deployment changed).
    ///
    /// # Panics
    /// Panics if no observations were added.
    pub fn localize(&self) -> LocationEstimate {
        assert!(
            !self.observations.is_empty(),
            "need at least one AP observation"
        );
        let bins = self.observations[0].spectrum.bins();
        let mut slot = self.engine.borrow_mut();
        let stale = match slot.as_ref() {
            Some(e) => {
                e.bins() != bins
                    || e.poses().len() != self.observations.len()
                    || e.poses()
                        .iter()
                        .zip(&self.observations)
                        .any(|(p, o)| *p != o.pose)
            }
            None => true,
        };
        if stale {
            let poses: Vec<ApPose> = self.observations.iter().map(|o| o.pose).collect();
            *slot = Some(LocalizationEngine::new(&poses, self.region, bins));
        }
        let engine = slot.as_ref().expect("engine was just built");
        let obs: Vec<(usize, &AoaSpectrum)> = self
            .observations
            .iter()
            .enumerate()
            .map(|(i, o)| (i, &o.spectrum))
            .collect();
        engine.localize(&obs)
    }

    /// The accumulated observations (for heatmap rendering).
    pub fn observations(&self) -> &[ApObservation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::{angle_diff, pt};
    use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
    use at_dsp::preamble::{Preamble, LTS0_START_S};
    use at_linalg::Complex64;

    /// Captures a snapshot block for a client through the channel.
    fn capture(
        fp: &Floorplan,
        array: &AntennaArray,
        tx: &Transmitter,
        snapshots: usize,
    ) -> SnapshotBlock {
        let sim = ChannelSim::new(fp);
        let p = Preamble::new();
        let streams = sim.receive(
            tx,
            array,
            |t| p.eval(t),
            LTS0_START_S + 1.0e-6,
            snapshots as f64 / at_dsp::SAMPLE_RATE_HZ,
            at_dsp::SAMPLE_RATE_HZ,
        );
        SnapshotBlock::new(streams)
    }

    #[test]
    fn full_pipeline_points_at_client() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        let theta = 235f64.to_radians();
        let tx = Transmitter::at(array.point_at(theta, 9.0));
        let block = capture(&fp, &array, &tx, 10);
        let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        let best = spec.find_peaks(0.2)[0];
        assert!(
            angle_diff(best.theta, theta) < 3f64.to_radians(),
            "peak {} vs truth {theta}",
            best.theta
        );
        // The mirror lobe must be strongly attenuated (×0.1) by per-peak
        // symmetry resolution.
        assert!(!spec.has_peak_near(std::f64::consts::TAU - theta, 0.05, 0.15));
    }

    #[test]
    fn unoptimized_pipeline_keeps_mirror() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        let theta = 50f64.to_radians();
        let tx = Transmitter::at(array.point_at(theta, 9.0));
        let block = capture(&fp, &array, &tx, 10);
        let spec = process_frame(&block, &ApPipelineConfig::unoptimized(8));
        assert!(spec.has_peak_near(theta, 0.05, 0.3));
        assert!(spec.has_peak_near(std::f64::consts::TAU - theta, 0.05, 0.3));
    }

    #[test]
    fn frame_group_suppression_runs() {
        let fp = Floorplan::empty();
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        let theta = 100f64.to_radians();
        let base = array.point_at(theta, 10.0);
        let blocks: Vec<SnapshotBlock> = [0.0, 0.03, 0.05]
            .iter()
            .map(|d| {
                let tx = Transmitter::at(pt(base.x + d, base.y));
                capture(&fp, &array, &tx, 10)
            })
            .collect();
        let spec = process_frame_group(
            &blocks,
            &ApPipelineConfig::arraytrack(8),
            &SuppressionConfig::default(),
        );
        assert!(spec.has_peak_near(theta, 3f64.to_radians(), 0.2));
    }

    #[test]
    fn server_end_to_end_free_space() {
        let fp = Floorplan::empty();
        let client = pt(6.0, 4.0);
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        for (center, axis) in poses {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let tx = Transmitter::at(client);
            let block = capture(&fp, &array, &tx, 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(
                ApPose {
                    center,
                    axis_angle: axis,
                },
                spec,
            );
        }
        assert_eq!(server.observation_count(), 3);
        let est = server.localize();
        assert!(
            est.position.distance(client) < 0.25,
            "estimate {:?} vs client {client:?}",
            est.position
        );
        server.clear();
        assert_eq!(server.observation_count(), 0);
    }

    #[test]
    fn server_rebuilds_engine_when_deployment_changes() {
        let fp = Floorplan::empty();
        let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
        // First client: three APs.
        let client_a = pt(6.0, 4.0);
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(12.0, 0.0), 2.0),
            (pt(6.0, 8.0), 4.5),
        ];
        for (center, axis) in poses {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let block = capture(&fp, &array, &Transmitter::at(client_a), 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(ApPose { center, axis_angle: axis }, spec);
        }
        assert!(server.localize().position.distance(client_a) < 0.25);
        // The deployment changes (new AP poses): the cached engine is
        // stale and must be rebuilt, not reused.
        server.clear();
        let client_b = pt(3.0, 6.0);
        for (center, axis) in [
            (pt(0.0, 8.0), 5.4),
            (pt(12.0, 8.0), 3.6),
            (pt(6.0, 0.0), 1.2),
        ] {
            let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
            let block = capture(&fp, &array, &Transmitter::at(client_b), 10);
            let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
            server.add_observation(ApPose { center, axis_angle: axis }, spec);
        }
        let est = server.localize();
        assert!(
            est.position.distance(client_b) < 0.4,
            "stale engine reused? estimate {:?} vs client {client_b:?}",
            est.position
        );
    }

    #[test]
    #[should_panic(expected = "config expects")]
    fn wrong_row_count_panics() {
        let block = SnapshotBlock::new(vec![vec![Complex64::ONE; 4]; 8]);
        process_frame(&block, &ApPipelineConfig::arraytrack(8)); // wants 9 rows
    }
}
