//! Collision handling via successive interference cancellation (§4.3.5).
//!
//! When two packets collide, ArrayTrack still recovers AoA for both as long
//! as their *preambles* don't overlap: the first packet's preamble is clean
//! (only its own bearings), while the second packet's preamble overlaps the
//! first packet's body — so its AoA spectrum contains both packets'
//! bearings. Removing the first spectrum's peaks from the second isolates
//! the second client ("a form of successive interference cancellation").

use crate::music::{music_spectrum, MusicConfig};
use crate::spectrum::AoaSpectrum;
use crate::suppression::SuppressionConfig;
use at_dsp::detector::MatchedFilter;
use at_dsp::{Preamble, SnapshotBlock};
use at_linalg::Complex64;

/// Result of AoA extraction from a two-packet collision.
#[derive(Clone, Debug)]
pub struct CollisionAoa {
    /// AoA spectrum of the first (earlier) packet.
    pub first: AoaSpectrum,
    /// AoA spectrum of the second packet after removing the first packet's
    /// peaks.
    pub second: AoaSpectrum,
    /// Detected preamble start offsets (samples) for both packets.
    pub starts: (usize, usize),
}

/// Errors from collision processing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SicError {
    /// Fewer than two preambles were detected in the capture.
    NotEnoughDetections(usize),
    /// The two detected preambles overlap (the ~0.6 % case for 1000-byte
    /// packets the paper quantifies): AoA cannot be separated.
    PreamblesOverlap,
}

impl std::fmt::Display for SicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SicError::NotEnoughDetections(n) => {
                write!(f, "expected two preamble detections, found {n}")
            }
            SicError::PreamblesOverlap => write!(f, "the colliding preambles overlap"),
        }
    }
}

impl std::error::Error for SicError {}

/// Configuration for the collision pipeline.
#[derive(Clone, Debug)]
pub struct SicConfig {
    /// MUSIC settings for both spectra.
    pub music: MusicConfig,
    /// Peak matching settings for the cancellation step.
    pub suppression: SuppressionConfig,
    /// Matched-filter detection threshold.
    pub detect_threshold: f64,
    /// Snapshot count per spectrum (paper default: 10).
    pub snapshots: usize,
    /// Offset into the detected preamble where snapshots are taken. Chosen
    /// inside the short-training section by default.
    pub snapshot_offset: usize,
}

impl Default for SicConfig {
    fn default() -> Self {
        Self {
            music: MusicConfig::default(),
            suppression: SuppressionConfig::default(),
            detect_threshold: 0.15,
            snapshots: 10,
            snapshot_offset: 40,
        }
    }
}

/// Extracts AoA spectra for two colliding packets from per-antenna streams.
///
/// `streams[m]` is antenna `m`'s capture covering both packets. Detection
/// runs on antenna 0 (the paper detects once in hardware); the snapshot
/// blocks for MUSIC are cut from every antenna at the detected offsets.
pub fn process_collision(
    streams: &[Vec<Complex64>],
    sample_rate: f64,
    cfg: &SicConfig,
) -> Result<CollisionAoa, SicError> {
    let preamble = Preamble::new();
    let mf = MatchedFilter::new(&preamble, sample_rate).with_threshold(cfg.detect_threshold);
    let mut detections = mf.detect_all(&streams[0]);
    // Genuine preambles correlate near 1 while data-body artifacts sit far
    // lower; keep only detections within 2× of the strongest so artifacts
    // don't masquerade as a second packet.
    let strongest = detections.iter().map(|d| d.metric).fold(0.0f64, f64::max);
    detections.retain(|d| d.metric >= 0.5 * strongest);
    if detections.len() < 2 {
        return Err(SicError::NotEnoughDetections(detections.len()));
    }
    let first = detections[0].start;
    let second = detections[1].start;
    let preamble_len = mf.reference_len();
    if second < first + preamble_len {
        return Err(SicError::PreamblesOverlap);
    }

    let cut = |start: usize| -> SnapshotBlock {
        SnapshotBlock::new(
            streams
                .iter()
                .map(|s| {
                    s[start + cfg.snapshot_offset..start + cfg.snapshot_offset + cfg.snapshots]
                        .to_vec()
                })
                .collect(),
        )
    };

    let spec1 = music_spectrum(&cut(first), &cfg.music);
    let mut spec2 = music_spectrum(&cut(second), &cfg.music);

    // Remove the first packet's peaks from the second packet's spectrum.
    for peak in spec1.find_peaks(cfg.suppression.peak_threshold) {
        if spec2.has_peak_near(
            peak.theta,
            cfg.suppression.match_tolerance,
            cfg.suppression.peak_threshold,
        ) {
            spec2.remove_peak(peak.theta);
        }
    }

    Ok(CollisionAoa {
        first: spec1,
        second: spec2,
        starts: (first, second),
    })
}

/// Probability that two colliding packets have overlapping preambles, given
/// the packet airtime and preamble duration — the paper's 0.6 % estimate
/// for 1000-byte packets: `preamble / airtime`.
pub fn preamble_collision_probability(airtime_s: f64, preamble_s: f64) -> f64 {
    assert!(airtime_s > 0.0 && preamble_s > 0.0);
    (preamble_s / airtime_s).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_dsp::preamble::PREAMBLE_S;

    #[test]
    fn paper_collision_probability_reproduced() {
        // The paper quotes ~0.6 % preamble-collision odds for two 1000-byte
        // packets; that ratio corresponds to a ≈2.7 ms frame airtime
        // (1000 B at ~3 Mbit/s effective). Verify the helper reproduces the
        // quoted probability at that operating point and scales correctly.
        let airtime = PREAMBLE_S / 0.006;
        let p = preamble_collision_probability(airtime, PREAMBLE_S);
        assert!((p - 0.006).abs() < 1e-9, "p = {p}");
        // Longer frames make preamble collisions rarer.
        assert!(preamble_collision_probability(airtime * 2.0, PREAMBLE_S) < p);
    }

    #[test]
    fn probability_saturates_at_one() {
        assert_eq!(preamble_collision_probability(1e-6, 1.0), 1.0);
    }

    #[test]
    fn not_enough_detections_error() {
        let streams = vec![vec![Complex64::ZERO; 4000]];
        let err =
            process_collision(&streams, at_dsp::SAMPLE_RATE_HZ, &SicConfig::default()).unwrap_err();
        assert_eq!(err, SicError::NotEnoughDetections(0));
    }

    // Full end-to-end collision tests (two clients through the channel
    // simulator) live in the integration suite and the exp_collision_sic
    // experiment binary; here we cover the pure-logic error paths.
}
