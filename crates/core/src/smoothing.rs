//! Spatial smoothing for coherent multipath (paper §2.3.2, Figs. 6–7).
//!
//! Indoor multipath copies are *coherent* — phase-locked replicas of one
//! transmitted signal — which collapses the source correlation matrix `Rss`
//! to rank one and breaks MUSIC's subspace split. Shan, Wax & Kailath's
//! spatial smoothing (the paper's reference [28]) restores rank by
//! averaging the covariance of `NG` overlapping subarrays of size
//! `M − NG + 1`, at the cost of that many effective antennas.

use at_linalg::CMatrix;

/// Forward spatial smoothing of an `M×M` array correlation matrix over
/// `groups` subarrays.
///
/// Returns the `(M−groups+1)`-dimensional smoothed matrix
/// `R̄ = (1/NG) Σ_g R[g..g+Ms, g..g+Ms]`.
///
/// # Panics
/// Panics if `groups == 0` or `groups >= M` (at least a 2-element subarray
/// must remain).
pub fn spatial_smooth(rxx: &CMatrix, groups: usize) -> CMatrix {
    assert!(rxx.is_square(), "correlation matrix must be square");
    let m = rxx.rows();
    assert!(groups >= 1, "need at least one group");
    assert!(
        m > groups,
        "smoothing {m} antennas over {groups} groups leaves no usable subarray"
    );
    let ms = m - groups + 1;
    let mut acc = CMatrix::zeros(ms, ms);
    for g in 0..groups {
        acc = &acc + &rxx.submatrix(g, g, ms);
    }
    acc.scale(1.0 / groups as f64)
}

/// Forward–backward spatial smoothing: additionally averages with the
/// complex-conjugated, index-reversed ("backward") covariance, doubling the
/// decorrelation per antenna spent. A standard extension of [28]; exposed
/// for the ablation bench.
pub fn spatial_smooth_fb(rxx: &CMatrix, groups: usize) -> CMatrix {
    let fwd = spatial_smooth(rxx, groups);
    let ms = fwd.rows();
    // Backward matrix: J·conj(R̄)·J with J the exchange (flip) matrix.
    let bwd = CMatrix::from_fn(ms, ms, |r, c| fwd[(ms - 1 - r, ms - 1 - c)].conj());
    (&fwd + &bwd).scale(0.5)
}

/// The effective number of antennas after smoothing `m` antennas over
/// `groups` groups.
pub fn effective_antennas(m: usize, groups: usize) -> usize {
    m + 1 - groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::ula_steering;
    use at_linalg::{c64, eigh, CMatrix, Complex64};

    /// Rank-one coherent two-path correlation matrix for an `m`-ULA.
    fn coherent_two_path(m: usize, theta1: f64, theta2: f64, g2: Complex64) -> CMatrix {
        // x = a(θ1) + g2·a(θ2): one snapshot direction, fully coherent.
        let a1 = ula_steering(m, theta1);
        let a2 = ula_steering(m, theta2);
        let x = at_linalg::CVector::from_fn(m, |i| a1[i] + g2 * a2[i]);
        let mut r = CMatrix::zeros(m, m);
        r.add_outer_assign(&x, 1.0);
        r
    }

    #[test]
    fn smoothing_reduces_dimension() {
        let r = CMatrix::identity(8);
        assert_eq!(spatial_smooth(&r, 1).rows(), 8);
        assert_eq!(spatial_smooth(&r, 2).rows(), 7);
        assert_eq!(spatial_smooth(&r, 3).rows(), 6);
        assert_eq!(effective_antennas(8, 3), 6);
    }

    #[test]
    fn smoothing_preserves_hermitian_psd() {
        let r = coherent_two_path(8, 1.0, 2.0, c64(0.8, 0.3));
        let s = spatial_smooth(&r, 3);
        assert!(s.is_hermitian(1e-10));
        let e = eigh(&s).unwrap();
        for l in e.eigenvalues {
            assert!(l > -1e-10);
        }
    }

    #[test]
    fn coherent_sources_are_rank_one_before_smoothing() {
        let r = coherent_two_path(8, 1.0, 2.2, c64(0.9, -0.2));
        let e = eigh(&r).unwrap();
        // Second eigenvalue is (numerically) zero: subspace collapse.
        assert!(e.eigenvalues[1] / e.eigenvalues[0] < 1e-10);
    }

    #[test]
    fn smoothing_restores_rank_two() {
        let r = coherent_two_path(8, 1.0, 2.2, c64(0.9, -0.2));
        let s = spatial_smooth(&r, 3);
        let e = eigh(&s).unwrap();
        // After smoothing, two significant eigenvalues emerge.
        assert!(
            e.eigenvalues[1] / e.eigenvalues[0] > 0.01,
            "rank not restored: {:?}",
            e.eigenvalues
        );
        assert!(e.eigenvalues[2] / e.eigenvalues[0] < 1e-6);
    }

    #[test]
    fn forward_backward_beats_forward_at_equal_groups() {
        let r = coherent_two_path(6, 1.0, 1.9, c64(1.0, 0.0));
        let f = spatial_smooth(&r, 2);
        let fb = spatial_smooth_fb(&r, 2);
        let ef = eigh(&f).unwrap();
        let efb = eigh(&fb).unwrap();
        let sep_f = ef.eigenvalues[1] / ef.eigenvalues[0];
        let sep_fb = efb.eigenvalues[1] / efb.eigenvalues[0];
        assert!(
            sep_fb >= sep_f * 0.99,
            "FB ({sep_fb}) should decorrelate at least as well as forward ({sep_f})"
        );
        assert!(fb.is_hermitian(1e-10));
    }

    #[test]
    fn ng_one_is_identity() {
        let r = coherent_two_path(5, 0.7, 2.0, c64(0.5, 0.5));
        let s = spatial_smooth(&r, 1);
        for i in 0..5 {
            for j in 0..5 {
                assert!((s[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no usable subarray")]
    fn excessive_groups_panic() {
        spatial_smooth(&CMatrix::identity(4), 4);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panic() {
        spatial_smooth(&CMatrix::identity(4), 0);
    }
}
