//! Angle-of-arrival spectra: the central data structure of ArrayTrack.
//!
//! An AoA spectrum (paper Fig. 3) estimates incoming signal power as a
//! function of bearing. We represent it as a uniformly sampled function on
//! `[0, 2π)` measured from the array axis. Spectra from a plain linear
//! array are mirror-symmetric about the axis (the paper's "180° spectrum
//! mirrored to 360°", §2.3.4) until symmetry removal resolves the side.

use at_channel::geometry::angle_diff;
use std::f64::consts::TAU;

/// A peak in an AoA spectrum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Bearing of the peak, radians from the array axis in `[0, 2π)`.
    pub theta: f64,
    /// Spectrum value at the peak.
    pub power: f64,
}

/// A sampled AoA (pseudo)spectrum over the full circle.
#[derive(Clone, Debug, PartialEq)]
pub struct AoaSpectrum {
    values: Vec<f64>,
}

impl AoaSpectrum {
    /// Builds a spectrum from uniformly spaced samples starting at bearing 0.
    ///
    /// # Panics
    /// Panics if fewer than 8 bins or any value is not finite/non-negative.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.len() >= 8,
            "a spectrum needs a reasonable resolution"
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "spectrum values must be finite and non-negative"
        );
        Self { values }
    }

    /// Builds a spectrum by evaluating `f(θ)` at `bins` uniform bearings.
    pub fn from_fn(bins: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        Self::from_values((0..bins).map(|i| f(i as f64 * TAU / bins as f64)).collect())
    }

    /// Number of angular bins.
    pub fn bins(&self) -> usize {
        self.values.len()
    }

    /// Angular resolution in radians.
    pub fn resolution(&self) -> f64 {
        TAU / self.bins() as f64
    }

    /// The bearing of bin `i`.
    pub fn theta_of(&self, i: usize) -> f64 {
        i as f64 * self.resolution()
    }

    /// Raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable sample values (used by the multipath-suppression and
    /// symmetry-removal passes).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Linear interpolation of the spectrum at an arbitrary bearing.
    pub fn sample(&self, theta: f64) -> f64 {
        let n = self.bins() as f64;
        let pos = (theta.rem_euclid(TAU)) / TAU * n;
        let i = pos.floor() as usize % self.bins();
        let j = (i + 1) % self.bins();
        let frac = pos - pos.floor();
        self.values[i] * (1.0 - frac) + self.values[j] * frac
    }

    /// Maximum spectrum value.
    pub fn max_value(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Normalizes the spectrum to peak 1 (no-op for all-zero spectra).
    pub fn normalized(&self) -> AoaSpectrum {
        let m = self.max_value();
        if m == 0.0 {
            return self.clone();
        }
        AoaSpectrum {
            values: self.values.iter().map(|v| v / m).collect(),
        }
    }

    /// In-place equivalent of `*self = src.normalized()` for same-length
    /// spectra: overwrites this spectrum's bins with `src` normalized to
    /// peak 1, reusing the existing allocation. Bit-identical values to
    /// [`Self::normalized`] (same per-bin division, same all-zero
    /// fallback) — scratch arenas rely on that.
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn copy_normalized_from(&mut self, src: &AoaSpectrum) {
        assert_eq!(
            self.values.len(),
            src.values.len(),
            "in-place normalize needs matching resolutions"
        );
        let m = src.max_value();
        if m == 0.0 {
            self.values.copy_from_slice(&src.values);
            return;
        }
        for (d, v) in self.values.iter_mut().zip(&src.values) {
            *d = v / m;
        }
    }

    /// Finds local maxima at least `rel_threshold` × the global maximum,
    /// sorted by descending power. Adjacent bins are compared circularly.
    pub fn find_peaks(&self, rel_threshold: f64) -> Vec<Peak> {
        let n = self.bins();
        let max = self.max_value();
        if max == 0.0 {
            return Vec::new();
        }
        let floor = max * rel_threshold;
        let mut peaks = Vec::new();
        for i in 0..n {
            let v = self.values[i];
            if v < floor {
                continue;
            }
            let prev = self.values[(i + n - 1) % n];
            let next = self.values[(i + 1) % n];
            // Strict rise on one side avoids double-counting flat tops.
            if v > prev && v >= next {
                peaks.push(Peak {
                    theta: self.theta_of(i),
                    power: v,
                });
            }
        }
        peaks.sort_by(|a, b| b.power.partial_cmp(&a.power).expect("finite powers"));
        peaks
    }

    /// Whether any peak lies within `tol` radians of `theta`.
    pub fn has_peak_near(&self, theta: f64, tol: f64, rel_threshold: f64) -> bool {
        self.find_peaks(rel_threshold)
            .iter()
            .any(|p| angle_diff(p.theta, theta) <= tol)
    }

    /// Removes the peak at bin index nearest `theta`: walks downhill to the
    /// surrounding local minima and levels that span to the minimum value.
    /// Implements "remove peaks from the primary" (§2.4 step 2).
    pub fn remove_peak(&mut self, theta: f64) {
        let n = self.bins();
        let center = ((theta.rem_euclid(TAU)) / self.resolution()).round() as usize % n;
        // Walk to the local max near the requested bearing first (the
        // caller's peak estimate may be a bin or two off).
        let mut apex = center;
        loop {
            let up = (apex + 1) % n;
            let down = (apex + n - 1) % n;
            if self.values[up] > self.values[apex] {
                apex = up;
            } else if self.values[down] > self.values[apex] {
                apex = down;
            } else {
                break;
            }
        }
        // Walk downhill each way to the local minima.
        let mut left = apex;
        while self.values[(left + n - 1) % n] < self.values[left] {
            left = (left + n - 1) % n;
            if left == apex {
                break; // safety for pathological single-lobe spectra
            }
        }
        let mut right = apex;
        while self.values[(right + 1) % n] < self.values[right] {
            right = (right + 1) % n;
            if right == apex {
                break;
            }
        }
        let fill = self.values[left].min(self.values[right]);
        let mut i = left;
        loop {
            self.values[i] = self.values[i].min(fill);
            if i == right {
                break;
            }
            i = (i + 1) % n;
        }
    }

    /// Scales the lobe containing the peak nearest `theta` by `factor`:
    /// walks to the apex, then downhill to the surrounding local minima,
    /// multiplying every bin in that span. Used by per-peak symmetry
    /// resolution to attenuate a mirror ghost without a hard zero.
    pub fn scale_lobe(&mut self, theta: f64, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "factor must be in [0, 1]");
        let n = self.bins();
        let center = ((theta.rem_euclid(TAU)) / self.resolution()).round() as usize % n;
        let mut apex = center;
        loop {
            let up = (apex + 1) % n;
            let down = (apex + n - 1) % n;
            if self.values[up] > self.values[apex] {
                apex = up;
            } else if self.values[down] > self.values[apex] {
                apex = down;
            } else {
                break;
            }
        }
        let mut left = apex;
        while self.values[(left + n - 1) % n] < self.values[left] {
            left = (left + n - 1) % n;
            if left == apex {
                break;
            }
        }
        let mut right = apex;
        while self.values[(right + 1) % n] < self.values[right] {
            right = (right + 1) % n;
            if right == apex {
                break;
            }
        }
        let mut i = left;
        loop {
            self.values[i] *= factor;
            if i == right {
                break;
            }
            i = (i + 1) % n;
        }
    }

    /// Multiplies the spectrum by a bearing-dependent window.
    pub fn apply_window(&mut self, w: impl Fn(f64) -> f64) {
        for i in 0..self.bins() {
            let theta = self.theta_of(i);
            self.values[i] *= w(theta);
        }
    }

    /// Total power on the `[0, π)` side vs. the `[π, 2π)` side of the
    /// array axis (for symmetry removal, §2.3.4).
    pub fn side_powers(&self) -> (f64, f64) {
        let n = self.bins();
        let mut up = 0.0;
        let mut down = 0.0;
        for i in 0..n {
            let theta = self.theta_of(i);
            if theta < std::f64::consts::PI {
                up += self.values[i];
            } else {
                down += self.values[i];
            }
        }
        (up, down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// A smooth two-lobe test spectrum with peaks at 60° and 200°.
    fn two_lobe() -> AoaSpectrum {
        AoaSpectrum::from_fn(360, |t| {
            let l1 = (-((t - 60f64.to_radians()) / 0.2).powi(2)).exp();
            let l2 = 0.5 * (-((t - 200f64.to_radians()) / 0.15).powi(2)).exp();
            l1 + l2 + 1e-4
        })
    }

    #[test]
    fn sampling_interpolates_circularly() {
        let s = AoaSpectrum::from_fn(8, |t| t.cos() + 2.0);
        // Interpolation between last bin and bin 0 wraps.
        let v = s.sample(TAU - s.resolution() / 2.0);
        let expect = (s.values()[7] + s.values()[0]) / 2.0;
        assert!((v - expect).abs() < 1e-12);
        // Sampling beyond 2π wraps too.
        assert!((s.sample(TAU + 0.1) - s.sample(0.1)).abs() < 1e-12);
        assert!((s.sample(-0.1) - s.sample(TAU - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn peaks_found_and_ordered() {
        let peaks = two_lobe().find_peaks(0.1);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].theta - 60f64.to_radians()).abs() < 0.02);
        assert!((peaks[1].theta - 200f64.to_radians()).abs() < 0.02);
        assert!(peaks[0].power > peaks[1].power);
    }

    #[test]
    fn threshold_filters_weak_peaks() {
        let peaks = two_lobe().find_peaks(0.8);
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn has_peak_near_respects_tolerance() {
        let s = two_lobe();
        assert!(s.has_peak_near(60f64.to_radians(), 0.05, 0.1));
        assert!(!s.has_peak_near(120f64.to_radians(), 0.05, 0.1));
        // Circular: peak at 1° found near 359°.
        let edge = AoaSpectrum::from_fn(360, |t| (-((t - 0.02) / 0.1).powi(2)).exp() + 1e-5);
        assert!(edge.has_peak_near(TAU - 0.02, 0.1, 0.5));
    }

    #[test]
    fn remove_peak_levels_one_lobe_only() {
        let mut s = two_lobe();
        s.remove_peak(200f64.to_radians());
        let peaks = s.find_peaks(0.05);
        assert_eq!(peaks.len(), 1, "{peaks:?}");
        assert!((peaks[0].theta - 60f64.to_radians()).abs() < 0.02);
        // The removed lobe region is flattened near the pre-removal floor.
        assert!(s.sample(200f64.to_radians()) < 0.01);
    }

    #[test]
    fn remove_peak_with_imprecise_theta_still_hits_lobe() {
        let mut s = two_lobe();
        // 3° off the true apex.
        s.remove_peak(203f64.to_radians());
        assert_eq!(s.find_peaks(0.05).len(), 1);
    }

    #[test]
    fn normalization_and_max() {
        let s = two_lobe();
        let n = s.normalized();
        assert!((n.max_value() - 1.0).abs() < 1e-12);
        // Shape preserved.
        let r = s.sample(1.0) / s.max_value();
        assert!((n.sample(1.0) - r).abs() < 1e-12);
    }

    #[test]
    fn window_application() {
        let mut s = AoaSpectrum::from_fn(360, |_| 1.0);
        s.apply_window(|t| if t < PI { 1.0 } else { 0.0 });
        let (up, down) = s.side_powers();
        assert!(up > 0.0);
        assert_eq!(down, 0.0);
    }

    #[test]
    fn side_powers_split_at_pi() {
        let s = AoaSpectrum::from_fn(360, |t| if t < PI { 2.0 } else { 1.0 });
        let (up, down) = s.side_powers();
        assert!((up - 360.0).abs() < 1e-9);
        assert!((down - 180.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_values_rejected() {
        AoaSpectrum::from_values(vec![1.0, -0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn flat_spectrum_has_no_peaks() {
        let s = AoaSpectrum::from_fn(64, |_| 1.0);
        assert!(s.find_peaks(0.5).is_empty());
    }
}
