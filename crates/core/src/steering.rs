//! Array steering vectors (paper eq. 2).
//!
//! The steering vector `a(θ)` encodes the inter-antenna phase progression a
//! plane wave from bearing `θ` produces. Our sign convention matches the
//! channel simulator: element `m` of a λ/2-spaced ULA sits `m·λ/2` further
//! along the axis, so a wave from bearing `θ` (measured from the axis)
//! reaches it with phase *advance* `m·π·cosθ` relative to element 0:
//!
//! ```text
//! a(θ) = [1, e^{jπcosθ}, e^{j2πcosθ}, …, e^{j(M−1)πcosθ}]
//! ```
//!
//! For arbitrary element layouts (e.g. the off-row ninth antenna, §2.3.4)
//! the general form is `a_m(θ) = e^{j2π·(p_m·u(θ))/λ}` with `p_m` the
//! element position in the array frame and `u(θ)` the unit vector toward
//! the source.

use at_channel::geometry::{pt, Point};
use at_channel::{half_wavelength, wavelength};
use at_linalg::{CVector, Complex64};
use std::f64::consts::PI;

/// Steering vector for an `elements`-antenna λ/2 ULA at bearing `theta`
/// (radians from the array axis).
pub fn ula_steering(elements: usize, theta: f64) -> CVector {
    CVector::from_fn(elements, |m| {
        Complex64::cis(m as f64 * PI * theta.cos())
    })
}

/// Steering vector for arbitrary element positions `positions` (meters, in
/// the array frame where +x is the array axis) at bearing `theta`.
pub fn general_steering(positions: &[Point], theta: f64) -> CVector {
    let u = Point::unit(theta);
    let lambda = wavelength();
    CVector::from_fn(positions.len(), |m| {
        Complex64::cis(2.0 * PI * positions[m].dot(u) / lambda)
    })
}

/// Element positions in the array frame for a λ/2 ULA with an optional
/// off-row element (matching `at_channel::AntennaArray`'s layout: in-row
/// elements centered on the origin, off-row element λ/4 perpendicular from
/// element 0 — see `at_channel::array::offrow_offset` for why λ/4).
pub fn array_frame_positions(elements: usize, offrow: bool) -> Vec<Point> {
    let s = half_wavelength();
    let mut ps: Vec<Point> = (0..elements)
        .map(|m| pt((m as f64 - (elements as f64 - 1.0) / 2.0) * s, 0.0))
        .collect();
    if offrow {
        let first = ps[0];
        ps.push(pt(first.x, at_channel::array::offrow_offset()));
    }
    ps
}

/// Element positions in the array frame for a uniform circular array with
/// λ/2 neighbor chords (matching `at_channel::AntennaArray::uca`): element
/// `m` sits at angle `2πm/M` on a circle of radius `s/(2·sin(π/M))`.
pub fn circular_frame_positions(elements: usize) -> Vec<Point> {
    assert!(elements >= 3, "a circular array needs at least three elements");
    let r = half_wavelength() / (2.0 * (PI / elements as f64).sin());
    (0..elements)
        .map(|m| {
            let ang = m as f64 * std::f64::consts::TAU / elements as f64;
            pt(r * ang.cos(), r * ang.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::angle_diff;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn ula_steering_has_unit_magnitude_entries() {
        let a = ula_steering(8, 1.1);
        for z in a.iter() {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert_eq!(a.len(), 8);
        assert_eq!(a[0], Complex64::ONE);
    }

    #[test]
    fn broadside_steering_is_all_ones() {
        let a = ula_steering(6, FRAC_PI_2);
        for z in a.iter() {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn endfire_steering_alternates_sign() {
        let a = ula_steering(4, 0.0);
        for (m, z) in a.iter().enumerate() {
            let expect = if m % 2 == 0 {
                Complex64::ONE
            } else {
                Complex64::real(-1.0)
            };
            assert!((*z - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn mirror_bearings_are_indistinguishable_for_ula() {
        // cos(θ) = cos(−θ): a plain ULA can't tell the sides apart (§2.3.4).
        let up = ula_steering(8, 0.7);
        let down = ula_steering(8, -0.7);
        for (a, b) in up.iter().zip(down.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn general_steering_matches_ula_modulo_centering() {
        // The centered general layout differs from the element-0-referenced
        // ULA form by a global phase only.
        let theta = 1.234;
        let g = general_steering(&array_frame_positions(8, false), theta);
        let u = ula_steering(8, theta);
        let ratio0 = g[0] / u[0];
        for m in 0..8 {
            let r = g[m] / u[m];
            assert!((r - ratio0).abs() < 1e-9, "element {m}");
        }
    }

    #[test]
    fn offrow_element_breaks_mirror_symmetry() {
        let ps = array_frame_positions(8, true);
        assert_eq!(ps.len(), 9);
        let up = general_steering(&ps, 0.7);
        let down = general_steering(&ps, -0.7);
        // In-row entries agree...
        for m in 0..8 {
            assert!((up[m] - down[m]).abs() < 1e-12);
        }
        // ...but the off-row entry distinguishes the sides.
        assert!((up[8] - down[8]).abs() > 0.5);
    }

    #[test]
    fn circular_steering_has_no_mirror_ambiguity() {
        let ps = circular_frame_positions(8);
        let up = general_steering(&ps, 0.9);
        let down = general_steering(&ps, -0.9);
        // Unlike the ULA, a UCA's steering differs strongly across sides.
        let mut diff = 0.0;
        for m in 0..8 {
            diff += (up[m] - down[m]).abs();
        }
        assert!(diff > 1.0, "UCA should distinguish mirror bearings: {diff}");
    }

    #[test]
    fn circular_positions_match_channel_array() {
        use at_channel::AntennaArray;
        let array = AntennaArray::uca(pt(0.0, 0.0), 0.0, 8);
        let frame = circular_frame_positions(8);
        for (m, p) in array.element_positions().iter().enumerate() {
            assert!((p.x - frame[m].x).abs() < 1e-12);
            assert!((p.y - frame[m].y).abs() < 1e-12);
        }
    }

    #[test]
    fn steering_matches_channel_phases() {
        // The whole point: far-field phases from the channel simulator must
        // match the plane-wave steering model.
        use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        for theta_deg in [20.0f64, 45.0, 90.0, 140.0] {
            let theta = theta_deg.to_radians();
            let tx = Transmitter::at(array.point_at(theta, 2000.0));
            let rx = sim.receive(
                &tx,
                &array,
                |_| Complex64::ONE,
                0.0,
                0.25e-6,
                at_dsp::SAMPLE_RATE_HZ,
            );
            let a = ula_steering(8, theta);
            for m in 0..8 {
                let measured = (rx[m][0] / rx[0][0]).arg();
                let model = (a[m] / a[0]).arg();
                assert!(
                    angle_diff(measured, model) < 0.01,
                    "θ={theta_deg}°, element {m}: {measured} vs {model}"
                );
            }
        }
    }
}
