//! Array steering vectors (paper eq. 2).
//!
//! The steering vector `a(θ)` encodes the inter-antenna phase progression a
//! plane wave from bearing `θ` produces. Our sign convention matches the
//! channel simulator: element `m` of a λ/2-spaced ULA sits `m·λ/2` further
//! along the axis, so a wave from bearing `θ` (measured from the axis)
//! reaches it with phase *advance* `m·π·cosθ` relative to element 0:
//!
//! ```text
//! a(θ) = [1, e^{jπcosθ}, e^{j2πcosθ}, …, e^{j(M−1)πcosθ}]
//! ```
//!
//! For arbitrary element layouts (e.g. the off-row ninth antenna, §2.3.4)
//! the general form is `a_m(θ) = e^{j2π·(p_m·u(θ))/λ}` with `p_m` the
//! element position in the array frame and `u(θ)` the unit vector toward
//! the source.

use crate::spectrum::AoaSpectrum;
use at_channel::geometry::{pt, Point};
use at_channel::{half_wavelength, wavelength};
use at_linalg::{CVector, Complex64, NoiseSubspace};
use std::collections::HashMap;
use std::f64::consts::{PI, TAU};
use std::sync::{Arc, Mutex, OnceLock};

/// Steering vector for an `elements`-antenna λ/2 ULA at bearing `theta`
/// (radians from the array axis).
pub fn ula_steering(elements: usize, theta: f64) -> CVector {
    CVector::from_fn(elements, |m| Complex64::cis(m as f64 * PI * theta.cos()))
}

/// Precomputed steering vectors for an `elements`-antenna λ/2 ULA over a
/// uniform `bins`-bearing scan.
///
/// Every spectrum scan (MUSIC, Bartlett, MVDR, the elevation path through
/// MUSIC) evaluates some quadratic form `f(a(θ))` at the same `bins`
/// bearings for every frame, but `a(θ)` depends only on `(elements, bins)`
/// — never on the data. This table computes the vectors once (sin/cos per
/// element per bin) and [`SteeringTable::shared`] memoizes tables
/// process-wide, so a six-AP deployment pays the trigonometry exactly once.
///
/// Only the half circle `[0, π]` is stored: a plain ULA's steering repeats
/// mirror-symmetrically (`cos θ = cos(−θ)`), which is exactly why its
/// spectra are mirrored (§2.3.4). [`SteeringTable::scan`] reproduces the
/// half-scan-plus-mirror loop all the estimators previously hand-rolled.
#[derive(Clone, Debug)]
pub struct SteeringTable {
    elements: usize,
    bins: usize,
    /// `bins/2 + 1` vectors for θ = i·2π/bins, i in `0..=bins/2`.
    vectors: Vec<CVector>,
    /// The same vectors as contiguous split re/im slabs (row `i` holds
    /// vector `i`'s components) — the layout the batched noise-subspace
    /// projection kernel consumes.
    planar_re: Vec<f64>,
    planar_im: Vec<f64>,
}

impl SteeringTable {
    /// Builds the table for an `elements`-antenna ULA scanned at `bins`
    /// uniform bearings over the full circle.
    pub fn new(elements: usize, bins: usize) -> Self {
        assert!(elements >= 1, "need at least one element");
        assert!(bins >= 8, "a scan needs a reasonable resolution");
        let half = bins / 2;
        let vectors: Vec<CVector> = (0..=half)
            .map(|i| ula_steering(elements, i as f64 * TAU / bins as f64))
            .collect();
        let mut planar_re = Vec::with_capacity((half + 1) * elements);
        let mut planar_im = Vec::with_capacity((half + 1) * elements);
        for v in &vectors {
            planar_re.extend(v.iter().map(|z| z.re));
            planar_im.extend(v.iter().map(|z| z.im));
        }
        Self {
            elements,
            bins,
            vectors,
            planar_re,
            planar_im,
        }
    }

    /// The process-wide shared table for `(elements, bins)`: built on first
    /// use, then reused by every subsequent scan with the same shape.
    pub fn shared(elements: usize, bins: usize) -> Arc<SteeringTable> {
        #[allow(clippy::type_complexity)]
        static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Arc<SteeringTable>>>> =
            OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("steering cache lock");
        Arc::clone(
            map.entry((elements, bins))
                .or_insert_with(|| Arc::new(SteeringTable::new(elements, bins))),
        )
    }

    /// Number of array elements the vectors describe.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Number of angular bins of the full-circle scan.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The precomputed steering vector for bin `i` (`i ≤ bins/2`).
    pub fn vector(&self, i: usize) -> &CVector {
        &self.vectors[i]
    }

    /// Evaluates `f(a(θ))` over the stored half circle and mirrors the
    /// result to `[0, 2π)` — the shared scan loop of every ULA estimator.
    /// Values are clamped to be non-negative.
    pub fn scan(&self, f: impl Fn(&CVector) -> f64) -> AoaSpectrum {
        let bins = self.bins;
        let half = bins / 2;
        let mut values = vec![0.0; bins];
        for (i, a) in self.vectors.iter().enumerate() {
            let p = f(a).max(0.0);
            values[i] = p;
            if i != 0 && i != half {
                values[bins - i] = p;
            }
        }
        AoaSpectrum::from_values(values)
    }

    /// The stored half-circle vectors as contiguous split re/im slabs
    /// (`(bins/2 + 1) × elements`, row-major): the input shape of
    /// [`NoiseSubspace::batch_projection`].
    pub fn planar(&self) -> (&[f64], &[f64]) {
        (&self.planar_re, &self.planar_im)
    }

    /// The MUSIC sweep as one batched SoA kernel call: evaluates
    /// `P(θ) = 1 / max(aᴴ·E_N·E_Nᴴ·a, 1e-12)` for every stored
    /// half-circle vector via [`NoiseSubspace::batch_projection`] and
    /// mirrors to the full circle, with no per-bin temporaries.
    ///
    /// # Panics
    /// Panics if `noise` was built for a different element count.
    pub fn scan_projection(&self, noise: &NoiseSubspace) -> AoaSpectrum {
        assert_eq!(
            noise.elements(),
            self.elements,
            "noise subspace element count must match the steering table"
        );
        let bins = self.bins;
        let half = bins / 2;
        let mut values = vec![0.0; bins];
        noise.batch_projection(&self.planar_re, &self.planar_im, &mut values[..=half]);
        for i in (0..=half).rev() {
            let p = (1.0 / values[i].max(1e-12)).max(0.0);
            values[i] = p;
            if i != 0 && i != half {
                values[bins - i] = p;
            }
        }
        AoaSpectrum::from_values(values)
    }
}

/// Steering vector for arbitrary element positions `positions` (meters, in
/// the array frame where +x is the array axis) at bearing `theta`.
pub fn general_steering(positions: &[Point], theta: f64) -> CVector {
    let u = Point::unit(theta);
    let lambda = wavelength();
    CVector::from_fn(positions.len(), |m| {
        Complex64::cis(2.0 * PI * positions[m].dot(u) / lambda)
    })
}

/// Element positions in the array frame for a λ/2 ULA with an optional
/// off-row element (matching `at_channel::AntennaArray`'s layout: in-row
/// elements centered on the origin, off-row element λ/4 perpendicular from
/// element 0 — see `at_channel::array::offrow_offset` for why λ/4).
pub fn array_frame_positions(elements: usize, offrow: bool) -> Vec<Point> {
    let s = half_wavelength();
    let mut ps: Vec<Point> = (0..elements)
        .map(|m| pt((m as f64 - (elements as f64 - 1.0) / 2.0) * s, 0.0))
        .collect();
    if offrow {
        let first = ps[0];
        ps.push(pt(first.x, at_channel::array::offrow_offset()));
    }
    ps
}

/// Element positions in the array frame for a uniform circular array with
/// λ/2 neighbor chords (matching `at_channel::AntennaArray::uca`): element
/// `m` sits at angle `2πm/M` on a circle of radius `s/(2·sin(π/M))`.
pub fn circular_frame_positions(elements: usize) -> Vec<Point> {
    assert!(
        elements >= 3,
        "a circular array needs at least three elements"
    );
    let r = half_wavelength() / (2.0 * (PI / elements as f64).sin());
    (0..elements)
        .map(|m| {
            let ang = m as f64 * std::f64::consts::TAU / elements as f64;
            pt(r * ang.cos(), r * ang.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::angle_diff;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn ula_steering_has_unit_magnitude_entries() {
        let a = ula_steering(8, 1.1);
        for z in a.iter() {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert_eq!(a.len(), 8);
        assert_eq!(a[0], Complex64::ONE);
    }

    #[test]
    fn broadside_steering_is_all_ones() {
        let a = ula_steering(6, FRAC_PI_2);
        for z in a.iter() {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn endfire_steering_alternates_sign() {
        let a = ula_steering(4, 0.0);
        for (m, z) in a.iter().enumerate() {
            let expect = if m % 2 == 0 {
                Complex64::ONE
            } else {
                Complex64::real(-1.0)
            };
            assert!((*z - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn mirror_bearings_are_indistinguishable_for_ula() {
        // cos(θ) = cos(−θ): a plain ULA can't tell the sides apart (§2.3.4).
        let up = ula_steering(8, 0.7);
        let down = ula_steering(8, -0.7);
        for (a, b) in up.iter().zip(down.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn general_steering_matches_ula_modulo_centering() {
        // The centered general layout differs from the element-0-referenced
        // ULA form by a global phase only.
        let theta = 1.234;
        let g = general_steering(&array_frame_positions(8, false), theta);
        let u = ula_steering(8, theta);
        let ratio0 = g[0] / u[0];
        for m in 0..8 {
            let r = g[m] / u[m];
            assert!((r - ratio0).abs() < 1e-9, "element {m}");
        }
    }

    #[test]
    fn offrow_element_breaks_mirror_symmetry() {
        let ps = array_frame_positions(8, true);
        assert_eq!(ps.len(), 9);
        let up = general_steering(&ps, 0.7);
        let down = general_steering(&ps, -0.7);
        // In-row entries agree...
        for m in 0..8 {
            assert!((up[m] - down[m]).abs() < 1e-12);
        }
        // ...but the off-row entry distinguishes the sides.
        assert!((up[8] - down[8]).abs() > 0.5);
    }

    #[test]
    fn circular_steering_has_no_mirror_ambiguity() {
        let ps = circular_frame_positions(8);
        let up = general_steering(&ps, 0.9);
        let down = general_steering(&ps, -0.9);
        // Unlike the ULA, a UCA's steering differs strongly across sides.
        let mut diff = 0.0;
        for m in 0..8 {
            diff += (up[m] - down[m]).abs();
        }
        assert!(diff > 1.0, "UCA should distinguish mirror bearings: {diff}");
    }

    #[test]
    fn circular_positions_match_channel_array() {
        use at_channel::AntennaArray;
        let array = AntennaArray::uca(pt(0.0, 0.0), 0.0, 8);
        let frame = circular_frame_positions(8);
        for (m, p) in array.element_positions().iter().enumerate() {
            assert!((p.x - frame[m].x).abs() < 1e-12);
            assert!((p.y - frame[m].y).abs() < 1e-12);
        }
    }

    #[test]
    fn table_vectors_match_direct_steering() {
        let table = SteeringTable::new(8, 720);
        for i in [0usize, 1, 97, 360] {
            let direct = ula_steering(8, i as f64 * TAU / 720.0);
            for (a, b) in table.vector(i).iter().zip(direct.iter()) {
                assert_eq!(*a, *b, "bin {i}");
            }
        }
    }

    #[test]
    fn table_scan_matches_hand_rolled_loop() {
        // The scan must be bit-identical to the loop it replaced: evaluate
        // over [0, π] at i·2π/bins, mirror to the full circle.
        let table = SteeringTable::new(6, 360);
        let f = |a: &CVector| a.iter().map(|z| z.re).sum::<f64>().max(0.0);
        let spec = table.scan(|a| a.iter().map(|z| z.re).sum::<f64>());
        for i in 0..=180 {
            let direct = f(&ula_steering(6, i as f64 * TAU / 360.0));
            assert_eq!(spec.values()[i], direct, "bin {i}");
            if i != 0 && i != 180 {
                assert_eq!(spec.values()[360 - i], direct, "mirror of bin {i}");
            }
        }
    }

    #[test]
    fn shared_table_is_memoized() {
        let a = SteeringTable::shared(8, 720);
        let b = SteeringTable::shared(8, 720);
        assert!(Arc::ptr_eq(&a, &b));
        let c = SteeringTable::shared(4, 720);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.elements(), 4);
        assert_eq!(c.bins(), 720);
    }

    #[test]
    fn steering_matches_channel_phases() {
        // The whole point: far-field phases from the channel simulator must
        // match the plane-wave steering model.
        use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
        for theta_deg in [20.0f64, 45.0, 90.0, 140.0] {
            let theta = theta_deg.to_radians();
            let tx = Transmitter::at(array.point_at(theta, 2000.0));
            let rx = sim.receive(
                &tx,
                &array,
                |_| Complex64::ONE,
                0.0,
                0.25e-6,
                at_dsp::SAMPLE_RATE_HZ,
            );
            let a = ula_steering(8, theta);
            for m in 0..8 {
                let measured = (rx[m][0] / rx[0][0]).arg();
                let model = (a[m] / a[0]).arg();
                assert!(
                    angle_diff(measured, model) < 0.01,
                    "θ={theta_deg}°, element {m}: {measured} vs {model}"
                );
            }
        }
    }
}
