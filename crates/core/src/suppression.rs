//! Multipath suppression (paper §2.4, Figs. 8–9, Table 1).
//!
//! Small movements of the transmitter (or nearby objects) leave the
//! direct-path AoA peak in place while reflection-path peaks shift or
//! vanish. ArrayTrack exploits this: group two or three AoA spectra from
//! frames captured within 100 ms, pick one as the *primary*, and remove
//! from it every peak that is not paired (within 5°) with a peak in each of
//! the other spectra.

use crate::spectrum::{AoaSpectrum, Peak};
use at_channel::geometry::angle_diff;

/// The paper's grouping window: frames closer than 100 ms in time.
pub const GROUPING_WINDOW_S: f64 = 0.100;

/// The paper's peak-pairing tolerance: 5°.
pub const PAPER_MATCH_TOLERANCE_RAD: f64 = 5.0 * std::f64::consts::PI / 180.0;

/// The default pairing tolerance used here: 8°. Our simulated reflections
/// wander in bearing (surface-roughness glint model), so a slightly wider
/// window keeps the stable direct path paired without re-admitting moving
/// reflections; the ablation bench exercises the paper's 5° too.
pub const MATCH_TOLERANCE_RAD: f64 = 8.0 * std::f64::consts::PI / 180.0;

/// Relative peak-detection threshold used when pairing peaks. Low enough to
/// see secondary reflection lobes, high enough to ignore the noise floor.
pub const PEAK_THRESHOLD: f64 = 0.03;

/// How many of the non-primary spectra must confirm a peak for it to
/// survive (Fig. 8 step 2 says "paired with peaks on other AoA spectra"
/// without specifying the quorum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchQuorum {
    /// Paired in every other spectrum: maximal suppression, but a single
    /// frame where the direct peak wobbles past 5° kills it.
    All,
    /// Paired in at least half (rounded up) of the other spectra: with
    /// the paper's ~90 % per-frame direct-path stability this keeps the
    /// direct peak with ≈99.8 % probability over three frames while still
    /// removing reflections that move in most frames.
    Majority,
}

/// Configuration for the suppression pass.
#[derive(Clone, Copy, Debug)]
pub struct SuppressionConfig {
    /// Angular pairing tolerance, radians.
    pub match_tolerance: f64,
    /// Relative peak threshold for the primary spectrum's peak list.
    pub peak_threshold: f64,
    /// Relative peak threshold when looking for *pairing* peaks in the
    /// other spectra. Lower than `peak_threshold`: a peak that merely
    /// shrank in another frame is still evidence of a stable bearing, and
    /// treating it as vanished would wrongly remove direct paths.
    pub pairing_threshold: f64,
    /// Pairing quorum across the non-primary spectra.
    pub quorum: MatchQuorum,
    /// Attenuation applied to removed lobes. `0.0` flattens the lobe to
    /// the surrounding floor (the paper's hard removal); a small positive
    /// value keeps a residual so one wrong removal cannot entirely erase
    /// an AP's direct-path evidence from the synthesis product.
    pub removal_attenuation: f64,
}

impl Default for SuppressionConfig {
    fn default() -> Self {
        Self {
            match_tolerance: MATCH_TOLERANCE_RAD,
            peak_threshold: PEAK_THRESHOLD,
            pairing_threshold: PEAK_THRESHOLD / 3.0,
            quorum: MatchQuorum::Majority,
            removal_attenuation: 0.15,
        }
    }
}

/// Runs the multipath suppression algorithm of Fig. 8 on a group of AoA
/// spectra from temporally-adjacent frames.
///
/// The first spectrum is chosen as the primary ("arbitrarily choose one",
/// Fig. 8 step 2). Peaks of the primary not paired with a peak in *every*
/// other spectrum are removed. With fewer than two spectra the primary is
/// returned unchanged (Fig. 8 step 1's fall-through).
pub fn suppress_multipath(spectra: &[AoaSpectrum], cfg: &SuppressionConfig) -> AoaSpectrum {
    assert!(!spectra.is_empty(), "need at least one spectrum");
    let _t = at_obs::time_stage!(at_obs::stages::SUPPRESSION, "frames" => spectra.len());
    let mut primary = spectra[0].clone();
    if spectra.len() < 2 {
        return primary;
    }
    let peaks = primary.find_peaks(cfg.peak_threshold);
    let others = spectra.len() - 1;
    let needed = match cfg.quorum {
        MatchQuorum::All => others,
        MatchQuorum::Majority => others.div_ceil(2),
    };
    for peak in peaks {
        let matches = spectra[1..]
            .iter()
            .filter(|s| s.has_peak_near(peak.theta, cfg.match_tolerance, cfg.pairing_threshold))
            .count();
        if matches < needed {
            if cfg.removal_attenuation > 0.0 {
                primary.scale_lobe(peak.theta, cfg.removal_attenuation);
            } else {
                primary.remove_peak(peak.theta);
            }
        }
    }
    primary
}

/// Outcome of comparing one bearing's peak across two spectra (the Table 1
/// microbenchmark's unit of classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeakFate {
    /// A matching peak exists within 5° in the second spectrum.
    Unchanged,
    /// The peak moved by more than 5° or vanished.
    Changed,
}

/// Classifies whether the peak nearest `bearing` in `before` survives in
/// `after` (within `cfg.match_tolerance`), mirroring the paper's
/// microbenchmark: "If the corresponding bearing peaks of the two spectra
/// are within five degrees, we mark that bearing as unchanged."
pub fn classify_peak(
    before: &AoaSpectrum,
    after: &AoaSpectrum,
    bearing: f64,
    cfg: &SuppressionConfig,
) -> Option<PeakFate> {
    let peaks = before.find_peaks(cfg.peak_threshold);
    let near = peaks
        .iter()
        .filter(|p| angle_diff(p.theta, bearing) <= cfg.match_tolerance)
        .max_by(|a, b| a.power.partial_cmp(&b.power).expect("finite"))?;
    Some(
        if after.has_peak_near(near.theta, cfg.match_tolerance, cfg.peak_threshold) {
            PeakFate::Unchanged
        } else {
            PeakFate::Changed
        },
    )
}

/// Row of the Table 1 tally: joint fate of the direct-path peak and the
/// reflection-path peaks between two spectra.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StabilityOutcome {
    /// Whether the direct-path peak stayed within 5°.
    pub direct_unchanged: bool,
    /// Whether *all* observed reflection peaks stayed within 5°.
    pub reflections_unchanged: bool,
}

/// Classifies the joint stability of direct and reflection peaks between a
/// spectrum pair, given the ground-truth direct bearing. Returns `None` if
/// the direct-path peak is not visible in the first spectrum (no
/// classification possible).
pub fn classify_stability(
    before: &AoaSpectrum,
    after: &AoaSpectrum,
    direct_bearing: f64,
    cfg: &SuppressionConfig,
) -> Option<StabilityOutcome> {
    let peaks = before.find_peaks(cfg.peak_threshold);
    let direct = peaks
        .iter()
        .find(|p| angle_diff(p.theta, direct_bearing) <= cfg.match_tolerance)?;
    let direct_unchanged =
        after.has_peak_near(direct.theta, cfg.match_tolerance, cfg.peak_threshold);

    let reflections: Vec<&Peak> = peaks
        .iter()
        .filter(|p| angle_diff(p.theta, direct_bearing) > cfg.match_tolerance)
        .collect();
    // "Reflections unchanged" requires every reflection peak to survive;
    // if there are none, the comparison is vacuously unchanged.
    let reflections_unchanged = reflections
        .iter()
        .all(|p| after.has_peak_near(p.theta, cfg.match_tolerance, cfg.peak_threshold));
    Some(StabilityOutcome {
        direct_unchanged,
        reflections_unchanged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a spectrum with Gaussian lobes at the given (deg, power) list.
    fn lobes(specs: &[(f64, f64)]) -> AoaSpectrum {
        AoaSpectrum::from_fn(720, |t| {
            let mut v = 1e-5;
            for &(deg, p) in specs {
                let c = deg.to_radians();
                let d = at_channel::geometry::angle_diff(t, c);
                v += p * (-(d / 0.06).powi(2)).exp();
            }
            v
        })
    }

    #[test]
    fn stable_peaks_survive_suppression() {
        let a = lobes(&[(60.0, 1.0), (140.0, 0.6)]);
        let b = lobes(&[(61.0, 0.9), (141.5, 0.7)]);
        let out = suppress_multipath(&[a, b], &SuppressionConfig::default());
        assert!(out.has_peak_near(60f64.to_radians(), 0.05, 0.1));
        assert!(out.has_peak_near(140f64.to_radians(), 0.05, 0.1));
    }

    #[test]
    fn moved_reflection_is_removed() {
        // Direct stable at 60°; reflection moves 140° → 120°.
        let a = lobes(&[(60.0, 1.0), (140.0, 0.8)]);
        let b = lobes(&[(60.5, 1.0), (120.0, 0.8)]);
        let out = suppress_multipath(&[a, b], &SuppressionConfig::default());
        assert!(
            out.has_peak_near(60f64.to_radians(), 0.05, 0.2),
            "direct kept"
        );
        assert!(
            !out.has_peak_near(140f64.to_radians(), 0.05, 0.2),
            "moved reflection attenuated below threshold"
        );
    }

    #[test]
    fn vanished_reflection_is_removed() {
        let a = lobes(&[(60.0, 1.0), (200.0, 0.5)]);
        let b = lobes(&[(60.0, 1.0)]);
        let out = suppress_multipath(&[a, b], &SuppressionConfig::default());
        assert!(!out.has_peak_near(200f64.to_radians(), 0.05, 0.1));
    }

    #[test]
    fn all_quorum_requires_pairing_with_every_spectrum() {
        // Reflection stable in spectrum 2 but moved in spectrum 3:
        // removed under All, kept under the default Majority (1 of 2).
        let a = lobes(&[(60.0, 1.0), (140.0, 0.8)]);
        let b = lobes(&[(60.0, 1.0), (140.0, 0.8)]);
        let c = lobes(&[(60.0, 1.0), (110.0, 0.8)]);
        let strict = SuppressionConfig {
            quorum: MatchQuorum::All,
            ..SuppressionConfig::default()
        };
        let out = suppress_multipath(&[a.clone(), b.clone(), c.clone()], &strict);
        assert!(out.has_peak_near(60f64.to_radians(), 0.05, 0.2));
        assert!(!out.has_peak_near(140f64.to_radians(), 0.05, 0.2));

        let out = suppress_multipath(&[a, b, c], &SuppressionConfig::default());
        assert!(out.has_peak_near(140f64.to_radians(), 0.05, 0.2));
    }

    #[test]
    fn majority_quorum_protects_peak_that_wobbles_once() {
        // Direct peak misses the 5° window in one of three frames — the
        // Majority quorum keeps it, All would kill it.
        let a = lobes(&[(60.0, 1.0)]);
        let b = lobes(&[(62.0, 1.0)]);
        let c = lobes(&[(70.0, 1.0)]); // wobbled beyond tolerance
        let out = suppress_multipath(
            &[a.clone(), b.clone(), c.clone()],
            &SuppressionConfig::default(),
        );
        assert!(out.has_peak_near(60f64.to_radians(), 0.05, 0.2));
        let strict = SuppressionConfig {
            quorum: MatchQuorum::All,
            ..SuppressionConfig::default()
        };
        let out = suppress_multipath(&[a, b, c], &strict);
        // Under All the (only) lobe is attenuated; relative peak-finding
        // would still see it as the max, so check the absolute value.
        assert!(out.sample(60f64.to_radians()) < 0.2);
    }

    #[test]
    fn single_spectrum_passes_through() {
        let a = lobes(&[(60.0, 1.0), (140.0, 0.8)]);
        let out = suppress_multipath(std::slice::from_ref(&a), &SuppressionConfig::default());
        assert_eq!(out, a);
    }

    #[test]
    fn both_unchanged_keeps_everything() {
        // Table 1's second row: nothing changes — "we keep all of them
        // without any deleterious consequences".
        let a = lobes(&[(80.0, 1.0), (150.0, 0.7), (220.0, 0.4)]);
        let out = suppress_multipath(&[a.clone(), a.clone()], &SuppressionConfig::default());
        assert_eq!(out.find_peaks(0.1).len(), 3);
    }

    #[test]
    fn classify_peak_detects_movement() {
        let cfg = SuppressionConfig::default();
        let a = lobes(&[(60.0, 1.0)]);
        let stable = lobes(&[(62.0, 1.0)]);
        let moved = lobes(&[(80.0, 1.0)]);
        assert_eq!(
            classify_peak(&a, &stable, 60f64.to_radians(), &cfg),
            Some(PeakFate::Unchanged)
        );
        assert_eq!(
            classify_peak(&a, &moved, 60f64.to_radians(), &cfg),
            Some(PeakFate::Changed)
        );
        // No peak near the queried bearing ⇒ no classification.
        assert_eq!(classify_peak(&a, &stable, 170f64.to_radians(), &cfg), None);
    }

    #[test]
    fn classify_stability_joint_outcomes() {
        let cfg = SuppressionConfig::default();
        let before = lobes(&[(60.0, 1.0), (140.0, 0.8)]);
        // Direct same, reflection changed (the common 71% case).
        let o = classify_stability(
            &before,
            &lobes(&[(60.0, 1.0), (115.0, 0.8)]),
            60f64.to_radians(),
            &cfg,
        )
        .unwrap();
        assert!(o.direct_unchanged && !o.reflections_unchanged);
        // Direct changed, reflection same (the rare 3% failure case).
        let o = classify_stability(
            &before,
            &lobes(&[(75.0, 1.0), (140.0, 0.8)]),
            60f64.to_radians(),
            &cfg,
        )
        .unwrap();
        assert!(!o.direct_unchanged && o.reflections_unchanged);
    }

    #[test]
    #[should_panic(expected = "at least one spectrum")]
    fn empty_group_panics() {
        suppress_multipath(&[], &SuppressionConfig::default());
    }
}
