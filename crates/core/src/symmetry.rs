//! Array symmetry removal (paper §2.3.4).
//!
//! A linear array cannot tell which side a signal arrives from: `cosθ` is
//! even, so the MUSIC spectrum is a 180° spectrum mirrored to 360°. With
//! many APs the synthesis step washes the ghost side out, but with few APs
//! it produces false locations. ArrayTrack's fix: capture a ninth antenna
//! *not in the row* (via diversity synthesis), compute "the total power on
//! each side, and remove the half with less power".
//!
//! We score each side with a Bartlett beamformer over the full
//! (in-row + off-row) array, whose steering vectors are *not* mirror
//! symmetric, then zero the weaker half of the MUSIC spectrum.

use crate::spectrum::AoaSpectrum;
use crate::steering::{array_frame_positions, general_steering};
use at_dsp::SnapshotBlock;
use std::f64::consts::{PI, TAU};

/// Bartlett (delay-and-sum) power of the full array toward bearing `theta`.
///
/// `block` must hold the in-row antennas in order followed by the off-row
/// antenna as its last row; `elements` is the in-row count.
pub fn bartlett_power(block: &SnapshotBlock, elements: usize, theta: f64) -> f64 {
    assert_eq!(
        block.antennas(),
        elements + 1,
        "expected {elements} in-row antennas plus the off-row element"
    );
    let positions = array_frame_positions(elements, true);
    let a = general_steering(&positions, theta);
    let rxx = block.correlation_matrix();
    let ra = rxx.mul_vec(&a);
    a.dot(&ra).re.max(0.0)
}

/// Total Bartlett power over each side of the array axis:
/// `(power over θ ∈ (0,π), power over θ ∈ (π,2π))`.
pub fn side_powers(block: &SnapshotBlock, elements: usize, bins: usize) -> (f64, f64) {
    let positions = array_frame_positions(elements, true);
    let rxx = block.correlation_matrix();
    let mut up = 0.0;
    let mut down = 0.0;
    for i in 0..bins {
        let theta = i as f64 * TAU / bins as f64;
        let a = general_steering(&positions, theta);
        let p = a.dot(&rxx.mul_vec(&a)).re.max(0.0);
        if theta < PI {
            up += p;
        } else {
            down += p;
        }
    }
    (up, down)
}

/// Which half-plane a signal is on, as decided by the off-row antenna.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Bearings in `(0, π)` — the off-row antenna's side.
    Upper,
    /// Bearings in `(π, 2π)`.
    Lower,
}

/// Decides the true side of arrival from the captured block by scanning the
/// full-array Bartlett beamformer over the circle and taking the side of
/// its global maximum. (Summing *all* power per side, as the paper words
/// it, washes out the off-row antenna's small discrimination near the array
/// axis; comparing the mirror-image peak values keeps it.)
pub fn dominant_side(block: &SnapshotBlock, elements: usize) -> Side {
    let positions = array_frame_positions(elements, true);
    let rxx = block.correlation_matrix();
    let bins = 720;
    let mut best_theta = 0.0;
    let mut best = f64::NEG_INFINITY;
    for i in 0..bins {
        let theta = i as f64 * TAU / bins as f64;
        let a = general_steering(&positions, theta);
        let p = a.dot(&rxx.mul_vec(&a)).re;
        if p > best {
            best = p;
            best_theta = theta;
        }
    }
    if best_theta < PI {
        Side::Upper
    } else {
        Side::Lower
    }
}

/// Removes the mirror ambiguity from a MUSIC spectrum: zeroes the half of
/// the circle with less full-array power (paper §2.3.4, taken literally).
/// Returns the decided side.
///
/// In strong multipath a reflection on the ghost side can win the whole
/// -side vote and erase the true direct path; prefer
/// [`resolve_mirror_peaks`] (the pipeline default) which decides per peak.
pub fn remove_symmetry(spectrum: &mut AoaSpectrum, block: &SnapshotBlock, elements: usize) -> Side {
    let side = dominant_side(block, elements);
    let keep_upper = side == Side::Upper;
    let n = spectrum.bins();
    for i in 0..n {
        let theta = i as f64 * TAU / n as f64;
        let upper = theta < PI;
        if upper != keep_upper {
            spectrum.values_mut()[i] = 0.0;
        }
    }
    side
}

/// Attenuation applied to a resolved ghost lobe (strong veto, but not a
/// hard zero: a wrong call must not erase an AP's contribution entirely).
const GHOST_ATTENUATION: f64 = 0.1;

/// Minimum phase separation (radians) between the two mirror hypotheses'
/// off-row predictions before a decision is attempted. Separation is
/// `2π·(offset/λ)·2·sinθ = π·sinθ`; below this the off-row antenna simply
/// can't tell the sides apart and both lobes are kept.
const MIN_DISCRIMINATION: f64 = 0.5;

/// Relative decision margin: the winning hypothesis must beat the loser by
/// this fraction of the evidence magnitude, or the pair is left alone.
const MIN_MARGIN: f64 = 0.3;

/// Per-peak mirror resolution (the pipeline's default §2.3.4 realization).
///
/// For each spectrum peak pair `(θ, 2π−θ)`:
/// 1. beamform the in-row antennas toward the (side-agnostic) bearing to
///    isolate that path's waveform `ŝ(t)`;
/// 2. correlate the off-row antenna against `ŝ(t)` — the phase of that
///    correlation is the off-row antenna's measured phase for this path;
/// 3. score it against the two hypotheses' predicted phases and attenuate
///    the loser's lobe.
///
/// Skips pairs where the hypotheses are nearly indistinguishable (near the
/// array axis) or the evidence margin is small, so an uncertain decision
/// never destroys information.
pub fn resolve_mirror_peaks(spectrum: &mut AoaSpectrum, block: &SnapshotBlock, elements: usize) {
    assert_eq!(
        block.antennas(),
        elements + 1,
        "expected {elements} in-row antennas plus the off-row element"
    );
    let positions = array_frame_positions(elements, true);
    let lambda = at_channel::wavelength();
    let k = block.snapshots();

    // Work on a snapshot of the peak list (in the upper half-plane only —
    // each has its mirror in the lower half).
    let peaks: Vec<f64> = spectrum
        .find_peaks(0.05)
        .iter()
        .map(|p| p.theta)
        .filter(|&t| t > 0.0 && t < PI)
        .collect();

    for theta in peaks {
        let discrimination = PI * theta.sin();
        if discrimination.abs() < MIN_DISCRIMINATION {
            continue;
        }
        let mirror = TAU - theta;

        // In-row beamformer toward the bearing (side-agnostic: the in-row
        // steering is identical for θ and its mirror).
        let a_in = general_steering(&positions[..elements], theta);
        // Off-row correlation c = Σ_t x9(t)·conj(ŝ(t)).
        let mut c = at_linalg::Complex64::ZERO;
        for t in 0..k {
            let mut shat = at_linalg::Complex64::ZERO;
            for m in 0..elements {
                shat += a_in[m].conj() * block.stream(m)[t];
            }
            c += block.stream(elements)[t] * shat.conj();
        }
        if c.abs() == 0.0 {
            continue;
        }

        // Predicted off-row phasor per hypothesis.
        let predict = |t: f64| {
            let u = at_channel::geometry::Point::unit(t);
            at_linalg::Complex64::cis(2.0 * PI * positions[elements].dot(u) / lambda)
        };
        let score_up = (c * predict(theta).conj()).re;
        let score_down = (c * predict(mirror).conj()).re;
        if (score_up - score_down).abs() < MIN_MARGIN * c.abs() {
            continue;
        }
        let loser = if score_up > score_down { mirror } else { theta };
        spectrum.scale_lobe(loser, GHOST_ATTENUATION);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{music_spectrum, MusicConfig};
    use at_channel::geometry::pt;
    use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
    use at_linalg::Complex64;

    /// Captures a 9-row snapshot block (8 in-row + off-row) from a client
    /// at bearing `theta` via the channel simulator.
    fn capture_at(theta: f64, dist: f64) -> SnapshotBlock {
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8).with_offrow_element();
        let tx = Transmitter::at(array.point_at(theta, dist));
        let rx = sim.receive(
            &tx,
            &array,
            |t| Complex64::cis(TAU * 1e6 * t),
            0.0,
            0.5e-6,
            at_dsp::SAMPLE_RATE_HZ,
        );
        SnapshotBlock::new(rx.into_iter().map(|s| s[..10].to_vec()).collect())
    }

    #[test]
    fn upper_source_detected_upper() {
        for deg in [30.0f64, 75.0, 120.0] {
            let block = capture_at(deg.to_radians(), 10.0);
            assert_eq!(dominant_side(&block, 8), Side::Upper, "{deg}°");
        }
    }

    #[test]
    fn lower_source_detected_lower() {
        for deg in [200.0f64, 270.0, 330.0] {
            let block = capture_at(deg.to_radians(), 10.0);
            assert_eq!(dominant_side(&block, 8), Side::Lower, "{deg}°");
        }
    }

    #[test]
    fn removal_zeroes_ghost_half() {
        let theta = 250f64.to_radians();
        let block = capture_at(theta, 8.0);
        // MUSIC from the in-row antennas only (mirror-symmetric).
        let inrow = SnapshotBlock::new((0..8).map(|m| block.stream(m).to_vec()).collect());
        let mut spec = music_spectrum(&inrow, &MusicConfig::default());
        let ghost = TAU - theta; // mirrored bearing in (0, π)
        assert!(spec.has_peak_near(ghost, 0.05, 0.3), "mirror peak expected");
        let side = remove_symmetry(&mut spec, &block, 8);
        assert_eq!(side, Side::Lower);
        assert!(
            !spec.has_peak_near(ghost, 0.05, 0.3),
            "ghost must be removed"
        );
        assert!(
            spec.has_peak_near(theta, 0.05, 0.3),
            "true peak must survive"
        );
    }

    #[test]
    fn bartlett_power_peaks_at_true_bearing() {
        let theta = 100f64.to_radians();
        let block = capture_at(theta, 15.0);
        let at_true = bartlett_power(&block, 8, theta);
        let at_mirror = bartlett_power(&block, 8, TAU - theta);
        let at_far = bartlett_power(&block, 8, theta + 1.0);
        assert!(at_true > at_mirror, "true {at_true} vs mirror {at_mirror}");
        assert!(at_true > at_far);
    }

    #[test]
    #[should_panic(expected = "off-row element")]
    fn missing_offrow_row_panics() {
        let block = SnapshotBlock::new(vec![vec![Complex64::ONE; 4]; 8]);
        bartlett_power(&block, 8, 1.0);
    }
}
