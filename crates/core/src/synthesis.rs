//! AoA spectra synthesis: from per-AP spectra to a location (paper §2.5).
//!
//! Each AP contributes a (processed) AoA spectrum `Pᵢ(θ)`. The likelihood
//! of the client being at position `x` is the product of every AP's
//! spectrum evaluated at the bearing from that AP to `x` (eq. 8):
//!
//! ```text
//! L(x) = Π_i Pᵢ(θᵢ(x))
//! ```
//!
//! ArrayTrack searches a 10 cm grid for the three highest-likelihood cells
//! and refines each with hill climbing.

use crate::spectrum::AoaSpectrum;
use at_channel::geometry::{pt, Point};

/// Pose of an AP's antenna array in the floorplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApPose {
    /// Array centroid position.
    pub center: Point,
    /// Array axis orientation, radians from +x.
    pub axis_angle: f64,
}

impl ApPose {
    /// Bearing of `x` in this AP's array frame, radians `[0, 2π)`.
    pub fn bearing_to(&self, x: Point) -> f64 {
        at_channel::geometry::wrap_angle(x.sub(self.center).angle() - self.axis_angle)
    }
}

/// One AP's contribution to localization: where it is and what it heard.
#[derive(Clone, Debug)]
pub struct ApObservation {
    /// The AP's array pose.
    pub pose: ApPose,
    /// The processed AoA spectrum (normalized internally before fusion).
    pub spectrum: AoaSpectrum,
}

/// Floor applied to each (normalized) spectrum factor in the product.
///
/// An AoA spectrum can assert presence but never certify absence: a
/// suppressed/attenuated bin must act as a *mild* veto, not a hard zero —
/// otherwise one AP whose direct peak was lost (blocked path, wrong
/// suppression or symmetry call) poisons the entire product and throws the
/// estimate tens of meters (the paper's §6 NLoS discussion asserts one
/// blocked direct path "degrades the performance ... slightly but not
/// much", which requires exactly this robustness). 0.05 means a fully
/// vetoing AP costs ~1.3 orders of magnitude per extra AP of agreement.
pub(crate) const LIKELIHOOD_FLOOR: f64 = 0.05;

/// The rectangular search region and grid resolution for localization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchRegion {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
    /// Grid pitch in meters (paper: 10 cm).
    pub resolution: f64,
}

impl SearchRegion {
    /// A region covering `[min, max]` at the paper's 10 cm pitch.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(max.x > min.x && max.y > min.y, "degenerate region");
        Self {
            min,
            max,
            resolution: 0.1,
        }
    }

    /// Overrides the grid resolution.
    pub fn with_resolution(mut self, resolution: f64) -> Self {
        assert!(resolution > 0.0);
        self.resolution = resolution;
        self
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_size(&self) -> (usize, usize) {
        let nx = ((self.max.x - self.min.x) / self.resolution).floor() as usize + 1;
        let ny = ((self.max.y - self.min.y) / self.resolution).floor() as usize + 1;
        (nx, ny)
    }

    /// The center of grid cell `(ix, iy)`.
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        pt(
            self.min.x + ix as f64 * self.resolution,
            self.min.y + iy as f64 * self.resolution,
        )
    }

    /// Whether a point lies inside the region.
    pub fn contains(&self, p: Point) -> bool {
        (self.min.x..=self.max.x).contains(&p.x) && (self.min.y..=self.max.y).contains(&p.y)
    }
}

/// A computed likelihood heatmap (Fig. 14's visualization data).
#[derive(Clone, Debug)]
pub struct Heatmap {
    /// The region the map covers.
    pub region: SearchRegion,
    /// Row-major values, `ny` rows of `nx`.
    pub values: Vec<f64>,
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
}

impl Heatmap {
    /// Value at grid cell `(ix, iy)`.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.values[iy * self.nx + ix]
    }

    /// The `k` highest-valued cell centers, descending.
    ///
    /// Selects the `k` survivors in O(n) first and only sorts those — for
    /// the usual `k = 3` over a ~10⁵-cell office grid, that's a partition
    /// instead of a full sort of the index vector.
    pub fn top_cells(&self, k: usize) -> Vec<(Point, f64)> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        let k = k.min(idx.len());
        if k == 0 {
            return Vec::new();
        }
        let desc = |a: &usize, b: &usize| {
            self.values[*b]
                .partial_cmp(&self.values[*a])
                .expect("finite likelihoods")
        };
        if k < idx.len() {
            idx.select_nth_unstable_by(k - 1, desc);
            idx.truncate(k);
        }
        idx.sort_unstable_by(desc);
        idx.into_iter()
            .map(|i| {
                let iy = i / self.nx;
                let ix = i % self.nx;
                (self.region.cell_center(ix, iy), self.values[i])
            })
            .collect()
    }
}

/// A final position estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocationEstimate {
    /// Estimated client position.
    pub position: Point,
    /// Likelihood value at the estimate (comparable only within one query).
    pub likelihood: f64,
}

/// Evaluates the synthesis likelihood `L(x)` (eq. 8) for normalized
/// observations.
pub fn likelihood(observations: &[ApObservation], x: Point) -> f64 {
    observations
        .iter()
        .map(|o| {
            let theta = o.pose.bearing_to(x);
            o.spectrum.sample(theta).max(LIKELIHOOD_FLOOR)
        })
        .product()
}

/// Normalizes all observations' spectra to peak 1 (so no AP dominates by
/// scale) and returns the prepared set.
pub fn normalize_observations(observations: &[ApObservation]) -> Vec<ApObservation> {
    observations
        .iter()
        .map(|o| ApObservation {
            pose: o.pose,
            spectrum: o.spectrum.normalized(),
        })
        .collect()
}

/// Computes the full likelihood heatmap over a region (Fig. 14).
pub fn heatmap(observations: &[ApObservation], region: SearchRegion) -> Heatmap {
    let obs = normalize_observations(observations);
    let (nx, ny) = region.grid_size();
    let mut values = Vec::with_capacity(nx * ny);
    for iy in 0..ny {
        for ix in 0..nx {
            values.push(likelihood(&obs, region.cell_center(ix, iy)));
        }
    }
    Heatmap {
        region,
        values,
        nx,
        ny,
    }
}

/// Full localization: 10 cm grid search, then hill climbing from the three
/// best cells (paper §2.5).
pub fn localize(observations: &[ApObservation], region: SearchRegion) -> LocationEstimate {
    assert!(!observations.is_empty(), "need at least one AP observation");
    let obs = normalize_observations(observations);
    let map = heatmap(&obs, region);
    let starts = map.top_cells(3);
    let mut best = LocationEstimate {
        position: starts[0].0,
        likelihood: starts[0].1,
    };
    for (start, _) in starts {
        let refined = hill_climb(&obs, start, region);
        if refined.likelihood > best.likelihood {
            best = refined;
        }
    }
    best
}

/// Pattern-search hill climbing: evaluate the 8-neighborhood at a step that
/// starts at the grid pitch and halves on failure, until sub-millimeter.
/// Shared with the precomputed [`crate::engine::LocalizationEngine`] so
/// both search paths refine identically from the same starts.
pub(crate) fn hill_climb(
    observations: &[ApObservation],
    start: Point,
    region: SearchRegion,
) -> LocationEstimate {
    let mut pos = start;
    let mut val = likelihood(observations, pos);
    let mut step = region.resolution;
    while step > 5e-4 {
        let mut improved = false;
        for dy in [-1.0, 0.0, 1.0] {
            for dx in [-1.0, 0.0, 1.0] {
                if dx == 0.0 && dy == 0.0 {
                    continue;
                }
                let cand = pt(pos.x + dx * step, pos.y + dy * step);
                if !region.contains(cand) {
                    continue;
                }
                let v = likelihood(observations, cand);
                if v > val {
                    val = v;
                    pos = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step /= 2.0;
        }
    }
    LocationEstimate {
        position: pos,
        likelihood: val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::angle_diff;
    use std::f64::consts::TAU;

    /// A spectrum with a single Gaussian lobe at `deg` degrees.
    fn lobe(deg: f64, width: f64) -> AoaSpectrum {
        AoaSpectrum::from_fn(720, |t| {
            let d = angle_diff(t, deg.to_radians());
            (-(d / width).powi(2)).exp() + 1e-6
        })
    }

    /// An observation whose spectrum points exactly at `target`.
    fn observing(center: Point, axis: f64, target: Point) -> ApObservation {
        let pose = ApPose {
            center,
            axis_angle: axis,
        };
        let theta = pose.bearing_to(target);
        ApObservation {
            pose,
            spectrum: lobe(theta.to_degrees(), 0.05),
        }
    }

    #[test]
    fn bearing_accounts_for_axis_rotation() {
        let pose = ApPose {
            center: pt(0.0, 0.0),
            axis_angle: TAU / 4.0,
        };
        // A point due +y is at bearing 0 in the rotated frame.
        assert!(pose.bearing_to(pt(0.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn two_aps_triangulate() {
        let target = pt(6.0, 4.0);
        let obs = vec![
            observing(pt(0.0, 0.0), 0.0, target),
            observing(pt(12.0, 0.0), 0.0, target),
        ];
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 10.0));
        let est = localize(&obs, region);
        assert!(
            est.position.distance(target) < 0.05,
            "estimate {:?} vs target {target:?}",
            est.position
        );
    }

    #[test]
    fn three_aps_beat_two_with_symmetric_ghosts() {
        // Without symmetry removal, spectra are mirrored; ghosts can fool
        // two APs but a third disambiguates.
        let target = pt(5.0, 3.0);
        let mirror = |o: &ApObservation| {
            // Mirror-symmetric spectrum: add the reflected lobe.
            let theta = o.pose.bearing_to(target);
            let spec = AoaSpectrum::from_fn(720, |t| {
                let d1 = angle_diff(t, theta);
                let d2 = angle_diff(t, TAU - theta);
                (-(d1 / 0.05).powi(2)).exp() + (-(d2 / 0.05).powi(2)).exp() + 1e-6
            });
            ApObservation {
                pose: o.pose,
                spectrum: spec,
            }
        };
        let o1 = mirror(&observing(pt(0.0, 0.0), 0.0, target));
        let o2 = mirror(&observing(pt(10.0, 0.0), 0.0, target));
        let o3 = mirror(&observing(pt(5.0, 8.0), 1.0, target));
        let region = SearchRegion::new(pt(-1.0, -7.0), pt(11.0, 9.0));
        let est3 = localize(&[o1, o2, o3], region);
        assert!(
            est3.position.distance(target) < 0.1,
            "3-AP estimate {:?}",
            est3.position
        );
    }

    #[test]
    fn heatmap_peak_matches_localize() {
        let target = pt(3.0, 2.0);
        let obs = vec![
            observing(pt(0.0, 0.0), 0.3, target),
            observing(pt(8.0, 1.0), 2.0, target),
            observing(pt(4.0, 7.0), 4.0, target),
        ];
        let region = SearchRegion::new(pt(0.0, 0.0), pt(8.0, 7.0));
        let map = heatmap(&obs, region);
        let (top, _) = map.top_cells(1)[0];
        assert!(top.distance(target) < 0.2);
        let est = localize(&obs, region);
        assert!(est.position.distance(target) < 0.05);
        assert!(est.likelihood >= map.top_cells(1)[0].1 * 0.999);
    }

    #[test]
    fn hill_climbing_refines_below_grid_resolution() {
        let target = pt(3.033, 2.047); // off-grid target
        let obs = vec![
            observing(pt(0.0, 0.0), 0.0, target),
            observing(pt(8.0, 0.0), 0.0, target),
            observing(pt(4.0, 7.0), 0.0, target),
        ];
        let region = SearchRegion::new(pt(0.0, 0.0), pt(8.0, 7.0));
        let est = localize(&obs, region);
        // Sub-resolution accuracy thanks to hill climbing.
        assert!(est.position.distance(target) < 0.04, "{:?}", est.position);
    }

    #[test]
    fn likelihood_floor_prevents_hard_zeros() {
        let pose = ApPose {
            center: pt(0.0, 0.0),
            axis_angle: 0.0,
        };
        let mut spec = lobe(90.0, 0.05);
        for v in spec.values_mut().iter_mut() {
            *v = 0.0; // fully zeroed spectrum (e.g. aggressive removal)
        }
        // from_values forbids zeros? No: zeros are allowed, peaks aren't.
        let obs = vec![ApObservation {
            pose,
            spectrum: spec,
        }];
        let l = likelihood(&normalize_observations(&obs), pt(1.0, 1.0));
        assert!(l > 0.0);
    }

    #[test]
    fn grid_geometry() {
        let region = SearchRegion::new(pt(0.0, 0.0), pt(1.0, 0.5)).with_resolution(0.25);
        let (nx, ny) = region.grid_size();
        assert_eq!((nx, ny), (5, 3));
        assert_eq!(region.cell_center(0, 0), pt(0.0, 0.0));
        assert_eq!(region.cell_center(4, 2), pt(1.0, 0.5));
        assert!(region.contains(pt(0.5, 0.25)));
        assert!(!region.contains(pt(1.5, 0.25)));
    }

    #[test]
    #[should_panic(expected = "at least one AP")]
    fn empty_observations_panic() {
        localize(&[], SearchRegion::new(pt(0.0, 0.0), pt(1.0, 1.0)));
    }
}
