//! Position tracking across repeated location fixes.
//!
//! The paper's motivating applications (§1: augmented reality, navigation)
//! consume a *stream* of fixes at ~100 ms intervals, not isolated
//! estimates. A constant-velocity Kalman filter over the synthesis
//! output smooths measurement noise and rides out the occasional bad fix
//! (e.g. a frame whose direct path was blocked) — the natural companion to
//! the paper's per-fix pipeline, built only on `std`.
//!
//! State is `[x, y, vx, vy]` with white-acceleration process noise; the
//! measurement is the 2D position fix from
//! [`localize`](crate::synthesis::localize).

use at_channel::geometry::{pt, Point};

/// Tracker tuning.
#[derive(Clone, Copy, Debug)]
pub struct TrackerConfig {
    /// Standard deviation of the white acceleration driving the model,
    /// m/s². ~1 m/s² suits walking humans.
    pub accel_sigma: f64,
    /// Standard deviation of a position fix, meters (ArrayTrack: ~0.3 m).
    pub fix_sigma: f64,
    /// Fixes farther than this many sigmas from the prediction are treated
    /// as outliers: fused with inflated variance instead of at face value.
    pub gate_sigmas: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            accel_sigma: 1.0,
            fix_sigma: 0.35,
            gate_sigmas: 4.0,
        }
    }
}

type Mat4 = [[f64; 4]; 4];

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for k in 0..4 {
            if row[k] == 0.0 {
                continue;
            }
            for j in 0..4 {
                c[i][j] += row[k] * b[k][j];
            }
        }
    }
    c
}

fn mat_transpose(a: &Mat4) -> Mat4 {
    let mut t = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            t[j][i] = *v;
        }
    }
    t
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] + b[i][j];
        }
    }
    c
}

/// A constant-velocity Kalman tracker over 2D position fixes.
#[derive(Clone, Debug)]
pub struct Tracker {
    cfg: TrackerConfig,
    /// State `[x, y, vx, vy]`; `None` until the first fix arrives.
    state: Option<[f64; 4]>,
    /// State covariance.
    cov: Mat4,
    /// Count of fixes fused.
    fixes: u64,
    /// Count of fixes flagged as outliers by the gate.
    outliers: u64,
}

impl Tracker {
    /// A fresh tracker.
    pub fn new(cfg: TrackerConfig) -> Self {
        Self {
            cfg,
            state: None,
            cov: [[0.0; 4]; 4],
            fixes: 0,
            outliers: 0,
        }
    }

    /// Whether the tracker has been initialized by a fix.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Number of fixes fused so far.
    pub fn fix_count(&self) -> u64 {
        self.fixes
    }

    /// Number of fixes the outlier gate down-weighted.
    pub fn outlier_count(&self) -> u64 {
        self.outliers
    }

    /// The current position estimate (`None` before the first fix).
    pub fn position(&self) -> Option<Point> {
        self.state.map(|s| pt(s[0], s[1]))
    }

    /// The current velocity estimate in m/s (`None` before the first fix).
    pub fn velocity(&self) -> Option<(f64, f64)> {
        self.state.map(|s| (s[2], s[3]))
    }

    /// Position predicted `dt` seconds ahead of the current state.
    pub fn predict(&self, dt: f64) -> Option<Point> {
        self.state.map(|s| pt(s[0] + s[2] * dt, s[1] + s[3] * dt))
    }

    /// Fuses a position fix taken `dt` seconds after the previous one and
    /// returns the filtered position estimate.
    ///
    /// # Panics
    /// Panics on non-positive `dt` after initialization or non-finite fix.
    pub fn update(&mut self, fix: Point, dt: f64) -> Point {
        assert!(fix.x.is_finite() && fix.y.is_finite(), "non-finite fix");
        let r_nominal = self.cfg.fix_sigma * self.cfg.fix_sigma;
        let Some(state) = self.state else {
            // Initialize at the first fix with loose velocity knowledge.
            self.state = Some([fix.x, fix.y, 0.0, 0.0]);
            self.cov = [[0.0; 4]; 4];
            self.cov[0][0] = r_nominal;
            self.cov[1][1] = r_nominal;
            self.cov[2][2] = 4.0; // ±2 m/s prior velocity
            self.cov[3][3] = 4.0;
            self.fixes = 1;
            return fix;
        };
        assert!(dt > 0.0, "dt must be positive");

        // Predict: x' = F x, P' = F P Fᵀ + Q.
        let f: Mat4 = [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let q_a = self.cfg.accel_sigma * self.cfg.accel_sigma;
        let (d2, d3, d4) = (dt * dt, dt * dt * dt / 2.0, dt * dt * dt * dt / 4.0);
        // Discrete white-acceleration Q per axis: [[t⁴/4, t³/2], [t³/2, t²]]·σ².
        let mut q = [[0.0; 4]; 4];
        q[0][0] = d4 * q_a;
        q[1][1] = d4 * q_a;
        q[0][2] = d3 * q_a;
        q[2][0] = d3 * q_a;
        q[1][3] = d3 * q_a;
        q[3][1] = d3 * q_a;
        q[2][2] = d2 * q_a;
        q[3][3] = d2 * q_a;

        let pred = [
            state[0] + state[2] * dt,
            state[1] + state[3] * dt,
            state[2],
            state[3],
        ];
        let p_pred = mat_add(&mat_mul(&mat_mul(&f, &self.cov), &mat_transpose(&f)), &q);

        // Innovation and outlier gate.
        let iy = [fix.x - pred[0], fix.y - pred[1]];
        let sx = p_pred[0][0] + r_nominal;
        let sy = p_pred[1][1] + r_nominal;
        let maha2 = iy[0] * iy[0] / sx + iy[1] * iy[1] / sy;
        let gate = self.cfg.gate_sigmas * self.cfg.gate_sigmas;
        let r = if maha2 > gate {
            self.outliers += 1;
            // A gated fix still carries information; fuse it weakly in
            // proportion to how far outside the gate it fell.
            r_nominal * (maha2 / gate)
        } else {
            r_nominal
        };

        // Update (H selects position; R = r·I₂).
        let sx = p_pred[0][0] + r;
        let sy = p_pred[1][1] + r;
        // Kalman gain columns for the x and y measurements.
        let kx = [
            p_pred[0][0] / sx,
            p_pred[1][0] / sx,
            p_pred[2][0] / sx,
            p_pred[3][0] / sx,
        ];
        let ky = [
            p_pred[0][1] / sy,
            p_pred[1][1] / sy,
            p_pred[2][1] / sy,
            p_pred[3][1] / sy,
        ];
        let mut new_state = pred;
        for i in 0..4 {
            new_state[i] += kx[i] * iy[0] + ky[i] * iy[1];
        }
        // Joseph-free covariance update: P = (I − K H) P'.
        let mut p_new = p_pred;
        for i in 0..4 {
            for j in 0..4 {
                p_new[i][j] = p_pred[i][j] - kx[i] * p_pred[0][j] - ky[i] * p_pred[1][j];
            }
        }

        self.state = Some(new_state);
        self.cov = p_new;
        self.fixes += 1;
        pt(new_state[0], new_state[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy(p: Point, sigma: f64, rng: &mut StdRng) -> Point {
        let g = |r: &mut StdRng| {
            let u1: f64 = 1.0 - r.gen::<f64>();
            let u2: f64 = r.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        pt(p.x + sigma * g(rng), p.y + sigma * g(rng))
    }

    #[test]
    fn first_fix_initializes() {
        let mut t = Tracker::new(TrackerConfig::default());
        assert!(!t.is_initialized());
        assert_eq!(t.position(), None);
        let out = t.update(pt(3.0, 4.0), 0.1);
        assert_eq!(out, pt(3.0, 4.0));
        assert!(t.is_initialized());
        assert_eq!(t.fix_count(), 1);
    }

    #[test]
    fn static_target_filtered_below_fix_noise() {
        let target = pt(10.0, 5.0);
        let sigma = 0.4;
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tracker::new(TrackerConfig::default());
        let mut raw_err = 0.0;
        let mut filt_err = 0.0;
        let n = 60;
        for i in 0..n {
            let fix = noisy(target, sigma, &mut rng);
            let est = t.update(fix, 0.1);
            if i >= 10 {
                raw_err += fix.distance(target);
                filt_err += est.distance(target);
            }
        }
        assert!(
            filt_err < 0.5 * raw_err,
            "filter should at least halve noise: {filt_err:.2} vs {raw_err:.2}"
        );
    }

    #[test]
    fn tracks_constant_velocity_and_estimates_speed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Tracker::new(TrackerConfig::default());
        let v = (1.2, -0.4); // m/s
        let dt = 0.1;
        for i in 0..80 {
            let truth = pt(v.0 * i as f64 * dt, 8.0 + v.1 * i as f64 * dt);
            t.update(noisy(truth, 0.3, &mut rng), dt);
        }
        let (vx, vy) = t.velocity().unwrap();
        assert!((vx - v.0).abs() < 0.25, "vx {vx}");
        assert!((vy - v.1).abs() < 0.25, "vy {vy}");
        // Prediction extrapolates along the velocity.
        let now = t.position().unwrap();
        let ahead = t.predict(1.0).unwrap();
        assert!((ahead.x - now.x - vx).abs() < 1e-9);
    }

    #[test]
    fn outlier_fix_is_gated() {
        let target = pt(5.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Tracker::new(TrackerConfig::default());
        for _ in 0..30 {
            t.update(noisy(target, 0.2, &mut rng), 0.1);
        }
        let before = t.position().unwrap();
        // A wild 20 m outlier (e.g. ghost-location fix).
        let est = t.update(pt(25.0, 5.0), 0.1);
        assert!(t.outlier_count() >= 1);
        assert!(
            est.distance(before) < 3.0,
            "outlier moved the track {:.2} m",
            est.distance(before)
        );
        // The track recovers and stays near the target.
        for _ in 0..10 {
            t.update(noisy(target, 0.2, &mut rng), 0.1);
        }
        assert!(t.position().unwrap().distance(target) < 0.5);
    }

    #[test]
    fn covariance_stays_finite_over_long_runs() {
        let mut t = Tracker::new(TrackerConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..5000 {
            let truth = pt(
                (i as f64 * 0.01).sin() * 5.0,
                (i as f64 * 0.007).cos() * 5.0,
            );
            let est = t.update(noisy(truth, 0.3, &mut rng), 0.1);
            assert!(est.x.is_finite() && est.y.is_finite(), "step {i}");
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics_after_init() {
        let mut t = Tracker::new(TrackerConfig::default());
        t.update(pt(0.0, 0.0), 0.1);
        t.update(pt(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite fix")]
    fn nan_fix_panics() {
        let mut t = Tracker::new(TrackerConfig::default());
        t.update(pt(f64::NAN, 0.0), 0.1);
    }
}
