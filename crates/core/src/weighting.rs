//! Array geometry weighting (paper §2.3.3, eq. 7).
//!
//! A linear array's bearing resolution collapses near its own axis: the
//! derivative of the inter-element phase `π·cosθ` vanishes as `θ → 0°` or
//! `180°`. ArrayTrack therefore de-weights spectrum information near the
//! axis with the window
//!
//! ```text
//! W(θ) = 1      if 15° < |θ| < 165°
//!        sin θ  otherwise
//! ```
//!
//! extended symmetrically to the full circle (the axis pathology is the
//! same on both sides of the array).
//!
//! Beyond the geometry window, this module also hosts the *confidence*
//! reweighting used by the server's graceful-degradation policy
//! ([`confidence_weighted`]): a per-AP exponent on the normalized
//! pseudospectrum that interpolates between full trust and a flat
//! (fusion-neutral) factor for APs whose health is suspect.

use crate::spectrum::AoaSpectrum;
use std::f64::consts::PI;

/// Lower edge of the full-confidence region, radians (15°).
pub const INNER_EDGE: f64 = 15.0 * PI / 180.0;

/// The geometry window `W(θ)` for a bearing measured from the array axis,
/// evaluated on the folded angle so both mirror sides are treated alike.
pub fn geometry_weight(theta: f64) -> f64 {
    // Fold to [0, π]: the angular distance from the array axis.
    let folded = {
        let t = theta.rem_euclid(2.0 * PI);
        if t > PI {
            2.0 * PI - t
        } else {
            t
        }
    };
    if folded > INNER_EDGE && folded < PI - INNER_EDGE {
        1.0
    } else {
        folded.sin().abs()
    }
}

/// Applies the geometry window to a spectrum in place.
pub fn apply_geometry_weighting(spectrum: &mut AoaSpectrum) {
    spectrum.apply_window(geometry_weight);
}

/// Reweights a pseudospectrum by confidence `w ∈ [0, 1]` for fusion.
///
/// The synthesis likelihood is a product of per-AP factors (eq. 8), so
/// trusting an AP "half as much" means raising its (normalized) factor to
/// the power `w` — the standard log-linear tempering of a likelihood term:
///
/// - `w = 1`: returns the spectrum **unchanged** (bit-identical clone), so
///   the all-healthy fused path matches the fault-free path exactly;
/// - `w = 0`: returns a flat all-ones spectrum — a multiplicative identity
///   under peak-normalized fusion, so the AP is effectively excluded and
///   fusing `n` APs with `k` zero-weighted equals fusing only the other
///   `n - k` (the k-of-n proptest pins this equivalence down);
/// - `0 < w < 1`: normalizes to peak 1 and flattens by `P ↦ P^w`, keeping
///   the peak bearing but shrinking the dynamic range: the AP still votes,
///   but can no longer veto.
pub fn confidence_weighted(spectrum: &AoaSpectrum, w: f64) -> AoaSpectrum {
    assert!((0.0..=1.0).contains(&w), "confidence must be in [0, 1]");
    if w == 1.0 {
        return spectrum.clone();
    }
    if w == 0.0 {
        return AoaSpectrum::from_fn(spectrum.bins(), |_| 1.0);
    }
    let normalized = spectrum.normalized();
    AoaSpectrum::from_values(normalized.values().iter().map(|v| v.powf(w)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_region_is_unweighted() {
        for deg in [20.0f64, 45.0, 90.0, 120.0, 160.0] {
            assert_eq!(geometry_weight(deg.to_radians()), 1.0, "{deg}°");
        }
    }

    #[test]
    fn axis_endpoints_are_zeroed() {
        assert!(geometry_weight(0.0) < 1e-12);
        assert!(geometry_weight(PI) < 1e-12);
        assert!(geometry_weight(2.0 * PI - 1e-9) < 1e-6);
    }

    #[test]
    fn edge_region_follows_sine() {
        let t = 10f64.to_radians();
        assert!((geometry_weight(t) - t.sin()).abs() < 1e-12);
        let t2 = 170f64.to_radians();
        assert!((geometry_weight(t2) - t2.sin()).abs() < 1e-12);
    }

    #[test]
    fn window_is_mirror_symmetric() {
        for deg in [5.0f64, 30.0, 90.0, 170.0] {
            let t = deg.to_radians();
            let a = geometry_weight(t);
            let b = geometry_weight(2.0 * PI - t);
            assert!((a - b).abs() < 1e-12, "{deg}°");
        }
    }

    #[test]
    fn weight_is_continuous_at_edges() {
        // sin(15°) ≈ 0.259 jumps to 1.0 in the paper's formula — the window
        // as specified is discontinuous; verify we reproduce the spec
        // rather than smoothing it.
        let just_in = geometry_weight(15.1f64.to_radians());
        let just_out = geometry_weight(14.9f64.to_radians());
        assert_eq!(just_in, 1.0);
        assert!((just_out - 14.9f64.to_radians().sin()).abs() < 1e-12);
    }

    #[test]
    fn confidence_one_is_bit_identical() {
        let s = AoaSpectrum::from_fn(360, |t| (t.sin() + 1.1) * 0.7);
        let w = confidence_weighted(&s, 1.0);
        assert_eq!(s, w, "w = 1 must be the exact identity");
    }

    #[test]
    fn confidence_zero_is_flat_ones() {
        let s = AoaSpectrum::from_fn(360, |t| (-(t - 1.0).powi(2)).exp() + 1e-6);
        let w = confidence_weighted(&s, 0.0);
        assert!(w.values().iter().all(|&v| v == 1.0));
        assert_eq!(w.bins(), 360);
    }

    #[test]
    fn partial_confidence_flattens_but_keeps_peak() {
        let s = AoaSpectrum::from_fn(360, |t| (-((t - 2.0) / 0.2).powi(2)).exp() + 1e-3);
        let w = confidence_weighted(&s, 0.5);
        // Peak bearing unchanged.
        let p0 = s.find_peaks(0.5)[0];
        let p1 = w.find_peaks(0.5)[0];
        assert!((p0.theta - p1.theta).abs() < 1e-12);
        // Dynamic range shrinks: the off-peak floor rises relative to peak.
        let floor0 = s.normalized().sample(5.0);
        let floor1 = w.sample(5.0) / w.max_value();
        assert!(floor1 > floor0, "tempering must lift the floor");
        // Output stays finite and non-negative everywhere.
        assert!(w.values().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "confidence must be")]
    fn out_of_range_confidence_rejected() {
        let s = AoaSpectrum::from_fn(64, |_| 1.0);
        confidence_weighted(&s, 1.5);
    }

    #[test]
    fn applying_window_deweights_axis_peaks() {
        let mut s = AoaSpectrum::from_fn(360, |t| {
            // Peaks near 5° (axis) and 90° (broadside).
            (-((t - 0.087) / 0.1).powi(2)).exp() + (-((t - 1.571) / 0.1).powi(2)).exp() + 1e-6
        });
        apply_geometry_weighting(&mut s);
        let peaks = s.find_peaks(0.1);
        // The broadside peak must now dominate.
        assert!((peaks[0].theta - 1.571).abs() < 0.05);
    }
}
