//! Array geometry weighting (paper §2.3.3, eq. 7).
//!
//! A linear array's bearing resolution collapses near its own axis: the
//! derivative of the inter-element phase `π·cosθ` vanishes as `θ → 0°` or
//! `180°`. ArrayTrack therefore de-weights spectrum information near the
//! axis with the window
//!
//! ```text
//! W(θ) = 1      if 15° < |θ| < 165°
//!        sin θ  otherwise
//! ```
//!
//! extended symmetrically to the full circle (the axis pathology is the
//! same on both sides of the array).

use crate::spectrum::AoaSpectrum;
use std::f64::consts::PI;

/// Lower edge of the full-confidence region, radians (15°).
pub const INNER_EDGE: f64 = 15.0 * PI / 180.0;

/// The geometry window `W(θ)` for a bearing measured from the array axis,
/// evaluated on the folded angle so both mirror sides are treated alike.
pub fn geometry_weight(theta: f64) -> f64 {
    // Fold to [0, π]: the angular distance from the array axis.
    let folded = {
        let t = theta.rem_euclid(2.0 * PI);
        if t > PI {
            2.0 * PI - t
        } else {
            t
        }
    };
    if folded > INNER_EDGE && folded < PI - INNER_EDGE {
        1.0
    } else {
        folded.sin().abs()
    }
}

/// Applies the geometry window to a spectrum in place.
pub fn apply_geometry_weighting(spectrum: &mut AoaSpectrum) {
    spectrum.apply_window(geometry_weight);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_region_is_unweighted() {
        for deg in [20.0f64, 45.0, 90.0, 120.0, 160.0] {
            assert_eq!(geometry_weight(deg.to_radians()), 1.0, "{deg}°");
        }
    }

    #[test]
    fn axis_endpoints_are_zeroed() {
        assert!(geometry_weight(0.0) < 1e-12);
        assert!(geometry_weight(PI) < 1e-12);
        assert!(geometry_weight(2.0 * PI - 1e-9) < 1e-6);
    }

    #[test]
    fn edge_region_follows_sine() {
        let t = 10f64.to_radians();
        assert!((geometry_weight(t) - t.sin()).abs() < 1e-12);
        let t2 = 170f64.to_radians();
        assert!((geometry_weight(t2) - t2.sin()).abs() < 1e-12);
    }

    #[test]
    fn window_is_mirror_symmetric() {
        for deg in [5.0f64, 30.0, 90.0, 170.0] {
            let t = deg.to_radians();
            let a = geometry_weight(t);
            let b = geometry_weight(2.0 * PI - t);
            assert!((a - b).abs() < 1e-12, "{deg}°");
        }
    }

    #[test]
    fn weight_is_continuous_at_edges() {
        // sin(15°) ≈ 0.259 jumps to 1.0 in the paper's formula — the window
        // as specified is discontinuous; verify we reproduce the spec
        // rather than smoothing it.
        let just_in = geometry_weight(15.1f64.to_radians());
        let just_out = geometry_weight(14.9f64.to_radians());
        assert_eq!(just_in, 1.0);
        assert!((just_out - 14.9f64.to_radians().sin()).abs() < 1e-12);
    }

    #[test]
    fn applying_window_deweights_axis_peaks() {
        let mut s = AoaSpectrum::from_fn(360, |t| {
            // Peaks near 5° (axis) and 90° (broadside).
            (-((t - 0.087) / 0.1).powi(2)).exp() + (-((t - 1.571) / 0.1).powi(2)).exp() + 1e-6
        });
        apply_geometry_weighting(&mut s);
        let peaks = s.find_peaks(0.1);
        // The broadside peak must now dominate.
        assert!((peaks[0].theta - 1.571).abs() < 0.05);
    }
}
