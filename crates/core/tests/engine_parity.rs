//! Property-based parity between [`at_core::LocalizationEngine`] and the
//! exhaustive reference path (`synthesis::localize` / `synthesis::heatmap`).
//!
//! The engine's coarse-to-fine search quantizes bearings to spectrum bins
//! and prunes blocks by likelihood upper bounds; these tests pin down that
//! none of that changes the answer: on random deployments the final
//! position matches the legacy path to better than a millimeter, and the
//! hill-climb starting cells come out in the same order.

use at_channel::geometry::{angle_diff, pt, Point};
use at_core::engine::LocalizationEngine;
use at_core::synthesis::{heatmap, localize, ApObservation, ApPose, SearchRegion};
use at_core::AoaSpectrum;
use proptest::prelude::*;
use std::f64::consts::TAU;

/// A 720-bin spectrum from a list of Gaussian lobes `(center, width, amp)`.
fn lobes_spectrum(lobes: &[(f64, f64, f64)]) -> AoaSpectrum {
    let ls = lobes.to_vec();
    AoaSpectrum::from_fn(720, move |t| {
        let mut v = 1e-5;
        for &(c, w, a) in &ls {
            v += a * (-(angle_diff(t, c) / w).powi(2)).exp();
        }
        v
    })
}

/// Per-AP parameters: position, array axis, and extra (clutter) lobes.
type ApParams = (f64, f64, f64, Vec<(f64, f64, f64)>);

/// 2–6 APs anywhere in the region with 0–2 random clutter lobes each, plus
/// a common target the direct-path lobes point at (so the likelihood
/// surface has a genuine, unambiguous peak above the floor).
fn scene_strategy() -> impl Strategy<Value = (Vec<ApParams>, (f64, f64))> {
    (
        proptest::collection::vec(
            (
                0.0f64..12.0,
                0.0f64..8.0,
                0.0f64..TAU,
                proptest::collection::vec((0.0f64..TAU, 0.05f64..0.4, 0.2f64..0.9), 0..3),
            ),
            2..7,
        ),
        (1.0f64..11.0, 1.0f64..7.0),
    )
}

/// Builds poses and spectra for a generated scene.
fn build_scene(aps: &[ApParams], target: Point) -> (Vec<ApPose>, Vec<AoaSpectrum>) {
    let poses: Vec<ApPose> = aps
        .iter()
        .map(|&(x, y, axis_angle, _)| ApPose {
            center: pt(x, y),
            axis_angle,
        })
        .collect();
    let spectra = poses
        .iter()
        .zip(aps)
        .map(|(pose, (_, _, _, clutter))| {
            let mut lobes = vec![(pose.bearing_to(target), 0.08, 1.0)];
            lobes.extend_from_slice(clutter);
            lobes_spectrum(&lobes)
        })
        .collect();
    (poses, spectra)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_localizes_identically_on_random_deployments(
        (aps, (tx, ty)) in scene_strategy()
    ) {
        let target = pt(tx, ty);
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)).with_resolution(0.1);
        let (poses, spectra) = build_scene(&aps, target);
        let engine = LocalizationEngine::new(&poses, region, 720);

        let owned: Vec<ApObservation> = poses
            .iter()
            .zip(&spectra)
            .map(|(pose, s)| ApObservation { pose: *pose, spectrum: s.clone() })
            .collect();
        let legacy = localize(&owned, region);
        let obs: Vec<(usize, &AoaSpectrum)> = spectra.iter().enumerate().collect();
        let fast = engine.localize(&obs);
        prop_assert!(
            fast.position.distance(legacy.position) < 1e-3,
            "engine {:?} vs legacy {:?} (target {target:?}, {} APs)",
            fast.position, legacy.position, poses.len()
        );
        prop_assert!(
            (fast.likelihood - legacy.likelihood).abs()
                <= 1e-6 * legacy.likelihood.max(1e-300)
        );
    }

    #[test]
    fn top_candidates_order_matches_exhaustive_heatmap(
        (aps, (tx, ty)) in scene_strategy()
    ) {
        let target = pt(tx, ty);
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)).with_resolution(0.1);
        let (poses, spectra) = build_scene(&aps, target);
        let engine = LocalizationEngine::new(&poses, region, 720);

        let owned: Vec<ApObservation> = poses
            .iter()
            .zip(&spectra)
            .map(|(pose, s)| ApObservation { pose: *pose, spectrum: s.clone() })
            .collect();
        let reference = heatmap(&owned, region).top_cells(3);
        let obs: Vec<(usize, &AoaSpectrum)> = spectra.iter().enumerate().collect();
        let fast = engine.top_candidates(&obs, 3);
        prop_assert_eq!(reference.len(), fast.len());
        for (r, f) in reference.iter().zip(&fast) {
            // Same cell in the same rank — or an exact likelihood tie, in
            // which case either order is legitimate.
            prop_assert!(
                r.0.distance(f.0) < 1e-9
                    || (r.1 - f.1).abs() <= 1e-12 * r.1.max(1e-300),
                "rank order differs: {:?} vs {:?}", reference, fast
            );
            prop_assert!((r.1 - f.1).abs() <= 1e-9 * r.1.max(1e-300));
        }
    }
}
