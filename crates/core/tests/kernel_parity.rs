//! Parity between the planar/SoA hot-path kernels and their naive
//! reference formulations.
//!
//! The zero-allocation rework restructured two inner loops:
//!
//! - the MUSIC sweep now runs `aᴴ·E_N·E_Nᴴ·a` over split re/im slabs
//!   ([`at_linalg::NoiseSubspace`]) instead of probing a materialized
//!   projector matrix. The two forms are algebraically identical but
//!   associate differently, so spectra agree to ≈1e-12 *on the quadratic
//!   forms* (`|va−vb| ≤ 1e-12·(1 + va·vb)` on the reciprocal spectrum
//!   values), not bit-for-bit;
//! - the fusion sweep accumulates AP-major over contiguous bin-index
//!   slabs. The per-cell add order is unchanged, so heatmaps and location
//!   picks must match the naive cell-major walk *bit-for-bit*, and a
//!   reused scratch arena must never change a result.
//!
//! Case counts are kept modest: these run in tier 1 alongside the rest of
//! the suite.

use at_channel::geometry::{angle_diff, pt};
use at_core::spectrum::AoaSpectrum;
use at_core::steering::SteeringTable;
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::{LocalizationEngine, LocalizeScratch};
use at_linalg::{c64, eigh, CMatrix, CVector, Complex64, NoiseSubspace};
use proptest::prelude::*;

const ELEMENTS: usize = 8;
const BINS: usize = 720;

/// A synthetic correlation matrix from random incoherent sources + noise.
fn rxx_strategy() -> impl Strategy<Value = CMatrix> {
    (
        proptest::collection::vec((0.2f64..3.0, 0.2f64..1.5), 1..4),
        0.001f64..0.2,
    )
        .prop_map(|(sources, noise)| {
            let mut r = CMatrix::zeros(ELEMENTS, ELEMENTS);
            for (theta, amp) in sources {
                let a = at_core::steering::ula_steering(ELEMENTS, theta);
                let v = CVector::from_fn(ELEMENTS, |i| a[i].scale(amp));
                r.add_outer_assign(&v, 1.0);
            }
            for i in 0..ELEMENTS {
                r[(i, i)] += Complex64::real(noise);
            }
            r
        })
}

/// Random single-or-multi-lobe spectra for the fusion tests.
fn lobe_strategy() -> impl Strategy<Value = AoaSpectrum> {
    proptest::collection::vec((0.0f64..std::f64::consts::TAU, 0.2f64..1.0), 1..3).prop_map(
        |centers| {
            AoaSpectrum::from_fn(BINS, move |t| {
                let mut v = 1e-6;
                for &(c, p) in &centers {
                    v += p * (-(angle_diff(t, c) / 0.08).powi(2)).exp();
                }
                v
            })
        },
    )
}

fn test_poses() -> Vec<ApPose> {
    [
        (pt(0.0, 0.0), 0.3),
        (pt(12.0, 0.0), 2.0),
        (pt(6.0, 8.0), 4.5),
    ]
    .into_iter()
    .map(|(center, axis)| ApPose {
        center,
        axis_angle: axis,
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn planar_music_scan_matches_materialized_projector(
        rxx in rxx_strategy(),
        signals in 1usize..4,
    ) {
        let eig = eigh(&rxx).expect("hermitian eigendecomposition");
        let noise = NoiseSubspace::from_eigen(&eig, signals);
        let table = SteeringTable::new(ELEMENTS, BINS);
        let planar = table.scan_projection(&noise);

        // Reference: materialize Q = E_N·E_Nᴴ and probe aᴴ·Q·a per bin.
        let mut q = CMatrix::zeros(ELEMENTS, ELEMENTS);
        for k in signals..ELEMENTS {
            q.add_outer_assign(&eig.eigenvector(k), 1.0);
        }
        // The table stores the half circle (a ULA cannot tell the two
        // sides apart); probe every stored vector, then check the mirror.
        let half = BINS / 2;
        for bin in 0..=half {
            let a = table.vector(bin);
            let mut form = c64(0.0, 0.0);
            for i in 0..ELEMENTS {
                for j in 0..ELEMENTS {
                    form += a[i].conj() * q[(i, j)] * a[j];
                }
            }
            let naive = (1.0 / form.re.max(1e-12)).max(0.0);
            let fast = planar.values()[bin];
            // ~1e-12 relative on the underlying quadratic forms: strict
            // 1e-12 relative parity on the *spectrum* is unreachable at
            // peaks, where a ~1e-16 absolute difference in a ~1e-4
            // projection is magnified by the reciprocal.
            prop_assert!(
                (fast - naive).abs() <= 1e-12 * (1.0 + fast * naive),
                "bin {bin}: planar {fast} vs naive {naive}"
            );
            if bin != 0 && bin != half {
                prop_assert_eq!(
                    planar.values()[BINS - bin].to_bits(),
                    fast.to_bits(),
                    "mirror bin {} differs from bin {}",
                    BINS - bin,
                    bin
                );
            }
        }
    }

    #[test]
    fn ap_major_heatmap_is_bit_identical_to_cell_major(
        spectra in proptest::collection::vec(lobe_strategy(), 3),
    ) {
        let poses = test_poses();
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0));
        let engine = LocalizationEngine::new(&poses, region, BINS);
        let obs: Vec<(usize, &AoaSpectrum)> = spectra.iter().enumerate().collect();
        let map = engine.heatmap(&obs);

        // Reference: the pre-planar cell-major walk — per cell, sum the
        // per-AP log LUT lookups in observation order, then exponentiate.
        // 0.05 is the engine's likelihood floor.
        let luts: Vec<Vec<f64>> = spectra
            .iter()
            .map(|s| {
                let max = s.max_value();
                let scale = if max > 0.0 { 1.0 / max } else { 1.0 };
                s.values()
                    .iter()
                    .map(|&v| (v * scale).max(0.05).ln())
                    .collect()
            })
            .collect();
        let (nx, ny) = region.grid_size();
        for iy in 0..ny {
            for ix in 0..nx {
                let mut acc = 0.0;
                for (ap, lut) in luts.iter().enumerate() {
                    acc += lut[engine.bearing_bin(ap, ix, iy)];
                }
                let naive = acc.exp();
                let fast = map.values[iy * nx + ix];
                prop_assert_eq!(
                    fast.to_bits(),
                    naive.to_bits(),
                    "cell ({}, {}): planar {} vs naive {}",
                    ix,
                    iy,
                    fast,
                    naive
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_never_changes_a_fix(
        spectra in proptest::collection::vec(lobe_strategy(), 3),
        decoys in proptest::collection::vec(lobe_strategy(), 2),
    ) {
        let poses = test_poses();
        let region = SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0));
        let engine = LocalizationEngine::new(&poses, region, BINS);
        let obs: Vec<(usize, &AoaSpectrum)> = spectra.iter().enumerate().collect();

        // Thread-local default arena.
        let via_default = engine.localize(&obs);
        // A fresh arena.
        let mut fresh = LocalizeScratch::new();
        let via_fresh = engine.localize_with(&obs, &mut fresh);
        // An arena dirtied by a different query shape (fewer APs,
        // different spectra) and then reused.
        let mut dirty = LocalizeScratch::new();
        let decoy_obs: Vec<(usize, &AoaSpectrum)> = decoys.iter().enumerate().collect();
        engine.localize_with(&decoy_obs, &mut dirty);
        let via_dirty = engine.localize_with(&obs, &mut dirty);

        for other in [via_fresh, via_dirty] {
            prop_assert_eq!(via_default.position.x.to_bits(), other.position.x.to_bits());
            prop_assert_eq!(via_default.position.y.to_bits(), other.position.y.to_bits());
            prop_assert_eq!(via_default.likelihood.to_bits(), other.likelihood.to_bits());
        }
    }
}
