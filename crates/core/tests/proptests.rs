//! Property-based tests for ArrayTrack's core algorithms.

use at_channel::geometry::{angle_diff, pt};
use at_core::music::{music_analysis_from_rxx, MusicConfig};
use at_core::smoothing::{spatial_smooth, spatial_smooth_fb};
use at_core::spectrum::AoaSpectrum;
use at_core::steering::ula_steering;
use at_core::suppression::{suppress_multipath, SuppressionConfig};
use at_core::synthesis::{
    heatmap, likelihood, normalize_observations, ApObservation, ApPose, SearchRegion,
};
use at_core::weighting::{confidence_weighted, geometry_weight};
use at_linalg::{eigh, CMatrix, CVector, Complex64};
use proptest::prelude::*;
use std::f64::consts::TAU;

/// A synthetic correlation matrix from random incoherent sources + noise.
fn rxx_strategy() -> impl Strategy<Value = CMatrix> {
    (
        proptest::collection::vec((0.2f64..3.0, 0.2f64..1.5), 1..4),
        0.001f64..0.2,
    )
        .prop_map(|(sources, noise)| {
            let m = 8;
            let mut r = CMatrix::zeros(m, m);
            for (theta, amp) in sources {
                let a = ula_steering(m, theta);
                let v = CVector::from_fn(m, |i| a[i].scale(amp));
                r.add_outer_assign(&v, 1.0);
            }
            for i in 0..m {
                r[(i, i)] += Complex64::real(noise);
            }
            r
        })
}

fn lobe_spectrum(centers: &[(f64, f64)]) -> AoaSpectrum {
    let cs = centers.to_vec();
    AoaSpectrum::from_fn(720, move |t| {
        let mut v = 1e-6;
        for &(c, p) in &cs {
            v += p * (-(angle_diff(t, c) / 0.08).powi(2)).exp();
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn music_spectrum_is_finite_positive_and_mirror_symmetric(rxx in rxx_strategy()) {
        let analysis = music_analysis_from_rxx(&rxx, &MusicConfig::default());
        let spec = analysis.spectrum;
        let n = spec.bins();
        for v in spec.values() {
            prop_assert!(v.is_finite() && *v > 0.0);
        }
        for i in 1..n / 2 {
            let a = spec.values()[i];
            let b = spec.values()[n - i];
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
        prop_assert!(analysis.signals >= 1);
        prop_assert!(analysis.signals < analysis.effective_antennas);
    }

    #[test]
    fn smoothing_dimension_and_psd(rxx in rxx_strategy(), groups in 1usize..4) {
        let s = spatial_smooth(&rxx, groups);
        prop_assert_eq!(s.rows(), 8 - groups + 1);
        prop_assert!(s.is_hermitian(1e-9));
        let e = eigh(&s).unwrap();
        for l in e.eigenvalues {
            prop_assert!(l > -1e-9 * (1.0 + s.frobenius_norm()));
        }
        let fb = spatial_smooth_fb(&rxx, groups);
        prop_assert!(fb.is_hermitian(1e-9));
        // FB preserves the trace of the forward-smoothed matrix.
        prop_assert!((fb.trace().re - s.trace().re).abs() < 1e-9 * (1.0 + s.trace().re));
    }

    #[test]
    fn geometry_weight_bounds_and_symmetry(theta in -10.0f64..10.0) {
        let w = geometry_weight(theta);
        prop_assert!((0.0..=1.0).contains(&w));
        prop_assert!((w - geometry_weight(-theta)).abs() < 1e-12);
        prop_assert!((w - geometry_weight(theta + TAU)).abs() < 1e-12);
    }

    #[test]
    fn suppression_never_amplifies(
        c1 in 0.3f64..2.8, c2 in 3.5f64..6.0, p2 in 0.2f64..1.0
    ) {
        let a = lobe_spectrum(&[(c1, 1.0), (c2, p2)]);
        let b = lobe_spectrum(&[(c1, 1.0)]);
        let out = suppress_multipath(&[a.clone(), b], &SuppressionConfig::default());
        for (o, orig) in out.values().iter().zip(a.values()) {
            prop_assert!(*o <= orig + 1e-12, "suppression must only attenuate");
        }
    }

    #[test]
    fn suppression_is_identity_on_identical_spectra(
        c1 in 0.3f64..2.8, c2 in 3.5f64..6.0
    ) {
        let a = lobe_spectrum(&[(c1, 1.0), (c2, 0.6)]);
        let out = suppress_multipath(&[a.clone(), a.clone(), a.clone()],
                                     &SuppressionConfig::default());
        for (o, orig) in out.values().iter().zip(a.values()) {
            prop_assert!((o - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn likelihood_positive_and_heatmap_consistent(
        cx in 2.0f64..18.0, cy in 2.0f64..8.0
    ) {
        let target = pt(cx, cy);
        let obs: Vec<ApObservation> = [(pt(0.0, 0.0), 0.3), (pt(20.0, 0.0), 2.2)]
            .iter()
            .map(|&(center, axis)| {
                let pose = ApPose { center, axis_angle: axis };
                ApObservation {
                    pose,
                    spectrum: lobe_spectrum(&[(pose.bearing_to(target), 1.0)]),
                }
            })
            .collect();
        let obs = normalize_observations(&obs);
        let l_true = likelihood(&obs, target);
        prop_assert!(l_true > 0.0 && l_true.is_finite());
        // The heatmap's best cell is at least as likely as a random point.
        let region = SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0)).with_resolution(0.5);
        let map = heatmap(&obs, region);
        let (top, top_l) = map.top_cells(1)[0];
        prop_assert!(top_l + 1e-12 >= likelihood(&obs, pt(1.0, 1.0)));
        // And near the target (within a couple of cells).
        prop_assert!(top.distance(target) < 1.5, "top {top:?} vs target {target:?}");
    }

    #[test]
    fn spectrum_sample_interpolates_between_bins(values in proptest::collection::vec(0.01f64..5.0, 16)) {
        let s = AoaSpectrum::from_values(values.clone());
        for i in 0..16 {
            let theta = i as f64 * TAU / 16.0;
            prop_assert!((s.sample(theta) - values[i]).abs() < 1e-12);
            // Midpoints are between neighbors.
            let mid = s.sample(theta + TAU / 32.0);
            let lo = values[i].min(values[(i + 1) % 16]);
            let hi = values[i].max(values[(i + 1) % 16]);
            prop_assert!(mid >= lo - 1e-12 && mid <= hi + 1e-12);
        }
    }

    #[test]
    fn flattened_aps_leave_fusion_equal_to_healthy_subset(
        cx in 2.0f64..18.0, cy in 2.0f64..8.0,
        alive_bits in proptest::collection::vec(0usize..2, 4)
    ) {
        // Graceful degradation invariant: tempering an AP's spectrum all
        // the way down to w = 0 (a flat all-ones spectrum) makes it a
        // multiplicative identity, so fusing k-of-n with the other n − k
        // flattened equals fusing the k healthy APs alone — everywhere,
        // not just at the peak.
        let alive: Vec<bool> = alive_bits.iter().map(|&b| b == 1).collect();
        prop_assume!(alive.iter().any(|a| *a));
        let target = pt(cx, cy);
        let poses = [
            (pt(0.0, 0.0), 0.3),
            (pt(20.0, 0.0), 2.2),
            (pt(0.0, 10.0), -0.4),
            (pt(20.0, 10.0), 3.5),
        ];
        let healthy: Vec<ApObservation> = poses
            .iter()
            .map(|&(center, axis)| {
                let pose = ApPose { center, axis_angle: axis };
                ApObservation {
                    pose,
                    spectrum: lobe_spectrum(&[(pose.bearing_to(target), 1.0)]),
                }
            })
            .collect();
        let full: Vec<ApObservation> = healthy
            .iter()
            .zip(&alive)
            .map(|(o, &a)| ApObservation {
                pose: o.pose,
                spectrum: confidence_weighted(&o.spectrum, if a { 1.0 } else { 0.0 }),
            })
            .collect();
        let subset: Vec<ApObservation> = healthy
            .iter()
            .zip(&alive)
            .filter(|(_, &a)| a)
            .map(|(o, _)| o.clone())
            .collect();
        let full = normalize_observations(&full);
        let subset = normalize_observations(&subset);
        for p in [target, pt(1.0, 1.0), pt(10.0, 5.0), pt(18.5, 9.0)] {
            let lf = likelihood(&full, p);
            let ls = likelihood(&subset, p);
            prop_assert!(
                (lf - ls).abs() <= 1e-9 * (1.0 + ls.abs()),
                "k-of-n fusion mismatch at {p:?}: {lf} vs {ls}"
            );
        }
    }

    #[test]
    fn confidence_weighting_endpoints_are_identity_and_flat(
        c1 in 0.3f64..2.8, p2 in 0.2f64..1.0
    ) {
        let s = lobe_spectrum(&[(c1, 1.0), (c1 + 2.0, p2)]);
        let keep = confidence_weighted(&s, 1.0);
        for (a, b) in keep.values().iter().zip(s.values()) {
            prop_assert_eq!(*a, *b, "w = 1 must be the exact identity");
        }
        let flat = confidence_weighted(&s, 0.0);
        for v in flat.values() {
            prop_assert_eq!(*v, 1.0, "w = 0 must flatten to all-ones");
        }
        // Intermediate tempering stays within the normalized range.
        let half = confidence_weighted(&s, 0.5);
        for v in half.values() {
            prop_assert!(v.is_finite() && *v >= 0.0 && *v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn dead_elements_keep_music_finite_and_mirror_symmetric(
        rxx in rxx_strategy(),
        dead in proptest::collection::vec(0usize..8, 0..6)
    ) {
        // An element dropout zeroes that row's gain: its rxx row/column
        // collapse to the noise floor. MUSIC on the crippled matrix must
        // stay finite, non-negative, and keep the ULA mirror symmetry —
        // degraded aperture, never NaN.
        let mut r = rxx;
        for &m in &dead {
            for j in 0..8 {
                r[(m, j)] = Complex64::ZERO;
                r[(j, m)] = Complex64::ZERO;
            }
        }
        for &m in &dead {
            r[(m, m)] = Complex64::real(0.01); // port still records noise
        }
        let spec = music_analysis_from_rxx(&r, &MusicConfig::default()).spectrum;
        let n = spec.bins();
        for v in spec.values() {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
        for i in 1..n / 2 {
            let a = spec.values()[i];
            let b = spec.values()[n - i];
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn scale_lobe_only_touches_one_lobe(c1 in 0.5f64..2.5, c2 in 3.7f64..5.8) {
        let mut s = lobe_spectrum(&[(c1, 1.0), (c2, 0.8)]);
        let orig = s.clone();
        s.scale_lobe(c2, 0.1);
        // Values at the other lobe's apex are untouched.
        prop_assert!((s.sample(c1) - orig.sample(c1)).abs() < 1e-12);
        // The scaled lobe is attenuated.
        prop_assert!(s.sample(c2) < 0.5 * orig.sample(c2));
    }
}
