//! Proof of the zero-allocation hot path: a warm `try_localize` query
//! must not touch the global allocator at all.
//!
//! A counting allocator wraps `System` and tallies every `alloc` /
//! `realloc` / `alloc_zeroed`. The server is warmed until every arena —
//! the engine's per-thread [`at_core::LocalizeScratch`], the pipeline's
//! fusion scratch, the obs layer's per-site metric handles — has grown to
//! the query shape, then ten more queries must leave the counter exactly
//! where it was.
//!
//! Kept to a single `#[test]` on purpose: the harness runs tests on
//! multiple threads, and any concurrent test body would alias the global
//! counter with its own allocations.

use at_channel::geometry::{pt, Point};
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::{AoaSpectrum, ArrayTrackServer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A synthetic single-lobe spectrum pointing at `target` from `pose`.
fn lobe_toward(pose: ApPose, target: Point) -> AoaSpectrum {
    let theta = pose.bearing_to(target);
    AoaSpectrum::from_fn(720, |t| {
        (-(at_channel::geometry::angle_diff(t, theta) / 0.08).powi(2)).exp() + 1e-6
    })
}

#[test]
fn warm_localize_paths_do_not_allocate() {
    let target = pt(7.0, 3.0);
    let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
    for (i, (center, axis)) in [
        (pt(0.0, 0.0), 0.3),
        (pt(12.0, 0.0), 2.0),
        (pt(6.0, 8.0), 4.5),
    ]
    .into_iter()
    .enumerate()
    {
        let pose = ApPose {
            center,
            axis_angle: axis,
        };
        server.add_observation_from(i, pose, lobe_toward(pose, target), 0);
    }

    // Warm-up: the first call builds the engine, later calls grow every
    // per-thread arena and per-site metric handle to steady state.
    let warm = server.try_localize().expect("healthy deployment");
    for _ in 0..5 {
        let again = server.try_localize().expect("healthy deployment");
        assert_eq!(warm.position.x.to_bits(), again.position.x.to_bits());
        assert_eq!(warm.position.y.to_bits(), again.position.y.to_bits());
    }
    server.localize();

    // The tentpole claim: the warm query path is allocation-free.
    let before = allocations();
    for _ in 0..10 {
        server.try_localize().expect("healthy deployment");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm try_localize touched the allocator {} times over 10 queries",
        after - before
    );

    // The legacy panicking entry point shares the same arenas.
    let before = allocations();
    for _ in 0..10 {
        server.localize();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm localize touched the allocator {} times over 10 queries",
        after - before
    );
}
