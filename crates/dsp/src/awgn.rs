//! Additive white Gaussian noise and SNR bookkeeping.
//!
//! The channel delivers unit-power waveforms scaled by complex path gains;
//! experiments set operating points in dB SNR (paper §4.3.4 sweeps 15 dB
//! down to below 0 dB), so this module centralizes the dB↔linear math and a
//! seedable circularly-symmetric complex Gaussian source.

use at_linalg::{c64, Complex64};
use rand::Rng;
use rand_distr_compat::StandardNormalPair;

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10.0f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
#[inline]
pub fn linear_to_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

/// Mean power (`E|x|²`) of a sample block.
pub fn mean_power(xs: &[Complex64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|z| z.norm_sqr()).sum::<f64>() / xs.len() as f64
}

/// Empirical SNR in dB of `signal` against `noise` sample blocks.
pub fn measure_snr_db(signal: &[Complex64], noise: &[Complex64]) -> f64 {
    linear_to_db(mean_power(signal) / mean_power(noise))
}

/// A circularly-symmetric complex Gaussian noise source with selectable
/// per-sample power.
///
/// ```
/// use at_dsp::awgn::NoiseSource;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut src = NoiseSource::with_power(2.0);
/// let n: Vec<_> = (0..10_000).map(|_| src.sample(&mut rng)).collect();
/// let p = at_dsp::awgn::mean_power(&n);
/// assert!((p - 2.0).abs() < 0.1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NoiseSource {
    /// Standard deviation per real/imaginary component.
    sigma: f64,
}

impl NoiseSource {
    /// Noise with total per-sample power `power` (`E|n|² = power`, so each
    /// quadrature has variance `power/2`).
    pub fn with_power(power: f64) -> Self {
        assert!(power >= 0.0, "noise power must be non-negative");
        Self {
            sigma: (power / 2.0).sqrt(),
        }
    }

    /// Noise sized so that a unit-power signal sees the given SNR.
    pub fn for_snr_db(snr_db: f64) -> Self {
        Self::with_power(db_to_linear(-snr_db))
    }

    /// The total per-sample noise power `E|n|²`.
    pub fn power(&self) -> f64 {
        2.0 * self.sigma * self.sigma
    }

    /// Draws one complex noise sample.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Complex64 {
        let (a, b) = StandardNormalPair.sample_pair(rng);
        c64(a * self.sigma, b * self.sigma)
    }

    /// Adds noise to a sample block in place.
    pub fn corrupt<R: Rng>(&self, xs: &mut [Complex64], rng: &mut R) {
        for x in xs {
            *x += self.sample(rng);
        }
    }
}

/// Minimal standard-normal sampling (Box–Muller) so this crate depends only
/// on `rand` core, not `rand_distr`.
mod rand_distr_compat {
    use rand::Rng;
    use std::f64::consts::PI;

    /// Zero-sized sampler producing pairs of independent N(0,1) values.
    #[derive(Clone, Copy, Debug)]
    pub struct StandardNormalPair;

    impl StandardNormalPair {
        /// Draws two independent standard normal variates via Box–Muller.
        #[inline]
        pub fn sample_pair<R: Rng>(&self, rng: &mut R) -> (f64, f64) {
            // u1 in (0, 1] to keep ln finite.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let th = 2.0 * PI * u2;
            (r * th.cos(), r * th.sin())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn db_conversions_round_trip() {
        for db in [-10.0, 0.0, 3.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-15);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-12);
        assert!((db_to_linear(3.0) - 1.9952623149688795).abs() < 1e-12);
    }

    #[test]
    fn noise_power_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        for target in [0.25, 1.0, 4.0] {
            let src = NoiseSource::with_power(target);
            let n: Vec<_> = (0..50_000).map(|_| src.sample(&mut rng)).collect();
            let p = mean_power(&n);
            assert!(
                (p - target).abs() < 0.05 * target.max(0.5),
                "target {target}, measured {p}"
            );
        }
    }

    #[test]
    fn noise_is_circularly_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let src = NoiseSource::with_power(1.0);
        let n: Vec<_> = (0..50_000).map(|_| src.sample(&mut rng)).collect();
        let mean: Complex64 = n.iter().sum::<Complex64>() / n.len() as f64;
        assert!(mean.abs() < 0.02, "nonzero mean {mean}");
        // E[n²] ≈ 0 for circular symmetry (pseudo-covariance vanishes).
        let pseudo: Complex64 = n.iter().map(|z| *z * *z).sum::<Complex64>() / n.len() as f64;
        assert!(pseudo.abs() < 0.02, "pseudo-covariance {pseudo}");
    }

    #[test]
    fn snr_constructor_hits_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = NoiseSource::for_snr_db(10.0);
        // Unit-power signal assumed: SNR = 1 / noise_power.
        assert!((linear_to_db(1.0 / src.power()) - 10.0).abs() < 1e-9);
        let signal = vec![Complex64::ONE; 20_000];
        let noise: Vec<_> = (0..20_000).map(|_| src.sample(&mut rng)).collect();
        let snr = measure_snr_db(&signal, &noise);
        assert!((snr - 10.0).abs() < 0.3, "measured {snr}");
    }

    #[test]
    fn corrupt_changes_samples_but_preserves_signal_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let src = NoiseSource::with_power(0.01);
        let mut xs = vec![Complex64::ONE; 10_000];
        src.corrupt(&mut xs, &mut rng);
        let mean: Complex64 = xs.iter().sum::<Complex64>() / xs.len() as f64;
        assert!((mean - Complex64::ONE).abs() < 0.01);
    }

    #[test]
    fn zero_power_noise_is_silent() {
        let mut rng = StdRng::seed_from_u64(5);
        let src = NoiseSource::with_power(0.0);
        assert_eq!(src.sample(&mut rng), Complex64::ZERO);
    }

    #[test]
    fn mean_power_of_empty_block_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }
}
