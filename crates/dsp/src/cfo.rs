//! Carrier-frequency-offset estimation from the 802.11 preamble.
//!
//! A client oscillator offset `Δf` rotates the received baseband by
//! `e^{j2πΔf·t}`. Because the rotation is common to every antenna it does
//! not disturb MUSIC within one snapshot block — but ArrayTrack's
//! diversity synthesis (paper §2.2) combines samples captured 3.2 µs apart
//! (long training symbols `S0` and `S1`), which differ by the phase
//! `2πΔf·3.2 µs`; at the 802.11 limit of ±20 ppm that is up to ±1 rad and
//! would corrupt the synthesized cross-set correlations.
//!
//! The classic fix (Schmidl–Cox [25] and every OFDM receiver since):
//! identical transmitted blocks separated by `T` seconds differ at the
//! receiver *only* by `e^{j2πΔf·T}` (for a static channel), so
//!
//! ```text
//! Δf̂ = arg( Σ_t  x(t + T) · x*(t) ) / (2π·T)
//! ```
//!
//! With `T = 3.2 µs` the unambiguous range is ±156 kHz — over 3× the
//! 802.11 tolerance.

use at_linalg::Complex64;
use std::f64::consts::TAU;

/// The long-training repetition interval used for fine CFO estimation.
pub const LTS_SEPARATION_S: f64 = crate::preamble::LONG_SYMBOL_S;

/// Maximum CFO magnitude commodity 802.11 clients may exhibit: ±20 ppm at
/// 2.44 GHz ≈ ±48.8 kHz.
pub fn max_cfo_hz() -> f64 {
    20e-6 * 2.44e9
}

/// Estimates the carrier frequency offset from two received copies of the
/// same transmitted block, `separation_s` seconds apart.
///
/// Returns `None` if the blocks are empty, mismatched in length, or carry
/// no energy. The estimate is unambiguous for `|Δf| < 1/(2·separation)`.
pub fn estimate_cfo(first: &[Complex64], second: &[Complex64], separation_s: f64) -> Option<f64> {
    if first.is_empty() || first.len() != second.len() || separation_s <= 0.0 {
        return None;
    }
    let mut acc = Complex64::ZERO;
    for (a, b) in first.iter().zip(second) {
        acc = acc.mul_add(*b, a.conj());
    }
    if acc.abs() == 0.0 {
        return None;
    }
    Some(acc.arg() / (TAU * separation_s))
}

/// Removes a known CFO from a sample block in place: sample `i` (taken at
/// `t0 + i/sample_rate` seconds) is rotated by `e^{-j2πΔf·t}`.
pub fn correct_cfo(samples: &mut [Complex64], cfo_hz: f64, t0: f64, sample_rate: f64) {
    for (i, z) in samples.iter_mut().enumerate() {
        let t = t0 + i as f64 / sample_rate;
        *z *= Complex64::cis(-TAU * cfo_hz * t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::NoiseSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two copies of a block with a CFO rotation between them.
    fn rotated_pair(cfo_hz: f64, n: usize, sep: f64, fs: f64) -> (Vec<Complex64>, Vec<Complex64>) {
        let base: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(0.37 * i as f64) + Complex64::cis(1.1 * i as f64).scale(0.5))
            .collect();
        let first: Vec<Complex64> = base
            .iter()
            .enumerate()
            .map(|(i, z)| *z * Complex64::cis(TAU * cfo_hz * i as f64 / fs))
            .collect();
        let second: Vec<Complex64> = base
            .iter()
            .enumerate()
            .map(|(i, z)| *z * Complex64::cis(TAU * cfo_hz * (sep + i as f64 / fs)))
            .collect();
        (first, second)
    }

    #[test]
    fn exact_on_clean_blocks() {
        for cfo in [-40e3, -5e3, 0.0, 12e3, 48e3] {
            let (a, b) = rotated_pair(cfo, 10, LTS_SEPARATION_S, 40e6);
            let est = estimate_cfo(&a, &b, LTS_SEPARATION_S).unwrap();
            assert!((est - cfo).abs() < 1.0, "cfo {cfo}: est {est}");
        }
    }

    #[test]
    fn tolerates_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let noise = NoiseSource::for_snr_db(15.0);
        let (mut a, mut b) = rotated_pair(30e3, 64, LTS_SEPARATION_S, 40e6);
        noise.corrupt(&mut a, &mut rng);
        noise.corrupt(&mut b, &mut rng);
        let est = estimate_cfo(&a, &b, LTS_SEPARATION_S).unwrap();
        assert!((est - 30e3).abs() < 3e3, "est {est}");
    }

    #[test]
    fn range_covers_wifi_tolerance() {
        // ±20 ppm at 2.44 GHz must be unambiguous at the LTS separation.
        assert!(max_cfo_hz() < 1.0 / (2.0 * LTS_SEPARATION_S));
    }

    #[test]
    fn correction_undoes_rotation() {
        let cfo = 25e3;
        let fs = 40e6;
        let clean: Vec<Complex64> = (0..32).map(|i| Complex64::cis(0.2 * i as f64)).collect();
        let mut rotated: Vec<Complex64> = clean
            .iter()
            .enumerate()
            .map(|(i, z)| *z * Complex64::cis(TAU * cfo * (1e-3 + i as f64 / fs)))
            .collect();
        correct_cfo(&mut rotated, cfo, 1e-3, fs);
        for (a, b) in rotated.iter().zip(&clean) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(estimate_cfo(&[], &[], 1.0).is_none());
        let a = vec![Complex64::ONE; 4];
        let b = vec![Complex64::ONE; 5];
        assert!(estimate_cfo(&a, &b, 1.0).is_none());
        assert!(estimate_cfo(&a, &a.clone(), 0.0).is_none());
        let z = vec![Complex64::ZERO; 4];
        assert!(estimate_cfo(&z, &z.clone(), 1.0).is_none());
    }

    #[test]
    fn estimate_through_real_preamble() {
        // End-to-end: a preamble with CFO; estimate from the two LTS.
        use crate::preamble::{Preamble, LTS0_START_S, LTS1_START_S};
        let p = Preamble::new();
        let fs = 40e6;
        let cfo = -35e3;
        let sample = |start: f64| -> Vec<Complex64> {
            (0..32)
                .map(|i| {
                    let t = start + i as f64 / fs;
                    p.eval(t) * Complex64::cis(TAU * cfo * t)
                })
                .collect()
        };
        let s0 = sample(LTS0_START_S + 0.5e-6);
        let s1 = sample(LTS1_START_S + 0.5e-6);
        let est = estimate_cfo(&s0, &s1, LTS_SEPARATION_S).unwrap();
        assert!((est - cfo).abs() < 10.0, "est {est}");
    }
}
