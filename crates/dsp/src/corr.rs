//! Sample array-correlation matrices (paper eq. 4).
//!
//! Given per-antenna snapshot vectors `x(t) ∈ ℂᴹ`, the array correlation
//! matrix is `Rxx = E[x·xᴴ]`, estimated here by the sample mean over `K`
//! snapshots. The paper uses `K = 10` samples (§4.3.3) cut from the
//! preamble; the figure-19 experiment sweeps `K ∈ {1, 5, 10, 100}`.

use at_linalg::{CMatrix, CVector};

/// A block of `K` array snapshots for an `M`-antenna array, stored as
/// per-antenna sample streams of equal length.
#[derive(Clone, Debug)]
pub struct SnapshotBlock {
    /// `per_antenna[m][t]` = sample `t` at antenna `m`.
    per_antenna: Vec<Vec<at_linalg::Complex64>>,
}

impl SnapshotBlock {
    /// Builds a block from per-antenna streams.
    ///
    /// # Panics
    /// Panics if streams are empty or have unequal lengths.
    pub fn new(per_antenna: Vec<Vec<at_linalg::Complex64>>) -> Self {
        assert!(!per_antenna.is_empty(), "need at least one antenna");
        let len = per_antenna[0].len();
        assert!(len > 0, "need at least one snapshot");
        assert!(
            per_antenna.iter().all(|s| s.len() == len),
            "antenna streams must have equal length"
        );
        Self { per_antenna }
    }

    /// Number of antennas `M`.
    pub fn antennas(&self) -> usize {
        self.per_antenna.len()
    }

    /// Number of snapshots `K`.
    pub fn snapshots(&self) -> usize {
        self.per_antenna[0].len()
    }

    /// The array vector `x(t)` at snapshot `t`.
    pub fn snapshot(&self, t: usize) -> CVector {
        CVector::from_fn(self.antennas(), |m| self.per_antenna[m][t])
    }

    /// Restricts the block to the first `k` snapshots.
    pub fn truncated(&self, k: usize) -> SnapshotBlock {
        let k = k.min(self.snapshots());
        assert!(k > 0, "cannot truncate to zero snapshots");
        SnapshotBlock {
            per_antenna: self.per_antenna.iter().map(|s| s[..k].to_vec()).collect(),
        }
    }

    /// Per-antenna stream `m`.
    pub fn stream(&self, m: usize) -> &[at_linalg::Complex64] {
        &self.per_antenna[m]
    }

    /// The sample correlation matrix `Rxx = (1/K) Σ x(t)·x(t)ᴴ`.
    ///
    /// The result is Hermitian positive semi-definite by construction.
    pub fn correlation_matrix(&self) -> CMatrix {
        let m = self.antennas();
        let k = self.snapshots();
        let mut r = CMatrix::zeros(m, m);
        let w = 1.0 / k as f64;
        for t in 0..k {
            let x = self.snapshot(t);
            r.add_outer_assign(&x, w);
        }
        r
    }

    /// Total received power averaged over antennas and snapshots.
    pub fn mean_power(&self) -> f64 {
        let total: f64 = self
            .per_antenna
            .iter()
            .flat_map(|s| s.iter())
            .map(|z| z.norm_sqr())
            .sum();
        total / (self.antennas() * self.snapshots()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::{c64, eigh, Complex64};

    #[test]
    fn single_snapshot_gives_rank_one_matrix() {
        let x = [c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 0.0)];
        let block = SnapshotBlock::new(x.iter().map(|z| vec![*z]).collect());
        let r = block.correlation_matrix();
        assert!(r.is_hermitian(1e-14));
        let e = eigh(&r).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!(e.eigenvalues[1].abs() < 1e-12);
    }

    #[test]
    fn correlation_of_identical_antennas_is_all_ones() {
        let stream: Vec<Complex64> = (0..8).map(|t| Complex64::cis(t as f64)).collect();
        let block = SnapshotBlock::new(vec![stream.clone(), stream]);
        let r = block.correlation_matrix();
        for i in 0..2 {
            for j in 0..2 {
                assert!((r[(i, j)] - Complex64::ONE).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn phase_offset_appears_in_cross_terms() {
        // Antenna 2 = antenna 1 delayed by phase φ ⇒ R[0][1] = e^{-jφ}.
        let phi = 0.7;
        let s1: Vec<Complex64> = (0..16).map(|t| Complex64::cis(0.3 * t as f64)).collect();
        let s2: Vec<Complex64> = s1.iter().map(|z| *z * Complex64::cis(phi)).collect();
        let block = SnapshotBlock::new(vec![s1, s2]);
        let r = block.correlation_matrix();
        // R[0][1] = E[x0 · conj(x1)] = e^{-jφ}.
        assert!((r[(0, 1)] - Complex64::cis(-phi)).abs() < 1e-12);
        assert!((r[(1, 0)] - Complex64::cis(phi)).abs() < 1e-12);
    }

    #[test]
    fn truncation_limits_snapshots() {
        let block = SnapshotBlock::new(vec![
            (0..10).map(|t| c64(t as f64, 0.0)).collect(),
            (0..10).map(|t| c64(0.0, t as f64)).collect(),
        ]);
        let t = block.truncated(3);
        assert_eq!(t.snapshots(), 3);
        assert_eq!(t.antennas(), 2);
        // Truncating beyond length is a no-op.
        assert_eq!(block.truncated(99).snapshots(), 10);
    }

    #[test]
    fn mean_power_accounts_all_streams() {
        let block = SnapshotBlock::new(vec![
            vec![c64(1.0, 0.0), c64(1.0, 0.0)],
            vec![c64(0.0, 2.0), c64(0.0, 2.0)],
        ]);
        assert!((block.mean_power() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_streams_panic() {
        SnapshotBlock::new(vec![vec![Complex64::ONE], vec![Complex64::ONE; 2]]);
    }

    #[test]
    fn correlation_is_psd() {
        let block = SnapshotBlock::new(vec![
            (0..5).map(|t| Complex64::cis(1.1 * t as f64)).collect(),
            (0..5)
                .map(|t| Complex64::cis(-0.4 * t as f64 + 1.0))
                .collect(),
            (0..5).map(|t| c64(t as f64, -(t as f64))).collect(),
        ]);
        let e = eigh(&block.correlation_matrix()).unwrap();
        for l in e.eigenvalues {
            assert!(l > -1e-10);
        }
    }
}
