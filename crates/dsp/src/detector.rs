//! Packet detection (paper §2.1 and §4.3.4).
//!
//! Two detectors are provided:
//!
//! - [`SchmidlCox`]: the classic autocorrelation detector over the repeated
//!   short training symbols. Cheap, but its metric degrades quickly at low
//!   SNR.
//! - [`MatchedFilter`]: the paper's "modified" detector — because ArrayTrack
//!   never needs to decode the packet, it can cross-correlate against the
//!   *entire known preamble* (all ten short and both long training symbols),
//!   buying roughly `10·log10(640/32) ≈ 13 dB` of integration gain and
//!   detecting packets down to −10 dB SNR (§4.3.4).
//!
//! Both report sample-accurate frame start offsets.

use at_linalg::Complex64;
use std::cell::RefCell;

/// A detection event: where a frame starts and how strong the metric was.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Sample index of the estimated frame start.
    pub start: usize,
    /// Peak metric value (detector-specific normalization, 0..1-ish).
    pub metric: f64,
}

/// Reusable workspace for the detectors' hot paths: the timing metric /
/// correlation traces, the sliding-energy prefix sums, and the peak lists.
///
/// The `_into` detector methods write into one of these instead of
/// allocating per call; [`SchmidlCox::detect`], [`MatchedFilter::detect`]
/// and [`MatchedFilter::detect_all`] route through a per-thread instance,
/// so a capture thread scanning frame after frame stops paying allocator
/// round-trips once the workspace has grown to the stream length.
#[derive(Clone, Debug, Default)]
pub struct DetectScratch {
    metric: Vec<f64>,
    prefix: Vec<f64>,
    corr: Vec<f64>,
    peaks: Vec<Detection>,
    kept: Vec<Detection>,
}

impl DetectScratch {
    /// An empty workspace; it grows to the stream shape on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The Schmidl–Cox timing metric left by [`SchmidlCox::metric_into`].
    pub fn metric(&self) -> &[f64] {
        &self.metric
    }

    /// The normalized correlation trace left by
    /// [`MatchedFilter::correlation_into`].
    pub fn correlation(&self) -> &[f64] {
        &self.corr
    }

    /// The suppressed, start-ordered detections left by
    /// [`MatchedFilter::detect_all_into`].
    pub fn detections(&self) -> &[Detection] {
        &self.kept
    }
}

thread_local! {
    static DETECT_SCRATCH: RefCell<DetectScratch> = RefCell::new(DetectScratch::new());
}

/// Runs `f` with the calling thread's detector workspace, falling back to
/// a fresh arena under re-entrancy rather than panicking.
fn with_detect_scratch<R>(f: impl FnOnce(&mut DetectScratch) -> R) -> R {
    DETECT_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut DetectScratch::new()),
    })
}

/// Schmidl–Cox autocorrelation detector over the periodic short training
/// symbols.
///
/// The metric is `M(d) = |P(d)|² / R(d)²` with
/// `P(d) = Σ r*(d+m)·r(d+m+L)` and `R(d) = Σ |r(d+m+L)|²`, where `L` is the
/// short-symbol period in samples. `M` plateaus near 1 across the short
/// training section; we report the start of the first plateau.
#[derive(Clone, Debug)]
pub struct SchmidlCox {
    /// Short-symbol period in samples (32 at 40 MS/s).
    period: usize,
    /// Number of lag products summed (one period's worth by default).
    window: usize,
    /// Plateau threshold on the metric.
    threshold: f64,
}

impl SchmidlCox {
    /// Detector for a given sample rate, with the standard 0.8 µs STS period.
    pub fn new(sample_rate_hz: f64) -> Self {
        let period = (crate::preamble::SHORT_SYMBOL_S * sample_rate_hz).round() as usize;
        Self {
            period,
            window: period,
            threshold: 0.6,
        }
    }

    /// Overrides the plateau threshold (default 0.6).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Computes the timing metric `M(d)` for every valid offset.
    pub fn metric(&self, rx: &[Complex64]) -> Vec<f64> {
        let mut scratch = DetectScratch::new();
        self.metric_into(rx, &mut scratch);
        std::mem::take(&mut scratch.metric)
    }

    /// [`Self::metric`] into a reusable workspace (`scratch.metric()`);
    /// empty when the stream is too short for a single window.
    pub fn metric_into(&self, rx: &[Complex64], scratch: &mut DetectScratch) {
        let out = &mut scratch.metric;
        out.clear();
        let l = self.period;
        let w = self.window;
        if rx.len() < 2 * l + w {
            return;
        }
        let n = rx.len() - l - w;
        out.reserve(n);
        for d in 0..n {
            let mut p = Complex64::ZERO;
            let mut r = 0.0;
            for m in 0..w {
                p = p.mul_add(rx[d + m].conj(), rx[d + m + l]);
                r += rx[d + m + l].norm_sqr();
            }
            out.push(if r > 0.0 { p.norm_sqr() / (r * r) } else { 0.0 });
        }
    }

    /// Returns the first detection, if any: the first index where the
    /// metric crosses the threshold and stays there for half a period.
    pub fn detect(&self, rx: &[Complex64]) -> Option<Detection> {
        let _t = at_obs::time_stage!(at_obs::stages::DETECT, "detector" => "schmidl_cox");
        let det = with_detect_scratch(|scratch| {
            self.metric_into(rx, scratch);
            let m = &scratch.metric;
            let hold = self.period / 2;
            let mut run = 0usize;
            for (d, &v) in m.iter().enumerate() {
                if v >= self.threshold {
                    run += 1;
                    if run >= hold {
                        let start = d + 1 - run;
                        return Some(Detection {
                            start,
                            metric: m[start..=d].iter().cloned().fold(0.0, f64::max),
                        });
                    }
                } else {
                    run = 0;
                }
            }
            None
        });
        match det {
            Some(_) => {
                at_obs::count!("at_detections_total", "detector" => "schmidl_cox", "result" => "hit")
            }
            None => {
                at_obs::count!("at_detections_total", "detector" => "schmidl_cox", "result" => "miss")
            }
        }
        det
    }
}

/// Full-preamble matched filter: normalized cross-correlation of the
/// received stream against the known 16 µs preamble waveform.
///
/// ```
/// use at_dsp::preamble::{Preamble, SAMPLE_RATE_HZ};
/// use at_dsp::detector::MatchedFilter;
/// use at_linalg::Complex64;
/// let p = Preamble::new();
/// let mut rx = vec![Complex64::ZERO; 100];
/// rx.extend(p.reference(SAMPLE_RATE_HZ));
/// rx.extend(vec![Complex64::ZERO; 100]);
/// let det = MatchedFilter::new(&p, SAMPLE_RATE_HZ).detect(&rx).unwrap();
/// assert_eq!(det.start, 100);
/// ```
#[derive(Clone, Debug)]
pub struct MatchedFilter {
    /// Conjugated, unit-energy reference preamble.
    reference: Vec<Complex64>,
    /// Detection threshold on normalized correlation (0..1).
    threshold: f64,
}

impl MatchedFilter {
    /// Builds the filter from a preamble sampled at `sample_rate_hz`.
    pub fn new(preamble: &crate::preamble::Preamble, sample_rate_hz: f64) -> Self {
        let mut reference = preamble.reference(sample_rate_hz);
        let energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
        let scale = 1.0 / energy.sqrt();
        for z in &mut reference {
            *z = z.conj().scale(scale);
        }
        Self {
            reference,
            threshold: 0.5,
        }
    }

    /// Overrides the correlation threshold (default 0.5).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Normalized correlation magnitude at every alignment.
    ///
    /// Value at offset `d` is `|⟨ref, rx[d..]⟩| / ‖rx[d..d+N]‖`, which is 1
    /// for a noiseless, scaled copy of the preamble.
    pub fn correlation(&self, rx: &[Complex64]) -> Vec<f64> {
        let mut scratch = DetectScratch::new();
        self.correlation_into(rx, &mut scratch);
        std::mem::take(&mut scratch.corr)
    }

    /// [`Self::correlation`] into a reusable workspace
    /// (`scratch.correlation()`); empty when the stream is shorter than
    /// the reference.
    pub fn correlation_into(&self, rx: &[Complex64], scratch: &mut DetectScratch) {
        let DetectScratch { prefix, corr, .. } = scratch;
        prefix.clear();
        corr.clear();
        let n = self.reference.len();
        if rx.len() < n {
            return;
        }
        // Sliding window energy via prefix sums.
        prefix.reserve(rx.len() + 1);
        prefix.push(0.0);
        for z in rx {
            let last = *prefix.last().expect("non-empty prefix");
            prefix.push(last + z.norm_sqr());
        }
        corr.reserve(rx.len() - n + 1);
        for d in 0..=rx.len() - n {
            let mut acc = Complex64::ZERO;
            for (r, x) in self.reference.iter().zip(&rx[d..d + n]) {
                acc = acc.mul_add(*r, *x);
            }
            let energy = prefix[d + n] - prefix[d];
            corr.push(if energy > 0.0 {
                acc.abs() / energy.sqrt()
            } else {
                0.0
            });
        }
    }

    /// Returns all detections: local maxima of the correlation above the
    /// threshold, greedily separated by at least one preamble length.
    pub fn detect_all(&self, rx: &[Complex64]) -> Vec<Detection> {
        with_detect_scratch(|scratch| {
            self.detect_all_into(rx, scratch);
            scratch.kept.clone()
        })
    }

    /// [`Self::detect_all`] into a reusable workspace
    /// (`scratch.detections()`) — the allocation-free shape of the scan.
    pub fn detect_all_into(&self, rx: &[Complex64], scratch: &mut DetectScratch) {
        self.correlation_into(rx, scratch);
        let DetectScratch {
            corr, peaks, kept, ..
        } = scratch;
        peaks.clear();
        for (d, &v) in corr.iter().enumerate() {
            if v >= self.threshold
                && (d == 0 || corr[d - 1] <= v)
                && (d + 1 == corr.len() || v >= corr[d + 1])
            {
                peaks.push(Detection {
                    start: d,
                    metric: v,
                });
            }
        }
        // Non-maximum suppression within a full preamble length: the
        // periodic short training symbols produce strong correlation
        // sidelobes at ±0.8 µs multiples that must not count as separate
        // detections. The peak list is tiny, so a stable insertion sort
        // (descending by metric — the same permutation as the stable
        // `sort_by` it replaces) avoids the merge buffer.
        for i in 1..peaks.len() {
            let mut j = i;
            while j > 0 && peaks[j].metric > peaks[j - 1].metric {
                peaks.swap(j, j - 1);
                j -= 1;
            }
        }
        let min_sep = self.reference.len();
        kept.clear();
        for &p in peaks.iter() {
            if kept.iter().all(|k| p.start.abs_diff(k.start) >= min_sep) {
                kept.push(p);
            }
        }
        // Back to start order (stable, in place).
        for i in 1..kept.len() {
            let mut j = i;
            while j > 0 && kept[j].start < kept[j - 1].start {
                kept.swap(j, j - 1);
                j -= 1;
            }
        }
    }

    /// The strongest detection, if any. (Taking the earliest instead is
    /// wrong at high SNR, where pre-peak correlation sidelobes also clear
    /// the threshold.)
    pub fn detect(&self, rx: &[Complex64]) -> Option<Detection> {
        let _t = at_obs::time_stage!(at_obs::stages::DETECT, "detector" => "matched_filter");
        let det = with_detect_scratch(|scratch| {
            self.detect_all_into(rx, scratch);
            scratch
                .kept
                .iter()
                .copied()
                .max_by(|a, b| a.metric.partial_cmp(&b.metric).expect("finite metrics"))
        });
        match det {
            Some(_) => {
                at_obs::count!("at_detections_total", "detector" => "matched_filter", "result" => "hit")
            }
            None => {
                at_obs::count!("at_detections_total", "detector" => "matched_filter", "result" => "miss")
            }
        }
        det
    }

    /// Reference length in samples.
    pub fn reference_len(&self) -> usize {
        self.reference.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::NoiseSource;
    use crate::preamble::{Preamble, SAMPLE_RATE_HZ};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embedded_preamble(pad_front: usize, pad_back: usize) -> Vec<Complex64> {
        let p = Preamble::new();
        let mut rx = vec![Complex64::ZERO; pad_front];
        rx.extend(p.reference(SAMPLE_RATE_HZ));
        rx.extend(vec![Complex64::ZERO; pad_back]);
        rx
    }

    #[test]
    fn schmidl_cox_finds_clean_preamble() {
        let rx = embedded_preamble(200, 200);
        let det = SchmidlCox::new(SAMPLE_RATE_HZ)
            .detect(&rx)
            .expect("detection");
        // Plateau detection has inherent ambiguity of up to a couple of
        // symbol periods; require it lands inside the short section.
        assert!(
            det.start >= 150 && det.start <= 200 + 320,
            "start {}",
            det.start
        );
        assert!(det.metric > 0.9);
    }

    #[test]
    fn schmidl_cox_silent_on_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let noise = NoiseSource::with_power(1.0);
        let rx: Vec<Complex64> = (0..2000).map(|_| noise.sample(&mut rng)).collect();
        assert!(SchmidlCox::new(SAMPLE_RATE_HZ).detect(&rx).is_none());
    }

    #[test]
    fn matched_filter_sample_accurate_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rx = embedded_preamble(173, 300);
        NoiseSource::for_snr_db(15.0).corrupt(&mut rx, &mut rng);
        let p = Preamble::new();
        let det = MatchedFilter::new(&p, SAMPLE_RATE_HZ)
            .detect(&rx)
            .expect("detection");
        assert_eq!(det.start, 173);
    }

    #[test]
    fn matched_filter_detects_at_minus_10db() {
        // §4.3.4: full-preamble integration detects at −10 dB SNR. The
        // expected normalized correlation at SNR ρ is √(ρ/(1+ρ)) ≈ 0.30 at
        // −10 dB while noise-only alignments sit near √(π/4N) ≈ 0.035, so a
        // 0.15 threshold separates them by many standard deviations.
        let p = Preamble::new();
        let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ).with_threshold(0.15);
        let mut hits = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut rx = embedded_preamble(400, 400);
            NoiseSource::for_snr_db(-10.0).corrupt(&mut rx, &mut rng);
            if let Some(det) = mf.detect(&rx) {
                if det.start.abs_diff(400) <= 2 {
                    hits += 1;
                }
            }
        }
        assert!(
            hits >= trials * 8 / 10,
            "only {hits}/{trials} detections at -10 dB"
        );
    }

    #[test]
    fn matched_filter_no_false_alarm_on_noise() {
        let p = Preamble::new();
        let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ).with_threshold(0.15);
        let mut false_alarms = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(7000 + seed);
            let noise = NoiseSource::with_power(1.0);
            let rx: Vec<Complex64> = (0..1500).map(|_| noise.sample(&mut rng)).collect();
            if mf.detect(&rx).is_some() {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 1, "{false_alarms}/10 false alarms");
    }

    #[test]
    fn matched_filter_finds_two_frames() {
        let p = Preamble::new();
        let pre = p.reference(SAMPLE_RATE_HZ);
        let mut rx = vec![Complex64::ZERO; 50];
        rx.extend(&pre);
        rx.extend(vec![Complex64::ZERO; 900]);
        rx.extend(&pre);
        rx.extend(vec![Complex64::ZERO; 50]);
        let dets = MatchedFilter::new(&p, SAMPLE_RATE_HZ).detect_all(&rx);
        assert_eq!(dets.len(), 2, "{dets:?}");
        assert_eq!(dets[0].start, 50);
        assert_eq!(dets[1].start, 50 + pre.len() + 900);
    }

    #[test]
    fn correlation_is_scale_invariant() {
        let p = Preamble::new();
        let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ);
        let rx = embedded_preamble(10, 10);
        let rx_scaled: Vec<Complex64> = rx.iter().map(|z| z.scale(1e-3)).collect();
        let c1 = mf.correlation(&rx);
        let c2 = mf.correlation(&rx_scaled);
        for (a, b) in c1.iter().zip(&c2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn short_input_yields_no_metric() {
        let p = Preamble::new();
        let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ);
        assert!(mf.correlation(&[Complex64::ONE; 10]).is_empty());
        assert!(mf.detect(&[Complex64::ONE; 10]).is_none());
        let sc = SchmidlCox::new(SAMPLE_RATE_HZ);
        assert!(sc.metric(&[Complex64::ONE; 10]).is_empty());
    }
}
