//! Radix-2 iterative fast Fourier transform.
//!
//! Used for OFDM symbol synthesis/analysis (64-point at 20 MHz channel
//! bandwidth) and for spectrum inspection in tests. Sizes must be powers of
//! two, which all 802.11 OFDM block sizes are.

use at_linalg::Complex64;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time → frequency, kernel `e^{-j2πkn/N}`.
    Forward,
    /// Frequency → time, kernel `e^{+j2πkn/N}` with `1/N` normalization.
    Inverse,
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }
}

/// Out-of-place forward FFT.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, Direction::Forward);
    out
}

/// Out-of-place inverse FFT (normalized by `1/N`).
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, Direction::Inverse);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::c64;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = fft(&x);
        for s in spec {
            assert!((s - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * k as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (bin, s) in spec.iter().enumerate() {
            if bin == k {
                assert!((s.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(s.abs() < 1e-9, "leakage in bin {bin}: {}", s.abs());
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| c64((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let back = ifft(&fft(&x));
        assert!(max_err(&x, &back) < 1e-12);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|i| c64(i as f64, -(i as f64))).collect();
        let b: Vec<Complex64> = (0..16).map(|i| c64(1.0, i as f64 * 0.5)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &expect) < 1e-10);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| c64((i as f64 * 0.3).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft(&x);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex64::ZERO; 12];
        fft_in_place(&mut x, Direction::Forward);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![c64(3.0, 4.0)];
        assert_eq!(fft(&x), x);
    }
}
