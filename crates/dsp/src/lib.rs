//! # at-dsp — baseband signal processing for ArrayTrack
//!
//! The physical-layer substrate: everything between "a client transmits a
//! frame" and "the AP has complex baseband samples per antenna".
//!
//! - [`preamble`]: continuous-time 802.11 OFDM preamble and data-symbol
//!   synthesis (paper Fig. 2) — exact fractional-delay evaluation for the
//!   multipath channel;
//! - [`fft`]: radix-2 FFT used in OFDM analysis and tests;
//! - [`awgn`]: seedable complex Gaussian noise + dB/SNR bookkeeping;
//! - [`detector`]: Schmidl–Cox and the paper's full-preamble matched filter
//!   (§2.1, §4.3.4 — detection at −10 dB SNR);
//! - [`corr`]: sample array-correlation matrices `Rxx` (eq. 4), the input
//!   to MUSIC in `at-core`;
//! - [`cfo`]: carrier-frequency-offset estimation from the repeated long
//!   training symbols, needed before diversity synthesis can combine
//!   samples captured 3.2 µs apart (§2.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgn;
pub mod cfo;
pub mod corr;
pub mod detector;
pub mod fft;
pub mod preamble;

pub use awgn::{db_to_linear, linear_to_db, NoiseSource};
pub use cfo::{correct_cfo, estimate_cfo};
pub use corr::SnapshotBlock;
pub use detector::{DetectScratch, Detection, MatchedFilter, SchmidlCox};
pub use preamble::{Frame, Preamble, SAMPLE_RATE_HZ};
