//! 802.11 OFDM PLCP preamble synthesis (paper Figure 2).
//!
//! The preamble is ten identical short training symbols `s0…s9` (0.8 µs
//! each), a 1.6 µs guard interval, and two identical 3.2 µs long training
//! symbols `S0`, `S1`. ArrayTrack needs the genuine structure because:
//!
//! - packet detection correlates against it (§2.1, §4.3.4);
//! - diversity synthesis switches antenna sets between `S0` and `S1` (§2.2);
//! - the 10-sample AoA snapshots of §4.3.3 are cut from it.
//!
//! Because an OFDM symbol is a finite sum of subcarrier tones
//! `s(t) = Σₖ Sₖ·e^{j2πkΔf t}`, we synthesize the waveform by direct
//! evaluation in continuous time. That makes fractional multipath delays
//! exact — each path in the channel simulator just evaluates `s(t − τ)` —
//! with no resampling filters to tune.

use at_linalg::{c64, Complex64};
use std::f64::consts::PI;

/// OFDM subcarrier spacing Δf = 20 MHz / 64 = 312.5 kHz.
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// Duration of one short training symbol: 0.8 µs.
pub const SHORT_SYMBOL_S: f64 = 0.8e-6;

/// Duration of the short training section: 10 × 0.8 µs = 8 µs.
pub const SHORT_SECTION_S: f64 = 8.0e-6;

/// Duration of the long-training guard interval: 1.6 µs.
pub const LONG_GI_S: f64 = 1.6e-6;

/// Duration of one long training symbol: 3.2 µs.
pub const LONG_SYMBOL_S: f64 = 3.2e-6;

/// Total preamble duration: 16 µs (§2.1: "a WiFi preamble's 16 µs duration").
pub const PREAMBLE_S: f64 = 16.0e-6;

/// The WARP/commodity-AP sampling rate used throughout the paper: 40 MS/s.
pub const SAMPLE_RATE_HZ: f64 = 40.0e6;

/// Start time of the first long training symbol `S0` within the preamble.
pub const LTS0_START_S: f64 = SHORT_SECTION_S + LONG_GI_S;

/// Start time of the second long training symbol `S1` within the preamble.
pub const LTS1_START_S: f64 = LTS0_START_S + LONG_SYMBOL_S;

/// Non-zero short-training subcarriers `(index k, value)` per 802.11-2012
/// §18.3.3; the √(13/6) factor normalizes power over the 12 used tones.
const SHORT_CARRIERS: [(i32, Complex64); 12] = [
    (-24, c64(1.0, 1.0)),
    (-20, c64(-1.0, -1.0)),
    (-16, c64(1.0, 1.0)),
    (-12, c64(-1.0, -1.0)),
    (-8, c64(-1.0, -1.0)),
    (-4, c64(1.0, 1.0)),
    (4, c64(-1.0, -1.0)),
    (8, c64(-1.0, -1.0)),
    (12, c64(1.0, 1.0)),
    (16, c64(1.0, 1.0)),
    (20, c64(1.0, 1.0)),
    (24, c64(1.0, 1.0)),
];

/// Long-training BPSK sequence on subcarriers −26…−1 then +1…+26
/// (DC is unused), per 802.11-2012 §18.3.3.
const LONG_SEQUENCE: [f64; 52] = [
    // k = -26 .. -1
    1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0,
    1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // k = +1 .. +26
    1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, -1.0,
    -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0,
];

/// A continuously-evaluable 802.11 OFDM preamble waveform.
///
/// The waveform is normalized to unit average power over the preamble, so a
/// channel gain `g` delivers received power `|g|²` and SNR bookkeeping stays
/// simple.
///
/// ```
/// use at_dsp::preamble::{Preamble, SAMPLE_RATE_HZ, PREAMBLE_S};
/// let p = Preamble::new();
/// let samples = p.sample_span(0.0, PREAMBLE_S, SAMPLE_RATE_HZ);
/// assert_eq!(samples.len(), 640); // 16 µs at 40 MS/s
/// ```
#[derive(Clone, Debug)]
pub struct Preamble {
    short_scale: f64,
    long_scale: f64,
}

impl Default for Preamble {
    fn default() -> Self {
        Self::new()
    }
}

impl Preamble {
    /// Builds the standard preamble, normalized to unit average power in
    /// both the short and long training sections.
    pub fn new() -> Self {
        // Mean power of a sum of unit tones with coefficients C_k is Σ|C_k|²
        // (tones are orthogonal over a symbol). Scale so that this is 1.
        let short_raw: f64 = SHORT_CARRIERS
            .iter()
            .map(|(_, v)| v.norm_sqr() * (13.0 / 6.0))
            .sum();
        let long_raw: f64 = LONG_SEQUENCE.len() as f64;
        Self {
            short_scale: (13.0f64 / 6.0).sqrt() / short_raw.sqrt(),
            long_scale: 1.0 / long_raw.sqrt(),
        }
    }

    /// Evaluates the baseband preamble at time `t` (seconds from preamble
    /// start). Returns zero outside `[0, 16 µs)`.
    pub fn eval(&self, t: f64) -> Complex64 {
        if !(0.0..PREAMBLE_S).contains(&t) {
            return Complex64::ZERO;
        }
        if t < SHORT_SECTION_S {
            self.eval_short(t)
        } else {
            // GI + S0 + S1 are one continuous periodic long-training
            // waveform: every tone has period 3.2 µs, and the guard interval
            // is defined as a cyclic prefix, i.e. the same tones.
            self.eval_long(t - LTS0_START_S)
        }
    }

    /// Short-training tone sum at time `t` (any real `t`; period 0.8 µs).
    fn eval_short(&self, t: f64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (k, v) in SHORT_CARRIERS {
            let phase = 2.0 * PI * k as f64 * SUBCARRIER_SPACING_HZ * t;
            acc = acc.mul_add(v, Complex64::cis(phase));
        }
        acc.scale(self.short_scale)
    }

    /// Long-training tone sum at time `t` (any real `t`; period 3.2 µs).
    fn eval_long(&self, t: f64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (i, &b) in LONG_SEQUENCE.iter().enumerate() {
            let k = if i < 26 { i as i32 - 26 } else { i as i32 - 25 };
            let phase = 2.0 * PI * k as f64 * SUBCARRIER_SPACING_HZ * t;
            acc += Complex64::cis(phase).scale(b);
        }
        acc.scale(self.long_scale)
    }

    /// Samples `[t0, t0 + duration)` at `rate` Hz.
    pub fn sample_span(&self, t0: f64, duration: f64, rate: f64) -> Vec<Complex64> {
        let n = (duration * rate).round() as usize;
        (0..n).map(|i| self.eval(t0 + i as f64 / rate)).collect()
    }

    /// The full preamble sampled at `rate` Hz; the packet detectors'
    /// reference waveform.
    pub fn reference(&self, rate: f64) -> Vec<Complex64> {
        self.sample_span(0.0, PREAMBLE_S, rate)
    }
}

/// A pseudo-random OFDM data symbol generator for packet bodies (collision
/// and latency experiments need realistic non-preamble samples).
///
/// Subcarriers −26…26 except DC carry random QPSK; 3.2 µs symbols with
/// 0.8 µs cyclic prefixes, evaluated continuously like the preamble.
#[derive(Clone, Debug)]
pub struct DataSymbols {
    /// QPSK values per symbol, 52 tones each.
    symbols: Vec<[Complex64; 52]>,
}

impl DataSymbols {
    /// Generates `n` random data symbols from the given RNG.
    pub fn random<R: rand::Rng>(n: usize, rng: &mut R) -> Self {
        let pts = [
            c64(1.0, 1.0).scale(1.0 / 2.0f64.sqrt()),
            c64(1.0, -1.0).scale(1.0 / 2.0f64.sqrt()),
            c64(-1.0, 1.0).scale(1.0 / 2.0f64.sqrt()),
            c64(-1.0, -1.0).scale(1.0 / 2.0f64.sqrt()),
        ];
        let symbols = (0..n)
            .map(|_| {
                let mut sym = [Complex64::ZERO; 52];
                for s in sym.iter_mut() {
                    *s = pts[rng.gen_range(0..4usize)];
                }
                sym
            })
            .collect();
        Self { symbols }
    }

    /// Symbol duration including cyclic prefix: 4 µs.
    pub const SYMBOL_S: f64 = 4.0e-6;

    /// Total duration of the data section.
    pub fn duration(&self) -> f64 {
        self.symbols.len() as f64 * Self::SYMBOL_S
    }

    /// Evaluates the data waveform at `t` seconds from the start of the data
    /// section (zero outside it). Unit average power.
    pub fn eval(&self, t: f64) -> Complex64 {
        if t < 0.0 {
            return Complex64::ZERO;
        }
        let idx = (t / Self::SYMBOL_S) as usize;
        if idx >= self.symbols.len() {
            return Complex64::ZERO;
        }
        // Offset within the symbol; the 0.8 µs cyclic prefix replays the
        // tail of the 3.2 µs core, which continuous tones give for free
        // by evaluating at (t_sym - 0.8 µs) modulo the tone period.
        let t_sym = t - idx as f64 * Self::SYMBOL_S - 0.8e-6;
        let mut acc = Complex64::ZERO;
        for (i, v) in self.symbols[idx].iter().enumerate() {
            let k = if i < 26 { i as i32 - 26 } else { i as i32 - 25 };
            let phase = 2.0 * PI * k as f64 * SUBCARRIER_SPACING_HZ * t_sym;
            acc = acc.mul_add(*v, Complex64::cis(phase));
        }
        acc.scale(1.0 / (52.0f64).sqrt())
    }
}

/// A complete simulated frame: preamble followed by a data body.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The preamble waveform.
    pub preamble: Preamble,
    /// The data body (may be empty).
    pub body: DataSymbols,
}

impl Frame {
    /// A frame whose body holds `n_symbols` random OFDM data symbols.
    pub fn with_random_body<R: rand::Rng>(n_symbols: usize, rng: &mut R) -> Self {
        Self {
            preamble: Preamble::new(),
            body: DataSymbols::random(n_symbols, rng),
        }
    }

    /// Total frame duration in seconds.
    pub fn duration(&self) -> f64 {
        PREAMBLE_S + self.body.duration()
    }

    /// Evaluates the frame waveform at time `t` from frame start.
    pub fn eval(&self, t: f64) -> Complex64 {
        if t < PREAMBLE_S {
            self.preamble.eval(t)
        } else {
            self.body.eval(t - PREAMBLE_S)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_power(xs: &[Complex64]) -> f64 {
        xs.iter().map(|z| z.norm_sqr()).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn preamble_duration_is_16us_at_40msps() {
        let p = Preamble::new();
        assert_eq!(p.reference(SAMPLE_RATE_HZ).len(), 640);
    }

    #[test]
    fn short_symbols_repeat_every_800ns() {
        let p = Preamble::new();
        for i in 0..32 {
            let t = 0.3e-6 + i as f64 * 0.025e-6;
            let a = p.eval(t);
            let b = p.eval(t + SHORT_SYMBOL_S);
            assert!((a - b).abs() < 1e-9, "STS not periodic at t={t}");
        }
    }

    #[test]
    fn long_symbols_s0_s1_identical() {
        let p = Preamble::new();
        for i in 0..64 {
            let dt = i as f64 * 0.05e-6;
            let a = p.eval(LTS0_START_S + dt);
            let b = p.eval(LTS1_START_S + dt);
            assert!((a - b).abs() < 1e-9, "LTS mismatch at offset {dt}");
        }
    }

    #[test]
    fn guard_interval_is_cyclic_prefix() {
        let p = Preamble::new();
        // GI occupies [8.0, 9.6) µs and must equal the tail of S0.
        for i in 0..16 {
            let dt = i as f64 * 0.1e-6;
            let gi = p.eval(SHORT_SECTION_S + dt);
            let tail = p.eval(LTS0_START_S + LONG_SYMBOL_S - LONG_GI_S + dt);
            assert!(
                (gi - tail).abs() < 1e-9,
                "GI is not a cyclic prefix at {dt}"
            );
        }
    }

    #[test]
    fn sections_have_unit_average_power() {
        let p = Preamble::new();
        let short = p.sample_span(0.0, SHORT_SECTION_S, SAMPLE_RATE_HZ);
        let long = p.sample_span(LTS0_START_S, 2.0 * LONG_SYMBOL_S, SAMPLE_RATE_HZ);
        assert!(
            (mean_power(&short) - 1.0).abs() < 1e-6,
            "short power {}",
            mean_power(&short)
        );
        assert!(
            (mean_power(&long) - 1.0).abs() < 1e-6,
            "long power {}",
            mean_power(&long)
        );
    }

    #[test]
    fn zero_outside_preamble() {
        let p = Preamble::new();
        assert_eq!(p.eval(-1e-9), Complex64::ZERO);
        assert_eq!(p.eval(PREAMBLE_S + 1e-9), Complex64::ZERO);
    }

    #[test]
    fn delayed_evaluation_shifts_waveform() {
        // Sampling the preamble with a fractional delay equals evaluating
        // the underlying tones at shifted times (this is what gives the
        // channel its exact fractional path delays).
        let p = Preamble::new();
        let tau = 13.7e-9;
        let direct = p.eval(1.0e-6 - tau);
        let shifted = p.eval(1.0e-6 - tau);
        assert_eq!(direct, shifted);
    }

    #[test]
    fn data_symbols_have_unit_power_and_cyclic_prefix() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9e3779b97f4a7c15);
        let d = DataSymbols::random(4, &mut rng);
        let n = 400;
        let samples: Vec<Complex64> = (0..n)
            .map(|i| d.eval(i as f64 * d.duration() / n as f64))
            .collect();
        let pw = mean_power(&samples);
        assert!((pw - 1.0).abs() < 0.15, "data power {pw}");
        // Cyclic prefix: first 0.8 µs of a symbol equals its last 0.8 µs.
        for i in 0..8 {
            let dt = i as f64 * 0.1e-6;
            let cp = d.eval(dt);
            let tail = d.eval(3.2e-6 + dt);
            assert!((cp - tail).abs() < 1e-9);
        }
    }

    #[test]
    fn frame_concatenates_preamble_and_body() {
        let mut rng = rand::rngs::mock::StepRng::new(3, 0x6c078965);
        let f = Frame::with_random_body(2, &mut rng);
        assert!((f.duration() - (16.0e-6 + 8.0e-6)).abs() < 1e-12);
        let p = Preamble::new();
        assert_eq!(f.eval(5.0e-6), p.eval(5.0e-6));
        assert!((f.eval(PREAMBLE_S + 1.0e-6) - f.body.eval(1.0e-6)).abs() < 1e-12);
    }

    #[test]
    fn lts_spectrum_matches_sequence() {
        // FFT of one sampled LTS at 20 MS/s recovers the ±1 BPSK sequence.
        let p = Preamble::new();
        let samples = p.sample_span(LTS0_START_S, LONG_SYMBOL_S, 20.0e6);
        assert_eq!(samples.len(), 64);
        let spec = crate::fft::fft(&samples);
        // Bin k for k in 1..=26; bin 64+k for negative k.
        for k in 1..=26i32 {
            let pos = spec[k as usize];
            let neg = spec[(64 + (-k)) as usize];
            assert!(pos.abs() > 1.0, "missing +{k} tone");
            assert!(neg.abs() > 1.0, "missing -{k} tone");
            assert!(
                pos.im.abs() < 1e-6 * pos.abs() + 1e-9,
                "tone +{k} not BPSK-real"
            );
        }
        assert!(spec[0].abs() < 1e-9, "DC should be empty");
    }
}
