//! Property-based tests for the DSP substrate.

use at_dsp::awgn::{db_to_linear, linear_to_db, mean_power, NoiseSource};
use at_dsp::corr::SnapshotBlock;
use at_dsp::fft::{fft, ifft};
use at_dsp::preamble::{Preamble, PREAMBLE_S};
use at_linalg::{c64, eigh, Complex64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn complex() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| c64(re, im))
}

proptest! {
    #[test]
    fn fft_round_trip(xs in proptest::collection::vec(complex(), 16)) {
        let back = ifft(&fft(&xs));
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval(xs in proptest::collection::vec(complex(), 32)) {
        let te: f64 = xs.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = fft(&xs).iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((te - fe).abs() < 1e-7 * (1.0 + te));
    }

    #[test]
    fn db_round_trip(db in -60.0f64..60.0) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn preamble_is_bounded_and_finite(t in -1e-6f64..20e-6) {
        let p = Preamble::new();
        let v = p.eval(t);
        prop_assert!(v.is_finite());
        // Sum of ≤52 unit tones with 1/√52 scale can't exceed √52.
        prop_assert!(v.abs() <= 52.0f64.sqrt() + 1e-9);
        if !(0.0..PREAMBLE_S).contains(&t) {
            prop_assert_eq!(v, Complex64::ZERO);
        }
    }

    #[test]
    fn correlation_matrix_always_psd_hermitian(
        streams in proptest::collection::vec(
            proptest::collection::vec(complex(), 6), 2..5)
    ) {
        let block = SnapshotBlock::new(streams);
        let r = block.correlation_matrix();
        prop_assert!(r.is_hermitian(1e-9));
        let e = eigh(&r).unwrap();
        let scale = 1.0 + r.frobenius_norm();
        for l in e.eigenvalues {
            prop_assert!(l > -1e-8 * scale);
        }
    }

    #[test]
    fn noise_power_scales_linearly(power in 0.01f64..10.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = NoiseSource::with_power(power);
        let n: Vec<Complex64> = (0..4000).map(|_| src.sample(&mut rng)).collect();
        let p = mean_power(&n);
        prop_assert!((p - power).abs() < 0.15 * power + 0.01, "target {power} got {p}");
    }

    #[test]
    fn truncated_block_correlation_uses_prefix(k in 1usize..8) {
        let streams: Vec<Vec<Complex64>> = (0..3)
            .map(|m| (0..8).map(|t| Complex64::cis((m * t) as f64 * 0.37)).collect())
            .collect();
        let full = SnapshotBlock::new(streams);
        let trunc = full.truncated(k);
        prop_assert_eq!(trunc.snapshots(), k.min(8));
        // Manual prefix correlation must match.
        let manual = SnapshotBlock::new(
            (0..3).map(|m| full.stream(m)[..k.min(8)].to_vec()).collect(),
        )
        .correlation_matrix();
        let r = trunc.correlation_matrix();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((r[(i, j)] - manual[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
