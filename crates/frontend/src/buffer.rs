//! Circular frame buffer (paper §2.1, Figure 1).
//!
//! Each detected frame gets one logical buffer entry holding the captured
//! preamble snippet plus metadata; the buffer is bounded and evicts the
//! oldest entry when full, like the FPGA design's on-board circular buffer.

use at_dsp::SnapshotBlock;
use std::collections::VecDeque;

/// One buffered frame capture.
#[derive(Clone, Debug)]
pub struct FrameEntry {
    /// Captured per-antenna snapshots (already calibrated or raw, per the
    /// producer's choice).
    pub block: SnapshotBlock,
    /// Capture timestamp, seconds since AP start (used by the multipath
    /// suppression step's 100 ms grouping window, §2.4).
    pub timestamp: f64,
    /// Opaque client identifier (e.g. derived from MAC); the suppression
    /// step groups frames per client.
    pub client_id: u64,
    /// Detector confidence that produced this entry.
    pub detection_metric: f64,
}

/// A bounded circular buffer of frame entries.
#[derive(Clone, Debug)]
pub struct FrameBuffer {
    entries: VecDeque<FrameEntry>,
    capacity: usize,
    evicted: u64,
}

impl FrameBuffer {
    /// A buffer holding up to `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Pushes a frame, evicting the oldest entry if full.
    pub fn push(&mut self, entry: FrameEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
            at_obs::count!("at_frame_buffer_evictions_total");
        }
        self.entries.push_back(entry);
        at_obs::count!("at_frame_buffer_pushes_total");
    }

    /// Number of buffered frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total frames evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &FrameEntry> {
        self.entries.iter()
    }

    /// Drains and returns, oldest-first, all frames for `client_id` whose
    /// timestamps fall within `window_s` of the newest such frame — the
    /// grouping the multipath-suppression algorithm consumes (§2.4 step 1).
    pub fn take_recent_group(&mut self, client_id: u64, window_s: f64) -> Vec<FrameEntry> {
        let newest = self
            .entries
            .iter()
            .filter(|e| e.client_id == client_id)
            .map(|e| e.timestamp)
            .fold(f64::NEG_INFINITY, f64::max);
        if newest == f64::NEG_INFINITY {
            return Vec::new();
        }
        let mut group = Vec::new();
        let mut keep = VecDeque::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if e.client_id == client_id && newest - e.timestamp <= window_s {
                group.push(e);
            } else {
                keep.push_back(e);
            }
        }
        self.entries = keep;
        group.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).expect("finite times"));
        group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::Complex64;

    fn entry(ts: f64, client: u64) -> FrameEntry {
        FrameEntry {
            block: SnapshotBlock::new(vec![vec![Complex64::ONE; 2]]),
            timestamp: ts,
            client_id: client,
            detection_metric: 1.0,
        }
    }

    #[test]
    fn push_and_len() {
        let mut buf = FrameBuffer::new(4);
        assert!(buf.is_empty());
        buf.push(entry(0.0, 1));
        buf.push(entry(0.1, 1));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.evicted(), 0);
    }

    #[test]
    fn eviction_drops_oldest() {
        let mut buf = FrameBuffer::new(2);
        buf.push(entry(0.0, 1));
        buf.push(entry(1.0, 2));
        buf.push(entry(2.0, 3));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.evicted(), 1);
        let clients: Vec<u64> = buf.iter().map(|e| e.client_id).collect();
        assert_eq!(clients, vec![2, 3]);
    }

    #[test]
    fn recent_group_respects_window_and_client() {
        let mut buf = FrameBuffer::new(8);
        buf.push(entry(0.00, 7)); // too old (window 0.1 from newest=0.25)
        buf.push(entry(0.20, 7));
        buf.push(entry(0.22, 9)); // other client
        buf.push(entry(0.25, 7));
        let group = buf.take_recent_group(7, 0.1);
        assert_eq!(group.len(), 2);
        assert!((group[0].timestamp - 0.20).abs() < 1e-12);
        assert!((group[1].timestamp - 0.25).abs() < 1e-12);
        // Non-group entries remain.
        assert_eq!(buf.len(), 2);
        // Taking again returns nothing new for client 7 except the old frame.
        let rest = buf.take_recent_group(7, 1.0);
        assert_eq!(rest.len(), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.iter().next().unwrap().client_id, 9);
    }

    #[test]
    fn group_for_unknown_client_is_empty() {
        let mut buf = FrameBuffer::new(2);
        buf.push(entry(0.0, 1));
        assert!(buf.take_recent_group(42, 1.0).is_empty());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        FrameBuffer::new(0);
    }
}
