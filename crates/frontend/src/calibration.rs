//! One-time AP phase calibration (paper §3, eqs. 9–12).
//!
//! A USRP2 feeds a continuous-wave tone through a splitter and cables (the
//! "external paths") into every radio. Measuring each radio's phase against
//! radio 0 yields `Phoff1 = (Phexᵣ + Phinᵣ) − (Phex₀ + Phin₀)` — polluted by
//! the cable/splitter manufacturing differences `Phex`. Swapping the two
//! external paths and re-measuring gives `Phoff2 = (Phex₀ + Phinᵣ) −
//! (Phexᵣ + Phin₀)`; half the sum isolates the internal offset (eq. 11) and
//! half the difference the cable mismatch (eq. 12).

use crate::radio::FrontEnd;
use at_dsp::awgn::NoiseSource;
use at_dsp::SnapshotBlock;
use at_linalg::Complex64;
use rand::Rng;
use rand::SeedableRng;

/// The calibration tone source plus its imperfect external paths.
#[derive(Clone, Debug)]
pub struct CalibrationRig {
    /// Per-radio external path phase (splitter + cable), radians. Nominally
    /// identical cables differ slightly (paper: "small manufacturing
    /// imperfections exist for SMA splitters and cables").
    external_phases: Vec<f64>,
    /// Baseband tone frequency, Hz.
    pub tone_hz: f64,
    /// Number of tone samples averaged per measurement.
    pub samples: usize,
    /// Measurement SNR in dB (cabled, so very high).
    pub snr_db: f64,
}

impl CalibrationRig {
    /// A rig with per-cable imperfections up to ±`spread` radians.
    pub fn new(radios: usize, spread: f64, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self {
            external_phases: (0..radios)
                .map(|_| rng.gen_range(-spread..=spread))
                .collect(),
            tone_hz: 1.0e6,
            samples: 64,
            snr_db: 40.0,
        }
    }

    /// The (simulation-internal) true external-path phase of cable `r`.
    pub fn true_external_phase(&self, r: usize) -> f64 {
        self.external_phases[r]
    }

    /// Runs one calibration pass: feeds the tone through the external paths
    /// (optionally with cables `0` and `swap_with` exchanged) into the
    /// front end, and measures each radio's phase offset relative to
    /// radio 0 from the received samples.
    pub fn measure<R: Rng>(
        &self,
        fe: &FrontEnd,
        swap_with: Option<usize>,
        rng: &mut R,
    ) -> Vec<f64> {
        let radios = fe.radios();
        assert_eq!(radios, self.external_phases.len());
        let noise = NoiseSource::for_snr_db(self.snr_db);

        // Tone samples as received by each radio: the external path phase
        // rotates the tone before the radio's own capture rotation.
        let span = self.samples + 4;
        let streams: Vec<Vec<Complex64>> = (0..radios)
            .map(|r| {
                let mut cable = r;
                if let Some(s) = swap_with {
                    if r == 0 {
                        cable = s;
                    } else if r == s {
                        cable = 0;
                    }
                }
                let ext = Complex64::cis(self.external_phases[cable]);
                (0..span)
                    .map(|i| {
                        let t = i as f64 / fe.sample_rate;
                        let tone = Complex64::cis(std::f64::consts::TAU * self.tone_hz * t);
                        tone * ext + noise.sample(rng)
                    })
                    .collect()
            })
            .collect();

        let block = fe.capture(&streams, 0, self.samples);
        measure_relative_phases(&block)
    }

    /// The full two-pass procedure of §3: measure, swap each cable with
    /// cable 0 and re-measure, then apply eq. 11. Returns the recovered
    /// per-radio internal offsets relative to radio 0, plus the estimated
    /// external-path mismatches (eq. 12).
    pub fn calibrate<R: Rng>(&self, fe: &FrontEnd, rng: &mut R) -> Calibration {
        let pass1 = self.measure(fe, None, rng);
        let radios = fe.radios();
        let mut internal = vec![0.0; radios];
        let mut external_mismatch = vec![0.0; radios];
        for r in 1..radios {
            let pass2 = self.measure(fe, Some(r), rng);
            // Eq. 12 first: pass1 − pass2 = 2·(Phexᵣ − Phex₀). The cable
            // mismatch is small (< π/2), so halving the wrapped difference
            // is unambiguous.
            let mismatch = phase_sub(pass1[r], pass2[r]) / 2.0;
            external_mismatch[r] = mismatch;
            // Eq. 11, rearranged to avoid the ±π ambiguity of halving a
            // wrapped sum: internal = pass1 − mismatch.
            internal[r] = phase_sub(pass1[r], mismatch);
        }
        Calibration {
            offsets: internal,
            external_mismatch,
        }
    }
}

/// Recovered calibration state: everything the AP needs to undo its
/// oscillator offsets.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Internal oscillator offsets per radio, relative to radio 0 (radians).
    pub offsets: Vec<f64>,
    /// Estimated external path mismatch per cable, relative to cable 0.
    pub external_mismatch: Vec<f64>,
}

impl Calibration {
    /// An identity calibration (for perfect front ends).
    pub fn identity(radios: usize) -> Self {
        Self {
            offsets: vec![0.0; radios],
            external_mismatch: vec![0.0; radios],
        }
    }

    /// Removes the recovered offsets from a captured block whose row `m`
    /// was captured by radio `radio_of[m]`.
    pub fn apply(&self, block: &SnapshotBlock, radio_of: &[usize]) -> SnapshotBlock {
        assert_eq!(block.antennas(), radio_of.len());
        let rows: Vec<Vec<Complex64>> = (0..block.antennas())
            .map(|m| {
                let rot = Complex64::cis(-self.offsets[radio_of[m]]);
                block.stream(m).iter().map(|z| *z * rot).collect()
            })
            .collect();
        SnapshotBlock::new(rows)
    }

    /// Convenience for the common wiring where row `m` belongs to radio
    /// `m % radios`.
    pub fn apply_modulo(&self, block: &SnapshotBlock) -> SnapshotBlock {
        let radios = self.offsets.len();
        let map: Vec<usize> = (0..block.antennas()).map(|m| m % radios).collect();
        self.apply(block, &map)
    }

    /// A copy of this calibration whose per-radio corrections have drifted
    /// by `drift[r]` radians (fault injection): the table no longer matches
    /// the hardware it was measured on — the slow oscillator walk and
    /// thermal drift a one-time CW calibration cannot track (§3 assumes
    /// "the offsets stay constant once the radios are powered on"; real
    /// deployments re-calibrate because they don't).
    ///
    /// # Panics
    /// Panics if `drift` doesn't cover every radio.
    pub fn with_drift(&self, drift: &[f64]) -> Calibration {
        assert_eq!(
            drift.len(),
            self.offsets.len(),
            "need one drift term per radio"
        );
        Calibration {
            offsets: self.offsets.iter().zip(drift).map(|(o, d)| o + d).collect(),
            external_mismatch: self.external_mismatch.clone(),
        }
    }
}

/// Measures each row's mean phase relative to row 0.
fn measure_relative_phases(block: &SnapshotBlock) -> Vec<f64> {
    let base = block.stream(0);
    (0..block.antennas())
        .map(|m| {
            let mut acc = Complex64::ZERO;
            for (a, b) in block.stream(m).iter().zip(base) {
                acc += *a * b.conj();
            }
            acc.arg()
        })
        .collect()
}

/// Circular-safe phase subtraction.
fn phase_sub(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Wraps an angle into `(-π, π]`.
fn wrap_pi(x: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut y = x % tau;
    if y > std::f64::consts::PI {
        y -= tau;
    } else if y <= -std::f64::consts::PI {
        y += tau;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn wrap_err(a: f64, b: f64) -> f64 {
        wrap_pi(a - b).abs()
    }

    #[test]
    fn single_pass_is_biased_by_cables() {
        let fe = FrontEnd::new(4, 11);
        let rig = CalibrationRig::new(4, 0.3, 22);
        let mut rng = StdRng::seed_from_u64(1);
        let measured = rig.measure(&fe, None, &mut rng);
        #[allow(clippy::needless_range_loop)]
        for r in 1..4 {
            let true_internal = wrap_pi(fe.true_offset(r) - fe.true_offset(0));
            let cable_bias = rig.true_external_phase(r) - rig.true_external_phase(0);
            // Single pass sees internal + cable bias, not internal alone.
            assert!(wrap_err(measured[r], wrap_pi(true_internal + cable_bias)) < 0.02);
            if cable_bias.abs() > 0.05 {
                assert!(wrap_err(measured[r], true_internal) > 0.02);
            }
        }
    }

    #[test]
    fn two_pass_swap_recovers_internal_offsets() {
        let fe = FrontEnd::new(8, 5);
        let rig = CalibrationRig::new(8, 0.4, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let cal = rig.calibrate(&fe, &mut rng);
        for r in 1..8 {
            let truth = wrap_pi(fe.true_offset(r) - fe.true_offset(0));
            assert!(
                wrap_err(cal.offsets[r], truth) < 0.02,
                "radio {r}: {} vs {}",
                cal.offsets[r],
                truth
            );
        }
    }

    #[test]
    fn two_pass_recovers_cable_mismatch_too() {
        let fe = FrontEnd::new(4, 77);
        let rig = CalibrationRig::new(4, 0.2, 88);
        let mut rng = StdRng::seed_from_u64(3);
        let cal = rig.calibrate(&fe, &mut rng);
        for r in 1..4 {
            let truth = wrap_pi(rig.true_external_phase(r) - rig.true_external_phase(0));
            assert!(
                wrap_err(cal.external_mismatch[r], truth) < 0.02,
                "cable {r}: {} vs {}",
                cal.external_mismatch[r],
                truth
            );
        }
    }

    #[test]
    fn applying_calibration_cancels_offsets() {
        let fe = FrontEnd::new(4, 9);
        let rig = CalibrationRig::new(4, 0.3, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let cal = rig.calibrate(&fe, &mut rng);

        // Capture a constant signal: rows differ only by radio offsets.
        let streams = vec![vec![Complex64::ONE; 16]; 4];
        let raw = fe.capture(&streams, 0, 8);
        let fixed = cal.apply_modulo(&raw);
        // After calibration every row should share radio 0's phase.
        let base = fixed.stream(0)[0];
        for m in 1..4 {
            let z = fixed.stream(m)[0];
            assert!(
                (z - base).abs() < 0.05,
                "row {m} not aligned: {z} vs {base}"
            );
        }
    }

    #[test]
    fn identity_calibration_is_noop() {
        let cal = Calibration::identity(2);
        let block = SnapshotBlock::new(vec![
            vec![Complex64::cis(0.4); 4],
            vec![Complex64::cis(1.2); 4],
        ]);
        let out = cal.apply_modulo(&block);
        for m in 0..2 {
            for (a, b) in out.stream(m).iter().zip(block.stream(m)) {
                assert!((*a - *b).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn perfect_cables_make_single_pass_sufficient() {
        let fe = FrontEnd::new(4, 13);
        let rig = CalibrationRig::new(4, 0.0, 14);
        let mut rng = StdRng::seed_from_u64(5);
        let measured = rig.measure(&fe, None, &mut rng);
        #[allow(clippy::needless_range_loop)]
        for r in 1..4 {
            let truth = wrap_pi(fe.true_offset(r) - fe.true_offset(0));
            assert!(wrap_err(measured[r], truth) < 0.02);
        }
    }

    #[test]
    fn wrap_pi_bounds() {
        for x in [-10.0, -3.15, 0.0, 3.15, 10.0, 100.0] {
            let w = wrap_pi(x);
            assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        }
    }
}
