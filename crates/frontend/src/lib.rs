//! # at-frontend — simulated AP radio hardware
//!
//! The stand-in for the paper's WARP FPGA platform (§3): everything between
//! the antenna feed and the sample buffers handed to the ArrayTrack server.
//!
//! - [`radio`]: a bank of radios with unknown per-oscillator phase offsets,
//!   plain capture, and diversity-synthesis capture across the two long
//!   training symbols with the 500 ns AntSel switching window (§2.2);
//! - [`calibration`]: the USRP2 CW-tone calibration with the cable-swap
//!   trick that separates internal oscillator offsets from external path
//!   imperfections (§3, eqs. 9–12);
//! - [`buffer`]: the per-frame circular buffer with the 100 ms grouping
//!   query used by multipath suppression (§2.1, §2.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod calibration;
pub mod radio;

pub use buffer::{FrameBuffer, FrameEntry};
pub use calibration::{Calibration, CalibrationRig};
pub use radio::{FrontEnd, ANTSEL_SWITCH_S};
