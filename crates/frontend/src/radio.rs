//! Simulated WARP-like radio bank with per-radio oscillator phase offsets.
//!
//! Each radio downconverts with its own 2.4 GHz oscillator, introducing "an
//! unknown phase offset to the resulting signal, rendering AoA inoperable"
//! until calibrated (paper §3). We model each radio as a fixed random phase
//! rotation applied to everything it receives; the two antenna ports of a
//! radio share its oscillator, so they share the offset.

use at_dsp::SnapshotBlock;
use at_linalg::Complex64;
use rand::Rng;
use rand::SeedableRng;

/// Hardware switching time between a radio's two antenna ports: 500 ns
/// during which "the received signal is highly distorted and unusable"
/// (paper §2.2, footnote 1).
pub const ANTSEL_SWITCH_S: f64 = 500e-9;

/// A bank of radio front ends at an AP.
#[derive(Clone, Debug)]
pub struct FrontEnd {
    /// Per-radio oscillator phase offsets in radians. Unknown to the
    /// algorithms until recovered by calibration.
    phase_offsets: Vec<f64>,
    /// ADC sampling rate, Hz.
    pub sample_rate: f64,
}

impl FrontEnd {
    /// A front end with `radios` radios and random oscillator offsets drawn
    /// from the given seed.
    pub fn new(radios: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self {
            phase_offsets: (0..radios)
                .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                .collect(),
            sample_rate: at_dsp::SAMPLE_RATE_HZ,
        }
    }

    /// An idealized front end with zero phase offsets (for algorithm tests
    /// that want to bypass calibration).
    pub fn perfect(radios: usize) -> Self {
        Self {
            phase_offsets: vec![0.0; radios],
            sample_rate: at_dsp::SAMPLE_RATE_HZ,
        }
    }

    /// Number of radios.
    pub fn radios(&self) -> usize {
        self.phase_offsets.len()
    }

    /// The (simulation-internal) true oscillator offset of radio `r`.
    /// Exposed so tests and the calibration rig can verify recovery; the
    /// localization pipeline never reads it.
    pub fn true_offset(&self, r: usize) -> f64 {
        self.phase_offsets[r]
    }

    /// The AntSel switching time in samples at this front end's rate.
    pub fn switch_samples(&self) -> usize {
        (ANTSEL_SWITCH_S * self.sample_rate).ceil() as usize
    }

    /// Captures `k` samples starting at `start` from each antenna stream,
    /// with antenna `m` wired to radio `m` (one port per radio).
    ///
    /// # Panics
    /// Panics if there are more streams than radios or the span overruns.
    pub fn capture(&self, streams: &[Vec<Complex64>], start: usize, k: usize) -> SnapshotBlock {
        assert!(
            streams.len() <= self.radios(),
            "{} antennas but only {} radios",
            streams.len(),
            self.radios()
        );
        let rows: Vec<Vec<Complex64>> = streams
            .iter()
            .enumerate()
            .map(|(m, s)| {
                assert!(start + k <= s.len(), "capture span out of range");
                let rot = Complex64::cis(self.phase_offsets[m]);
                s[start..start + k].iter().map(|z| *z * rot).collect()
            })
            .collect();
        SnapshotBlock::new(rows)
    }

    /// Diversity-synthesis capture (paper §2.2): radio `r` records antenna
    /// `r` ("upper set") during long training symbol `S0`, toggles AntSel,
    /// and records antenna `port_b[r]` ("lower set") during `S1`. Because
    /// `S0` and `S1` are identical and within the channel coherence time,
    /// sample `δ` of each can be treated as simultaneous, synthesizing an
    /// array of up to `2 × radios` antennas from `radios` radios.
    ///
    /// `lts0_start`/`lts1_start` are the sample indices where the two long
    /// training symbols begin in the streams; `k` samples are taken at a
    /// common in-symbol offset `δ ≥ switch_samples()` so the unusable
    /// post-switch window is never consumed.
    ///
    /// `port_a[r]`/`port_b[r]` give the antenna stream index wired to each
    /// port of radio `r` (`None` = port unconnected).
    ///
    /// Returns a [`SnapshotBlock`] with the port-A rows first, then one
    /// row per connected port-B antenna, plus the matching antenna indices.
    ///
    /// Assumes the transmitter and AP share a carrier frequency; with a
    /// client CFO use [`FrontEnd::diversity_capture_cfo`], which de-rotates
    /// the lower set by the inter-symbol CFO phase.
    pub fn diversity_capture(
        &self,
        streams: &[Vec<Complex64>],
        port_a: &[Option<usize>],
        port_b: &[Option<usize>],
        lts0_start: usize,
        lts1_start: usize,
        k: usize,
    ) -> (SnapshotBlock, Vec<usize>) {
        self.diversity_capture_cfo(streams, port_a, port_b, lts0_start, lts1_start, k, 0.0)
    }

    /// [`FrontEnd::diversity_capture`] with correction for an estimated
    /// client carrier frequency offset (Hz): lower-set samples were taken
    /// `(lts1_start − lts0_start)/fs` seconds after their upper-set
    /// counterparts, so they carry an extra `e^{j2πΔf·ΔT}` that must be
    /// removed before the two sets can be treated as simultaneous.
    #[allow(clippy::too_many_arguments)]
    pub fn diversity_capture_cfo(
        &self,
        streams: &[Vec<Complex64>],
        port_a: &[Option<usize>],
        port_b: &[Option<usize>],
        lts0_start: usize,
        lts1_start: usize,
        k: usize,
        cfo_hz: f64,
    ) -> (SnapshotBlock, Vec<usize>) {
        assert_eq!(port_a.len(), self.radios(), "one port-A entry per radio");
        assert_eq!(port_b.len(), self.radios(), "one port-B entry per radio");
        let delta = self.switch_samples();
        let mut rows = Vec::new();
        let mut antennas = Vec::new();

        // Upper set: each radio's port-A antenna during S0.
        for (r, &ant) in port_a.iter().enumerate() {
            let Some(ant) = ant else { continue };
            let s = &streams[ant];
            assert!(lts0_start + delta + k <= s.len(), "S0 span out of range");
            let rot = Complex64::cis(self.phase_offsets[r]);
            rows.push(
                s[lts0_start + delta..lts0_start + delta + k]
                    .iter()
                    .map(|z| *z * rot)
                    .collect(),
            );
            antennas.push(ant);
        }

        // Lower set: port-B antennas during S1, same in-symbol offset δ.
        // CFO correction: undo the rotation accumulated between the two
        // capture windows.
        let dt = (lts1_start as f64 - lts0_start as f64) / self.sample_rate;
        let cfo_rot = Complex64::cis(-std::f64::consts::TAU * cfo_hz * dt);
        for (r, &ant) in port_b.iter().enumerate() {
            let Some(ant) = ant else { continue };
            let s = &streams[ant];
            assert!(lts1_start + delta + k <= s.len(), "S1 span out of range");
            let rot = Complex64::cis(self.phase_offsets[r]) * cfo_rot;
            rows.push(
                s[lts1_start + delta..lts1_start + delta + k]
                    .iter()
                    .map(|z| *z * rot)
                    .collect(),
            );
            antennas.push(ant);
        }

        (SnapshotBlock::new(rows), antennas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::c64;

    fn tone_stream(n: usize, freq: f64, phase: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::cis(std::f64::consts::TAU * freq * i as f64 / 40e6 + phase))
            .collect()
    }

    #[test]
    fn perfect_frontend_is_transparent() {
        let fe = FrontEnd::perfect(2);
        let streams = vec![tone_stream(32, 1e6, 0.0), tone_stream(32, 1e6, 1.0)];
        let block = fe.capture(&streams, 4, 10);
        assert_eq!(block.antennas(), 2);
        assert_eq!(block.snapshots(), 10);
        #[allow(clippy::needless_range_loop)]
        for m in 0..2 {
            for (a, b) in block.stream(m).iter().zip(&streams[m][4..14]) {
                assert!((*a - *b).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn offsets_rotate_each_radio() {
        let fe = FrontEnd::new(3, 99);
        let streams = vec![
            vec![c64(1.0, 0.0); 16],
            vec![c64(1.0, 0.0); 16],
            vec![c64(1.0, 0.0); 16],
        ];
        let block = fe.capture(&streams, 0, 8);
        for r in 0..3 {
            let expect = Complex64::cis(fe.true_offset(r));
            for z in block.stream(r) {
                assert!((*z - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offsets_are_deterministic_per_seed() {
        let a = FrontEnd::new(8, 42);
        let b = FrontEnd::new(8, 42);
        let c = FrontEnd::new(8, 43);
        for r in 0..8 {
            assert_eq!(a.true_offset(r), b.true_offset(r));
        }
        assert!((0..8).any(|r| a.true_offset(r) != c.true_offset(r)));
    }

    #[test]
    fn switch_time_is_20_samples_at_40msps() {
        let fe = FrontEnd::perfect(8);
        assert_eq!(fe.switch_samples(), 20);
    }

    #[test]
    fn diversity_capture_synthesizes_nine_antennas() {
        let fe = FrontEnd::perfect(8);
        // 9 antenna streams: a periodic tone so S0/S1 samples agree.
        let period = 128; // samples per fake "LTS"
        let streams: Vec<Vec<Complex64>> = (0..9)
            .map(|m| {
                (0..512)
                    .map(|i| {
                        Complex64::cis(std::f64::consts::TAU * (i % period) as f64 / period as f64)
                            * Complex64::cis(m as f64 * 0.3)
                    })
                    .collect()
            })
            .collect();
        let port_a: Vec<Option<usize>> = (0..8).map(Some).collect();
        let mut port_b = vec![None; 8];
        port_b[0] = Some(8); // ninth antenna on radio 0's port B
        let (block, ants) = fe.diversity_capture(&streams, &port_a, &port_b, 0, period, 10);
        assert_eq!(block.antennas(), 9);
        assert_eq!(ants, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // Periodicity makes the lower-set row equal a same-δ upper capture.
        let delta = fe.switch_samples();
        for (i, z) in block.stream(8).iter().enumerate() {
            let direct = streams[8][delta + i];
            assert!((*z - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn diversity_capture_full_16_antennas() {
        let fe = FrontEnd::perfect(8);
        let streams: Vec<Vec<Complex64>> = (0..16)
            .map(|m| vec![Complex64::cis(m as f64 * 0.1); 400])
            .collect();
        let port_a: Vec<Option<usize>> = (0..8).map(Some).collect();
        let port_b: Vec<Option<usize>> = (0..8).map(|r| Some(r + 8)).collect();
        let (block, ants) = fe.diversity_capture(&streams, &port_a, &port_b, 0, 128, 10);
        assert_eq!(block.antennas(), 16);
        assert_eq!(ants.len(), 16);
        assert_eq!(&ants[8..], &[8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn same_radio_applies_same_offset_to_both_ports() {
        let fe = FrontEnd::new(2, 7);
        let streams = vec![
            vec![Complex64::ONE; 400],
            vec![Complex64::ONE; 400],
            vec![Complex64::ONE; 400],
            vec![Complex64::ONE; 400],
        ];
        let port_a = vec![Some(0), Some(1)];
        let port_b = vec![Some(2), Some(3)];
        let (block, _) = fe.diversity_capture(&streams, &port_a, &port_b, 0, 128, 5);
        // Rows 0 and 2 share radio 0; rows 1 and 3 share radio 1.
        assert!((block.stream(0)[0] - block.stream(2)[0]).abs() < 1e-12);
        assert!((block.stream(1)[0] - block.stream(3)[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overrun_capture_panics() {
        let fe = FrontEnd::perfect(1);
        fe.capture(&[vec![Complex64::ONE; 8]], 4, 8);
    }

    #[test]
    #[should_panic(expected = "only 1 radios")]
    fn too_many_antennas_panics() {
        let fe = FrontEnd::perfect(1);
        fe.capture(&[vec![Complex64::ONE; 8], vec![Complex64::ONE; 8]], 0, 4);
    }
}
