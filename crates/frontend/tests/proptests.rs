//! Property-based tests for the simulated radio front end.

use at_dsp::SnapshotBlock;
use at_frontend::{Calibration, CalibrationRig, FrameBuffer, FrameEntry, FrontEnd};
use at_linalg::Complex64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wrap_pi(x: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut y = x % tau;
    if y > std::f64::consts::PI {
        y -= tau;
    } else if y <= -std::f64::consts::PI {
        y += tau;
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calibration_recovers_offsets_for_any_hardware(
        radios in 2usize..8,
        fe_seed in 0u64..500,
        rig_seed in 0u64..500,
        spread in 0.0f64..0.6,
    ) {
        let fe = FrontEnd::new(radios, fe_seed);
        let rig = CalibrationRig::new(radios, spread, rig_seed);
        let mut rng = StdRng::seed_from_u64(fe_seed ^ rig_seed);
        let cal = rig.calibrate(&fe, &mut rng);
        for r in 1..radios {
            let truth = wrap_pi(fe.true_offset(r) - fe.true_offset(0));
            let err = wrap_pi(cal.offsets[r] - truth).abs();
            prop_assert!(err < 0.05, "radio {r}: err {err}");
        }
    }

    #[test]
    fn capture_then_calibrate_is_phase_transparent(
        radios in 2usize..6,
        seed in 0u64..300,
    ) {
        // Capture a constant signal through random offsets, calibrate with
        // the *true* offsets: all rows must align with row 0.
        let fe = FrontEnd::new(radios, seed);
        let streams = vec![vec![Complex64::ONE; 12]; radios];
        let raw = fe.capture(&streams, 0, 8);
        let cal = Calibration {
            offsets: (0..radios)
                .map(|r| wrap_pi(fe.true_offset(r) - fe.true_offset(0)))
                .collect(),
            external_mismatch: vec![0.0; radios],
        };
        let fixed = cal.apply_modulo(&raw);
        let base = fixed.stream(0)[0];
        for m in 1..radios {
            prop_assert!((fixed.stream(m)[0] - base).abs() < 1e-9);
        }
    }

    #[test]
    fn buffer_never_exceeds_capacity(
        capacity in 1usize..16,
        pushes in 0usize..64,
    ) {
        let mut buf = FrameBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(FrameEntry {
                block: SnapshotBlock::new(vec![vec![Complex64::ONE; 2]]),
                timestamp: i as f64 * 0.01,
                client_id: (i % 3) as u64,
                detection_metric: 1.0,
            });
            prop_assert!(buf.len() <= capacity);
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        prop_assert_eq!(buf.evicted(), pushes.saturating_sub(capacity) as u64);
        // Entries remain in timestamp order.
        let ts: Vec<f64> = buf.iter().map(|e| e.timestamp).collect();
        for w in ts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn take_recent_group_partitions_by_client(
        n in 1usize..24,
        window in 0.01f64..0.5,
    ) {
        let mut buf = FrameBuffer::new(64);
        for i in 0..n {
            buf.push(FrameEntry {
                block: SnapshotBlock::new(vec![vec![Complex64::ONE; 2]]),
                timestamp: i as f64 * 0.02,
                client_id: (i % 2) as u64,
                detection_metric: 1.0,
            });
        }
        let before = buf.len();
        let group = buf.take_recent_group(0, window);
        // Everything drained belongs to client 0 and fits the window.
        prop_assert!(group.iter().all(|e| e.client_id == 0));
        if let (Some(first), Some(last)) = (group.first(), group.last()) {
            prop_assert!(last.timestamp - first.timestamp <= window + 1e-12);
        }
        // Conservation: drained + kept == before.
        prop_assert_eq!(group.len() + buf.len(), before);
        // Remaining entries for client 0 are strictly older than the window.
        let newest = group.last().map(|e| e.timestamp).unwrap_or(f64::MAX);
        for e in buf.iter() {
            if e.client_id == 0 {
                prop_assert!(newest - e.timestamp > window);
            }
        }
    }
}
