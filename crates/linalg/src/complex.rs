//! A from-scratch double-precision complex number.
//!
//! The offline crate set for this reproduction contains no complex-number or
//! linear-algebra crates, so `at-linalg` provides its own. The type is a
//! `#[repr(C)]` pair of `f64`s with the full arithmetic surface the DSP and
//! MUSIC code needs: field operations, conjugation, polar forms, `exp`,
//! square root, and scalar mixing with `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use at_linalg::Complex64;
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((b.re).abs() < 1e-12 && (b.im - 2.0).abs() < 1e-12);
/// assert_eq!(a + a, a * 2.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real (in-phase, "I") component.
    pub re: f64,
    /// Imaginary (quadrature, "Q") component.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `j` (electrical-engineering notation).
    pub const J: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{jθ}`; the workhorse for steering vectors and carriers.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`Self::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns `(r, θ)` such that `self == r·e^{jθ}`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Multiplicative inverse. Infinite components for zero input.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        c64(self.re / n, -self.im / n)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root (branch cut on the negative real axis).
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales the number by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-accumulate: `self + a*b`, used in hot inner products.
    #[inline]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:+?}j", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}{:+.*}j", p, self.re, p, self.im)
        } else {
            write!(f, "{}{:+}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w ≡ z · w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Complex64::new(3.0, -4.0), c64(3.0, -4.0));
        assert_eq!(Complex64::real(5.0), c64(5.0, 0.0));
        assert_eq!(Complex64::from(2.5), c64(2.5, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = c64(3.0, -4.0);
        let (r, th) = z.to_polar();
        assert!((r - 5.0).abs() < 1e-12);
        assert!(close(Complex64::from_polar(r, th), z));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let th = k as f64 * PI / 8.0;
            let z = Complex64::cis(th);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = c64(1.5, -2.0);
        let b = c64(-0.25, 3.0);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + Complex64::ONE), a * b + a));
        assert!(close(a * a.inv(), Complex64::ONE));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn conjugation_properties() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
        assert!((a * a.conj()).im.abs() < 1e-15);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(Complex64::J * Complex64::J, c64(-1.0, 0.0)));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        assert!(close(c64(0.0, PI).exp(), c64(-1.0, 0.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [c64(4.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0), c64(3.0, -7.0)] {
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt failed for {z}");
        }
    }

    #[test]
    fn mul_add_matches_expanded() {
        let acc = c64(0.5, 0.5);
        let a = c64(2.0, -1.0);
        let b = c64(-3.0, 4.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn sum_over_iterator() {
        let xs = [c64(1.0, 1.0), c64(2.0, -3.0), c64(-0.5, 0.25)];
        let s: Complex64 = xs.iter().sum();
        assert!(close(s, c64(2.5, -1.75)));
    }

    #[test]
    fn display_formats_with_precision() {
        let z = c64(1.23456, -7.0);
        assert_eq!(format!("{z:.2}"), "1.23-7.00j");
    }

    #[test]
    fn scalar_mixing() {
        let z = c64(1.0, -2.0);
        assert!(close(z * 2.0, c64(2.0, -4.0)));
        assert!(close(2.0 * z, z * 2.0));
        assert!(close(z / 2.0, c64(0.5, -1.0)));
        assert!(close(z + 1.0, c64(2.0, -2.0)));
        assert!(close(z - 1.0, c64(0.0, -2.0)));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(!c64(1.0, 2.0).is_nan());
        assert!(c64(1.0, 2.0).is_finite());
        assert!(!c64(f64::INFINITY, 0.0).is_finite());
    }
}
