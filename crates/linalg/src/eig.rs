//! Eigendecomposition of complex Hermitian matrices.
//!
//! MUSIC (paper §2.3.1) needs the full eigensystem of the `M×M` array
//! correlation matrix `Rxx` (eq. 4) to split signal from noise subspaces.
//! `M ≤ 16` here, so we use the cyclic complex Jacobi method: unconditionally
//! convergent for Hermitian matrices, numerically stable, and simple enough
//! to verify exhaustively — the right tool given that no external
//! linear-algebra crate is available offline.
//!
//! Each Jacobi step applies a unitary plane rotation `R(p,q)` chosen to zero
//! the off-diagonal entry `a_pq`. Writing `a_pq = r·e^{jφ}`, the rotation is
//!
//! ```text
//! R[p][p] = c        R[p][q] =  s·e^{jφ}
//! R[q][p] = -s·e^{-jφ}   R[q][q] = c
//! ```
//!
//! with `c = cosθ`, `s = sinθ`, `tan 2θ = 2r / (a_qq − a_pp)` — exactly the
//! real symmetric Jacobi rotation after the phase `e^{jφ}` is factored out.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::vector::CVector;

/// Result of a Hermitian eigendecomposition: `A = V · diag(λ) · Vᴴ`.
///
/// Eigenvalues are real (Hermitian input) and sorted **descending**, so
/// `eigenvalues[0]` is the largest — the convention MUSIC uses when
/// classifying signal vs. noise subspaces (paper eq. 5 lists ascending, the
/// top `D` being signals; descending lets callers take `..d` for signals).
/// `eigenvectors.col(k)` is the unit eigenvector for `eigenvalues[k]`.
#[derive(Clone, Debug)]
pub struct HermitianEigen {
    /// Real eigenvalues, sorted descending.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: CMatrix,
}

impl HermitianEigen {
    /// The eigenvector for `eigenvalues[k]`.
    pub fn eigenvector(&self, k: usize) -> CVector {
        self.eigenvectors.col(k)
    }

    /// Regularized inverse `V · diag(1/max(λ, ε·λmax)) · Vᴴ` — the
    /// loading MVDR/Capon beamformers need to invert near-singular sample
    /// correlation matrices.
    pub fn inverse_regularized(&self, rel_floor: f64) -> CMatrix {
        let n = self.eigenvalues.len();
        let lmax = self.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        let floor = (rel_floor * lmax).max(f64::MIN_POSITIVE);
        let inv = CMatrix::from_fn(n, n, |r, c| {
            if r == c {
                Complex64::real(1.0 / self.eigenvalues[r].max(floor))
            } else {
                Complex64::ZERO
            }
        });
        let vi = &self.eigenvectors * &inv;
        &vi * &self.eigenvectors.hermitian_transpose()
    }

    /// Reconstructs `V · diag(λ) · Vᴴ`; used by tests to bound the backward
    /// error of the decomposition.
    pub fn reconstruct(&self) -> CMatrix {
        let n = self.eigenvalues.len();
        let lambda = CMatrix::from_fn(n, n, |r, c| {
            if r == c {
                Complex64::real(self.eigenvalues[r])
            } else {
                Complex64::ZERO
            }
        });
        let vl = &self.eigenvectors * &lambda;
        &vl * &self.eigenvectors.hermitian_transpose()
    }
}

/// Errors from the eigensolver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EigError {
    /// The input matrix was not square.
    NotSquare,
    /// The input matrix was not Hermitian within the solver's tolerance.
    NotHermitian,
    /// The Jacobi sweeps did not converge (pathological input, e.g. NaNs).
    NoConvergence,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NotSquare => write!(f, "matrix is not square"),
            EigError::NotHermitian => write!(f, "matrix is not Hermitian"),
            EigError::NoConvergence => write!(f, "Jacobi iteration did not converge"),
        }
    }
}

impl std::error::Error for EigError {}

/// Maximum number of full Jacobi sweeps before giving up. For well-formed
/// Hermitian input of dimension ≤ 64 convergence takes < 15 sweeps; more
/// means the input contained NaN/Inf.
const MAX_SWEEPS: usize = 100;

/// Hermitian tolerance relative to the matrix magnitude.
const HERMITIAN_RTOL: f64 = 1e-8;

/// Computes the full eigendecomposition of a Hermitian matrix.
///
/// # Errors
/// - [`EigError::NotSquare`] / [`EigError::NotHermitian`] on malformed input;
/// - [`EigError::NoConvergence`] only for non-finite input.
///
/// ```
/// use at_linalg::{c64, CMatrix, eigh};
/// // Pauli Y has eigenvalues ±1.
/// let y = CMatrix::from_rows(2, 2, vec![
///     c64(0.0, 0.0), c64(0.0, -1.0),
///     c64(0.0, 1.0), c64(0.0, 0.0),
/// ]);
/// let e = eigh(&y).unwrap();
/// assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] + 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &CMatrix) -> Result<HermitianEigen, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    let scale = a.frobenius_norm().max(1.0);
    if !a.is_hermitian(HERMITIAN_RTOL * scale) {
        return Err(EigError::NotHermitian);
    }
    if n == 0 {
        return Ok(HermitianEigen {
            eigenvalues: vec![],
            eigenvectors: CMatrix::zeros(0, 0),
        });
    }

    // Work on a Hermitian-symmetrized copy so tiny asymmetries from the
    // caller's accumulation order cannot bias the sweeps.
    let mut m = CMatrix::from_fn(n, n, |r, c| (a[(r, c)] + a[(c, r)].conj()).scale(0.5));
    let mut v = CMatrix::identity(n);

    // Convergence threshold on off-diagonal mass, relative to input scale.
    let tol = (1e-14 * scale).powi(2) * (n * n) as f64;

    for _sweep in 0..MAX_SWEEPS {
        if m.off_diagonal_sqr() <= tol {
            return Ok(collect(&m, &v));
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                rotate(&mut m, &mut v, p, q);
            }
        }
        if !m.trace().is_finite() {
            return Err(EigError::NoConvergence);
        }
    }
    if m.off_diagonal_sqr() <= tol * 1e4 {
        // Accept slightly looser convergence rather than fail: still far
        // below the noise floor of any measured correlation matrix.
        return Ok(collect(&m, &v));
    }
    Err(EigError::NoConvergence)
}

/// Applies one complex Jacobi rotation zeroing `m[(p,q)]`, updating the
/// accumulated eigenvector matrix `v`.
fn rotate(m: &mut CMatrix, v: &mut CMatrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    let r = apq.abs();
    if r == 0.0 {
        return;
    }
    let app = m[(p, p)].re;
    let aqq = m[(q, q)].re;

    // Real-Jacobi tangent via the numerically-stable Rutishauser formula.
    let theta = (aqq - app) / (2.0 * r);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    // Unit phase of the annihilated element.
    let e = apq.scale(1.0 / r); // e^{jφ}

    let n = m.rows();
    // A ← Rᴴ A R. Diagonal and pivot entries first (closed forms), then the
    // remaining rows/columns.
    let new_pp = app - t * r;
    let new_qq = aqq + t * r;
    m[(p, p)] = Complex64::real(new_pp);
    m[(q, q)] = Complex64::real(new_qq);
    m[(p, q)] = Complex64::ZERO;
    m[(q, p)] = Complex64::ZERO;

    for k in 0..n {
        if k == p || k == q {
            continue;
        }
        // Column update for rows k: [A_kp, A_kq] ← [c·A_kp − s·ē·A_kq, s·e·A_kp + c·A_kq]
        let akp = m[(k, p)];
        let akq = m[(k, q)];
        let new_kp = akp.scale(c) - (e.conj() * akq).scale(s);
        let new_kq = (e * akp).scale(s) + akq.scale(c);
        m[(k, p)] = new_kp;
        m[(k, q)] = new_kq;
        m[(p, k)] = new_kp.conj();
        m[(q, k)] = new_kq.conj();
    }

    // V ← V R with the same column update.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = vkp.scale(c) - (e.conj() * vkq).scale(s);
        v[(k, q)] = (e * vkp).scale(s) + vkq.scale(c);
    }
}

/// Extracts sorted (descending) eigenpairs from the converged diagonal.
fn collect(m: &CMatrix, v: &CMatrix) -> HermitianEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let eigenvectors = CMatrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    HermitianEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn mat_close(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = CMatrix::from_fn(3, 3, |r, c| {
            if r == c {
                Complex64::real([3.0, -1.0, 2.0][r])
            } else {
                Complex64::ZERO
            }
        });
        let e = eigh(&d).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, -1.0]);
    }

    #[test]
    fn real_symmetric_2x2_known_eigenvalues() {
        // [[2, 1], [1, 2]] → eigenvalues 3, 1.
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(2.0, 0.0)],
        );
        let e = eigh(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_hermitian_3x3_reconstructs() {
        let a = CMatrix::from_rows(
            3,
            3,
            vec![
                c64(2.0, 0.0),
                c64(1.0, 1.0),
                c64(0.0, -2.0),
                c64(1.0, -1.0),
                c64(3.0, 0.0),
                c64(0.5, 0.5),
                c64(0.0, 2.0),
                c64(0.5, -0.5),
                c64(-1.0, 0.0),
            ],
        );
        let e = eigh(&a).unwrap();
        assert!(mat_close(&e.reconstruct(), &a, 1e-10));
        // Trace is preserved.
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace().re).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = CMatrix::from_rows(
            3,
            3,
            vec![
                c64(1.0, 0.0),
                c64(0.0, 1.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(5.0, 0.0),
                c64(1.0, -1.0),
                c64(2.0, 0.0),
                c64(1.0, 1.0),
                c64(0.0, 0.0),
            ],
        );
        let e = eigh(&a).unwrap();
        let vhv = &e.eigenvectors.hermitian_transpose() * &e.eigenvectors;
        assert!(mat_close(&vhv, &CMatrix::identity(3), 1e-10));
    }

    #[test]
    fn rank_one_matrix_has_single_nonzero_eigenvalue() {
        // v·vᴴ has eigenvalue |v|² with eigenvector v/|v|, rest zero.
        let v = CVector::from(vec![c64(1.0, 1.0), c64(2.0, -1.0), c64(0.0, 3.0)]);
        let mut a = CMatrix::zeros(3, 3);
        a.add_outer_assign(&v, 1.0);
        let e = eigh(&a).unwrap();
        assert!((e.eigenvalues[0] - v.norm_sqr()).abs() < 1e-10);
        assert!(e.eigenvalues[1].abs() < 1e-10);
        assert!(e.eigenvalues[2].abs() < 1e-10);
        // Top eigenvector is parallel to v: |⟨v̂, ê⟩| = 1.
        let vhat = v.normalized();
        let corr = vhat.dot(&e.eigenvector(0)).abs();
        assert!((corr - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(4.0, 0.0), c64(1.0, 2.0), c64(1.0, -2.0), c64(-3.0, 0.0)],
        );
        let e = eigh(&a).unwrap();
        for k in 0..2 {
            let v = e.eigenvector(k);
            let av = a.mul_vec(&v);
            let lv = v.scale(e.eigenvalues[k]);
            assert!((&av - &lv).norm() < 1e-10, "A·v ≠ λ·v for k={k}");
        }
    }

    #[test]
    fn regularized_inverse_inverts_well_conditioned_input() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(3.0, 0.0), c64(1.0, 1.0), c64(1.0, -1.0), c64(4.0, 0.0)],
        );
        let e = eigh(&a).unwrap();
        let inv = e.inverse_regularized(1e-12);
        let prod = &a * &inv;
        let i = CMatrix::identity(2);
        for r in 0..2 {
            for c in 0..2 {
                assert!((prod[(r, c)] - i[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn regularized_inverse_bounds_singular_input() {
        // Rank-one matrix: the floor keeps the inverse finite.
        let v = CVector::from(vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
        let mut a = CMatrix::zeros(2, 2);
        a.add_outer_assign(&v, 1.0);
        let e = eigh(&a).unwrap();
        let inv = e.inverse_regularized(1e-3);
        assert!(inv.as_slice().iter().all(|z| z.is_finite()));
        // Largest inverse eigenvalue is 1/(1e-3·λmax) = 500.
        let ei = eigh(&inv).unwrap();
        assert!((ei.eigenvalues[0] - 500.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(eigh(&CMatrix::zeros(2, 3)), err_kind(EigError::NotSquare));
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(1.0, 0.0), c64(1.0, 0.0), c64(5.0, 0.0), c64(1.0, 0.0)],
        );
        assert_eq!(eigh(&a), err_kind(EigError::NotHermitian));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let e = eigh(&CMatrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn identity_has_all_unit_eigenvalues() {
        let e = eigh(&CMatrix::identity(8)).unwrap();
        for l in e.eigenvalues {
            assert!((l - 1.0).abs() < 1e-12);
        }
    }

    fn err_kind(e: EigError) -> Result<HermitianEigen, EigError> {
        Err(e)
    }

    impl PartialEq for HermitianEigen {
        fn eq(&self, _: &Self) -> bool {
            false // only used so Result comparisons above compile
        }
    }
}
