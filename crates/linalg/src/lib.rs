//! # at-linalg — complex linear algebra for array signal processing
//!
//! The numerical substrate of the ArrayTrack reproduction. The offline crate
//! universe for this project ships no complex-number or matrix crates, so
//! everything MUSIC needs is implemented here from scratch:
//!
//! - [`Complex64`]: double-precision complex arithmetic (with [`c64`] shorthand);
//! - [`CVector`] / [`CMatrix`]: dense complex vectors and row-major matrices,
//!   including Hermitian rank-one accumulation for sample correlation
//!   matrices (paper eq. 4);
//! - [`eigh`]: eigendecomposition of Hermitian matrices via the cyclic
//!   complex Jacobi method, producing the signal/noise subspace split at the
//!   heart of the MUSIC pseudospectrum (paper §2.3.1, eqs. 5–6);
//! - [`NoiseSubspace`]: the noise eigenvectors in split re/im
//!   structure-of-arrays layout, with single and batched
//!   `aᴴ·E_N·E_Nᴴ·a` projection kernels — the allocation-free shape of the
//!   MUSIC sweep.
//!
//! Matrices in this workload are tiny (≤ 16×16), so the implementation is
//! tuned for robustness and verifiability rather than asymptotic speed; the
//! Criterion bench `eig` in `at-bench` confirms an 8×8 decomposition runs in
//! single-digit microseconds, irrelevant next to the paper's 100 ms budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod eig;
mod matrix;
mod soa;
mod vector;

pub use complex::{c64, Complex64};
pub use eig::{eigh, EigError, HermitianEigen};
pub use matrix::CMatrix;
pub use soa::NoiseSubspace;
pub use vector::CVector;
