//! Dense complex matrices (row-major) sized for array processing.
//!
//! ArrayTrack's hot-path matrices are tiny (4×4 … 16×16 correlation
//! matrices), so the implementation favours clarity and numerical
//! transparency over cache blocking.

use crate::complex::Complex64;
use crate::vector::CVector;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows: shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major storage view.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Returns row `r` as a vector.
    pub fn row(&self, r: usize) -> CVector {
        assert!(r < self.rows);
        CVector::from(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns column `c` as a vector.
    pub fn col(&self, c: usize) -> CVector {
        assert!(c < self.cols);
        CVector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Conjugate (Hermitian) transpose `Aᴴ`.
    pub fn hermitian_transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales all entries by a real factor.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Scales all entries by a complex factor.
    pub fn scale_c(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        CVector::from_fn(self.rows, |r| {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            row.iter()
                .zip(x.iter())
                .fold(Complex64::ZERO, |acc, (a, b)| acc.mul_add(*a, *b))
        })
    }

    /// Rank-one update `self += k · v vᴴ`; the building block of sample
    /// correlation matrices (paper eq. 4).
    pub fn add_outer_assign(&mut self, v: &CVector, k: f64) {
        assert!(self.is_square() && self.rows == v.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                let delta = (v[r] * v[c].conj()).scale(k);
                self[(r, c)] += delta;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Sum of off-diagonal squared magnitudes; the Jacobi sweep's
    /// convergence measure.
    pub fn off_diagonal_sqr(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    s += self[(r, c)].norm_sqr();
                }
            }
        }
        s
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> Complex64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// True if `‖A − Aᴴ‖∞ ≤ tol` element-wise.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            if self[(r, r)].im.abs() > tol {
                return false;
            }
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the contiguous square submatrix with corner `(r0, c0)` and
    /// size `n` — used by spatial smoothing's subarray averaging.
    pub fn submatrix(&self, r0: usize, c0: usize, n: usize) -> CMatrix {
        assert!(
            r0 + n <= self.rows && c0 + n <= self.cols,
            "submatrix out of range"
        );
        CMatrix::from_fn(n, n, |r, c| self[(r0 + r, c0 + c)])
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "mul: inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    let delta = a * rhs[(k, c)];
                    out[(r, c)] += delta;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn approx(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_fn(3, 3, |r, c| c64(r as f64, c as f64));
        let i = CMatrix::identity(3);
        assert!(approx(&(&a * &i), &a, 1e-15));
        assert!(approx(&(&i * &a), &a, 1e-15));
    }

    #[test]
    fn matmul_known_result() {
        // [[1, j], [0, 2]] * [[1, 0], [j, 1]] = [[1 + j·j, j], [2j, 2]]
        let a = CMatrix::from_rows(
            2,
            2,
            vec![Complex64::ONE, Complex64::J, Complex64::ZERO, c64(2.0, 0.0)],
        );
        let b = CMatrix::from_rows(
            2,
            2,
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::J,
                Complex64::ONE,
            ],
        );
        let p = &a * &b;
        assert_eq!(p[(0, 0)], c64(0.0, 0.0));
        assert_eq!(p[(0, 1)], Complex64::J);
        assert_eq!(p[(1, 0)], c64(0.0, 2.0));
        assert_eq!(p[(1, 1)], c64(2.0, 0.0));
    }

    #[test]
    fn hermitian_transpose_involution() {
        let a = CMatrix::from_fn(2, 3, |r, c| c64(r as f64 + 1.0, c as f64 - 1.0));
        let ah = a.hermitian_transpose();
        assert_eq!(ah.rows(), 3);
        assert_eq!(ah.cols(), 2);
        assert!(approx(&ah.hermitian_transpose(), &a, 1e-15));
    }

    #[test]
    fn outer_product_accumulation_is_hermitian() {
        let v = CVector::from(vec![c64(1.0, 2.0), c64(-0.5, 1.0), c64(0.0, -1.0)]);
        let mut m = CMatrix::zeros(3, 3);
        m.add_outer_assign(&v, 0.5);
        assert!(m.is_hermitian(1e-14));
        // Diagonal entries are 0.5·|v_i|².
        assert!((m[(0, 0)].re - 0.5 * v[0].norm_sqr()).abs() < 1e-14);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = CMatrix::from_fn(3, 3, |r, c| c64((r * 3 + c) as f64, 1.0));
        let x = CVector::from(vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 0.0)]);
        let y = a.mul_vec(&x);
        for r in 0..3 {
            let expect: Complex64 = (0..3).map(|c| a[(r, c)] * x[c]).sum();
            assert!((y[r] - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn hermitian_detection() {
        let h = CMatrix::from_rows(
            2,
            2,
            vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(0.0, -1.0), c64(2.0, 0.0)],
        );
        assert!(h.is_hermitian(1e-15));
        let nh = CMatrix::from_rows(
            2,
            2,
            vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(0.0, 1.0), c64(2.0, 0.0)],
        );
        assert!(!nh.is_hermitian(1e-15));
        assert!(!CMatrix::zeros(2, 3).is_hermitian(1e-15));
    }

    #[test]
    fn submatrix_extraction() {
        let a = CMatrix::from_fn(4, 4, |r, c| c64((r * 4 + c) as f64, 0.0));
        let s = a.submatrix(1, 1, 2);
        assert_eq!(s[(0, 0)], c64(5.0, 0.0));
        assert_eq!(s[(1, 1)], c64(10.0, 0.0));
    }

    #[test]
    fn trace_and_norms() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(1.0, 0.0), c64(3.0, 4.0), Complex64::ZERO, c64(0.0, 2.0)],
        );
        assert_eq!(a.trace(), c64(1.0, 2.0));
        assert!((a.frobenius_norm() - (1.0f64 + 25.0 + 4.0).sqrt()).abs() < 1e-12);
        assert!((a.off_diagonal_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let _ = &CMatrix::zeros(2, 3) * &CMatrix::zeros(2, 3);
    }
}
