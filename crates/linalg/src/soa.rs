//! Split re/im (structure-of-arrays) kernels for the MUSIC noise-subspace
//! projection.
//!
//! The classic scan evaluates `P(θ) = 1 / (a(θ)ᴴ·Q·a(θ))` with the
//! projector `Q = E_N·E_Nᴴ` materialized as an `M×M` complex matrix and a
//! fresh `CVector` temporary per candidate bearing — a complex
//! matrix–vector product per bin, with the working set scattered across
//! interleaved `Complex64` pairs. Expanding the projector instead,
//!
//! ```text
//! aᴴ·E_N·E_Nᴴ·a  =  Σ_k |e_kᴴ·a|²
//! ```
//!
//! needs only the `M − D` noise eigenvectors themselves, and every term of
//! the sum is non-negative, so the expansion is also better conditioned
//! than the projector form (no cancellation between accumulated products).
//! [`NoiseSubspace`] stores the eigenvectors as split real/imaginary `f64`
//! rows and evaluates the quadratic form for a single probe vector or a
//! whole contiguous slab of them without allocating — the shape the
//! 720-bin MUSIC sweep wants.

use crate::eig::HermitianEigen;
use crate::vector::CVector;

/// The noise subspace `E_N` of a Hermitian eigendecomposition in
/// split-complex, structure-of-arrays layout: row `k` of the internal
/// `re`/`im` slabs holds the real/imaginary parts of noise eigenvector
/// `k`, contiguously over the array elements.
#[derive(Clone, Debug)]
pub struct NoiseSubspace {
    elements: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl NoiseSubspace {
    /// Extracts the noise eigenvectors (columns `signals..elements` of the
    /// eigenvector matrix — eigenvalues are sorted descending, so those
    /// are the smallest) from a decomposition.
    ///
    /// # Panics
    /// Panics unless `signals < elements`: MUSIC needs at least one noise
    /// dimension.
    pub fn from_eigen(eig: &HermitianEigen, signals: usize) -> Self {
        let elements = eig.eigenvalues.len();
        assert!(signals < elements, "need at least one noise dimension");
        let dims = elements - signals;
        let mut re = Vec::with_capacity(dims * elements);
        let mut im = Vec::with_capacity(dims * elements);
        for k in signals..elements {
            for m in 0..elements {
                let z = eig.eigenvectors[(m, k)];
                re.push(z.re);
                im.push(z.im);
            }
        }
        Self { elements, re, im }
    }

    /// Number of array elements (the length every probe vector must have).
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Number of noise dimensions `M − D`.
    pub fn dims(&self) -> usize {
        self.re.len().checked_div(self.elements).unwrap_or(0)
    }

    /// The quadratic form `aᴴ·E_N·E_Nᴴ·a = Σ_k |e_kᴴ·a|²` for one probe
    /// vector given as split re/im slices.
    ///
    /// # Panics
    /// Panics if either slice length differs from [`Self::elements`].
    pub fn projection_split(&self, a_re: &[f64], a_im: &[f64]) -> f64 {
        let m = self.elements;
        assert_eq!(a_re.len(), m, "probe length must match element count");
        assert_eq!(a_im.len(), m, "probe length must match element count");
        let mut total = 0.0;
        for (er, ei) in self.re.chunks_exact(m).zip(self.im.chunks_exact(m)) {
            let mut dr = 0.0;
            let mut di = 0.0;
            for j in 0..m {
                // e_kᴴ·a — the eigenvector side carries the conjugate.
                dr += er[j] * a_re[j] + ei[j] * a_im[j];
                di += er[j] * a_im[j] - ei[j] * a_re[j];
            }
            total += dr * dr + di * di;
        }
        total
    }

    /// The quadratic form `aᴴ·E_N·E_Nᴴ·a` for one complex probe vector.
    /// Bit-identical to [`Self::projection_split`] on the same values (the
    /// accumulation order is the same).
    ///
    /// # Panics
    /// Panics if `a.len()` differs from [`Self::elements`].
    pub fn projection(&self, a: &CVector) -> f64 {
        let m = self.elements;
        assert_eq!(a.len(), m, "probe length must match element count");
        let s = a.as_slice();
        let mut total = 0.0;
        for (er, ei) in self.re.chunks_exact(m).zip(self.im.chunks_exact(m)) {
            let mut dr = 0.0;
            let mut di = 0.0;
            for j in 0..m {
                dr += er[j] * s[j].re + ei[j] * s[j].im;
                di += er[j] * s[j].im - ei[j] * s[j].re;
            }
            total += dr * dr + di * di;
        }
        total
    }

    /// Batched projection over a contiguous split-complex slab of `n`
    /// probe vectors (`n × elements`, row-major): writes
    /// `out[i] = Σ_k |e_kᴴ·a_i|²` for each row `a_i`. This is the sweep
    /// kernel — one pass over cache-resident eigenvector rows per probe,
    /// no temporaries.
    ///
    /// # Panics
    /// Panics if the slab lengths are not `out.len() × elements` or the
    /// re/im slabs disagree.
    pub fn batch_projection(&self, slab_re: &[f64], slab_im: &[f64], out: &mut [f64]) {
        let m = self.elements;
        assert_eq!(slab_re.len(), slab_im.len(), "re/im slabs must match");
        assert_eq!(
            slab_re.len(),
            out.len() * m,
            "slab must hold exactly out.len() probe vectors"
        );
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.projection_split(&slab_re[i * m..(i + 1) * m], &slab_im[i * m..(i + 1) * m]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::eig::eigh;
    use crate::matrix::CMatrix;

    /// A deterministic well-conditioned Hermitian test matrix.
    fn test_matrix(m: usize) -> CMatrix {
        let mut r = CMatrix::zeros(m, m);
        for s in 0..3 {
            let v = CVector::from_fn(m, |i| {
                c64(
                    ((i * (s + 2)) as f64 * 0.7).sin(),
                    ((i + s) as f64 * 1.3).cos(),
                )
            });
            r.add_outer_assign(&v, 1.0 + s as f64 * 0.5);
        }
        for i in 0..m {
            r[(i, i)] += c64(0.3, 0.0);
        }
        r
    }

    /// The reference path: materialize `Q = E_N·E_Nᴴ` and evaluate
    /// `aᴴ·Q·a` with the generic matrix/vector ops.
    fn naive_projection(eig: &HermitianEigen, signals: usize, a: &CVector) -> f64 {
        let m = eig.eigenvalues.len();
        let mut q = CMatrix::zeros(m, m);
        for k in signals..m {
            q.add_outer_assign(&eig.eigenvector(k), 1.0);
        }
        a.dot(&q.mul_vec(a)).re
    }

    #[test]
    fn projection_matches_materialized_projector() {
        let m = 7;
        let eig = eigh(&test_matrix(m)).unwrap();
        for signals in 1..m {
            let noise = NoiseSubspace::from_eigen(&eig, signals);
            assert_eq!(noise.elements(), m);
            assert_eq!(noise.dims(), m - signals);
            for t in 0..16 {
                let a = CVector::from_fn(m, |i| Complex64::cis(i as f64 * 0.37 * (t as f64 + 0.4)));
                let fast = noise.projection(&a);
                let slow = naive_projection(&eig, signals, &a);
                // Both orderings accumulate the same bilinear form; they
                // agree to a tiny absolute error relative to its scale.
                assert!(
                    (fast - slow).abs() <= 1e-12 * (1.0 + slow.abs()),
                    "signals={signals} t={t}: {fast} vs {slow}"
                );
                assert!(fast >= 0.0, "sum of squared magnitudes");
            }
        }
    }

    #[test]
    fn split_and_complex_probes_are_bit_identical() {
        let m = 6;
        let eig = eigh(&test_matrix(m)).unwrap();
        let noise = NoiseSubspace::from_eigen(&eig, 2);
        for t in 0..8 {
            let a = CVector::from_fn(m, |i| Complex64::cis((i * t) as f64 * 0.51 + 0.1));
            let re: Vec<f64> = a.iter().map(|z| z.re).collect();
            let im: Vec<f64> = a.iter().map(|z| z.im).collect();
            let x = noise.projection(&a);
            let y = noise.projection_split(&re, &im);
            assert_eq!(x.to_bits(), y.to_bits(), "t={t}");
        }
    }

    #[test]
    fn batch_matches_single_probes_bit_exactly() {
        let m = 5;
        let n = 13;
        let eig = eigh(&test_matrix(m)).unwrap();
        let noise = NoiseSubspace::from_eigen(&eig, 1);
        let mut slab_re = Vec::new();
        let mut slab_im = Vec::new();
        let mut singles = Vec::new();
        for i in 0..n {
            let a = CVector::from_fn(m, |j| Complex64::cis((i + j) as f64 * 0.23));
            slab_re.extend(a.iter().map(|z| z.re));
            slab_im.extend(a.iter().map(|z| z.im));
            singles.push(noise.projection(&a));
        }
        let mut out = vec![0.0; n];
        noise.batch_projection(&slab_re, &slab_im, &mut out);
        for (o, s) in out.iter().zip(&singles) {
            assert_eq!(o.to_bits(), s.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "noise dimension")]
    fn rejects_all_signal_subspace() {
        let eig = eigh(&test_matrix(4)).unwrap();
        let _ = NoiseSubspace::from_eigen(&eig, 4);
    }

    use crate::complex::Complex64;
}
