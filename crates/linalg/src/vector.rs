//! Dense complex vectors.

use crate::complex::Complex64;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, heap-allocated complex column vector.
///
/// Inner products follow the physics/DSP convention used throughout the
/// paper: [`CVector::dot`] conjugates the *left* operand, i.e. `⟨a,b⟩ = aᴴb`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// A vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self {
            data: vec![Complex64::ZERO; n],
        }
    }

    /// Builds a vector from any iterator of complex values.
    #[allow(clippy::should_implement_trait)] // inherent name kept for call-site brevity
    pub fn from_iter<I: IntoIterator<Item = Complex64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }

    /// Builds a vector by evaluating `f(i)` for `i in 0..n`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> Complex64) -> Self {
        Self {
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Hermitian inner product `selfᴴ · rhs` (left operand conjugated).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, rhs: &CVector) -> Complex64 {
        assert_eq!(self.len(), rhs.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(Complex64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Squared Euclidean norm `Σ|zᵢ|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns a unit-norm copy; zero vectors are returned unchanged.
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CVector {
        CVector::from_iter(self.data.iter().map(|z| z.conj()))
    }

    /// Scales every element by a real factor.
    pub fn scale(&self, k: f64) -> CVector {
        CVector::from_iter(self.data.iter().map(|z| z.scale(k)))
    }

    /// Scales every element by a complex factor.
    pub fn scale_c(&self, k: Complex64) -> CVector {
        CVector::from_iter(self.data.iter().map(|z| *z * k))
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }
}

impl From<Vec<Complex64>> for CVector {
    fn from(data: Vec<Complex64>) -> Self {
        Self { data }
    }
}

impl From<&[Complex64]> for CVector {
    fn from(data: &[Complex64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        CVector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| *a + *b))
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        CVector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| *a - *b))
    }
}

impl Mul<Complex64> for &CVector {
    type Output = CVector;
    fn mul(self, k: Complex64) -> CVector {
        self.scale_c(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn zeros_and_len() {
        let v = CVector::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert!(v.iter().all(|z| *z == Complex64::ZERO));
        assert!(CVector::zeros(0).is_empty());
    }

    #[test]
    fn dot_conjugates_left_side() {
        // ⟨j, 1⟩ = conj(j)·1 = -j
        let a = CVector::from(vec![Complex64::J]);
        let b = CVector::from(vec![Complex64::ONE]);
        assert_eq!(a.dot(&b), c64(0.0, -1.0));
    }

    #[test]
    fn dot_with_self_is_norm_sqr() {
        let v = CVector::from(vec![c64(1.0, 2.0), c64(-3.0, 0.5)]);
        let d = v.dot(&v);
        assert!((d.re - v.norm_sqr()).abs() < 1e-12);
        assert!(d.im.abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = CVector::from(vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        // Zero vector stays zero.
        assert_eq!(CVector::zeros(3).normalized(), CVector::zeros(3));
    }

    #[test]
    fn arithmetic_ops() {
        let a = CVector::from(vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
        let b = CVector::from(vec![c64(1.0, 1.0), c64(2.0, 0.0)]);
        assert_eq!((&a + &b)[0], c64(2.0, 1.0));
        assert_eq!((&a - &b)[1], c64(-2.0, 1.0));
        assert_eq!((&a * c64(0.0, 1.0))[0], Complex64::J);
    }

    #[test]
    fn from_fn_builder() {
        let v = CVector::from_fn(4, |i| c64(i as f64, 0.0));
        assert_eq!(v[3], c64(3.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        CVector::zeros(2).dot(&CVector::zeros(3));
    }
}
