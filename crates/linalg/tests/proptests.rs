//! Property-based tests for the complex linear-algebra substrate.

use at_linalg::{c64, eigh, CMatrix, CVector, Complex64};
use proptest::prelude::*;

/// Strategy: a finite complex number with moderate magnitude.
fn complex() -> impl Strategy<Value = Complex64> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(re, im)| c64(re, im))
}

/// Strategy: an `n × n` Hermitian matrix built as `B + Bᴴ`.
fn hermitian(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex(), n * n).prop_map(move |data| {
        let b = CMatrix::from_rows(n, n, data);
        let bh = b.hermitian_transpose();
        (&b + &bh).scale(0.5)
    })
}

fn cvec(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec(complex(), n).prop_map(CVector::from)
}

fn mat_err(a: &CMatrix, b: &CMatrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #[test]
    fn complex_mul_is_associative(a in complex(), b in complex(), c in complex()) {
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!((lhs - rhs).abs() / scale < 1e-10);
    }

    #[test]
    fn complex_conj_mul_norm(a in complex()) {
        prop_assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-8 * (1.0 + a.norm_sqr()));
    }

    #[test]
    fn polar_round_trips(a in complex()) {
        let (r, th) = a.to_polar();
        let back = Complex64::from_polar(r, th);
        prop_assert!((a - back).abs() < 1e-10 * (1.0 + r));
    }

    #[test]
    fn dot_is_conjugate_symmetric(a in cvec(6), b in cvec(6)) {
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        let scale = 1.0 + ab.abs();
        prop_assert!((ab - ba.conj()).abs() / scale < 1e-10);
    }

    #[test]
    fn cauchy_schwarz(a in cvec(5), b in cvec(5)) {
        let lhs = a.dot(&b).abs();
        let rhs = a.norm() * b.norm();
        prop_assert!(lhs <= rhs * (1.0 + 1e-10) + 1e-12);
    }

    #[test]
    fn matmul_respects_hermitian_transpose(data in proptest::collection::vec(complex(), 9)) {
        // (AB)ᴴ = Bᴴ Aᴴ
        let a = CMatrix::from_rows(3, 3, data.clone());
        let b = CMatrix::from_rows(3, 3, data.iter().rev().cloned().collect());
        let lhs = (&a * &b).hermitian_transpose();
        let rhs = &b.hermitian_transpose() * &a.hermitian_transpose();
        prop_assert!(mat_err(&lhs, &rhs) < 1e-8 * (1.0 + lhs.frobenius_norm()));
    }

    #[test]
    fn eigh_reconstructs(m in hermitian(4)) {
        let e = eigh(&m).unwrap();
        let err = mat_err(&e.reconstruct(), &m);
        prop_assert!(err < 1e-8 * (1.0 + m.frobenius_norm()), "reconstruction err {err}");
    }

    #[test]
    fn eigh_eigenvectors_unitary(m in hermitian(5)) {
        let e = eigh(&m).unwrap();
        let vhv = &e.eigenvectors.hermitian_transpose() * &e.eigenvectors;
        prop_assert!(mat_err(&vhv, &CMatrix::identity(5)) < 1e-9);
    }

    #[test]
    fn eigh_eigenvalues_sorted_and_trace_preserved(m in hermitian(6)) {
        let e = eigh(&m).unwrap();
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - m.trace().re).abs() < 1e-8 * (1.0 + m.trace().re.abs()));
    }

    #[test]
    fn eigh_satisfies_eigen_equation(m in hermitian(3)) {
        let e = eigh(&m).unwrap();
        for k in 0..3 {
            let v = e.eigenvector(k);
            let av = m.mul_vec(&v);
            let lv = v.scale(e.eigenvalues[k]);
            prop_assert!((&av - &lv).norm() < 1e-8 * (1.0 + m.frobenius_norm()));
        }
    }

    #[test]
    fn psd_correlation_matrix_has_nonnegative_eigenvalues(
        vs in proptest::collection::vec(cvec(4), 1..6)
    ) {
        // Sample correlation matrices (sums of outer products) are PSD.
        let mut r = CMatrix::zeros(4, 4);
        for v in &vs {
            r.add_outer_assign(v, 1.0 / vs.len() as f64);
        }
        let e = eigh(&r).unwrap();
        let scale = 1.0 + r.frobenius_norm();
        for l in e.eigenvalues {
            prop_assert!(l > -1e-8 * scale, "negative eigenvalue {l}");
        }
    }
}
