//! The per-stage latency budget: the paper's §4.4 table (detection /
//! spectrum / fusion) read out of a live [`MetricsSnapshot`] instead of
//! assumed, plus the tolerance comparison the CI bench-smoke gate runs.

use crate::snapshot::MetricsSnapshot;
use crate::stages;
use std::fmt;

/// Observed per-stage p50 latencies, milliseconds — the measured
/// counterpart of the paper's latency table (`Td` = detect, `Tp` =
/// spectrum + fusion).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyBudget {
    /// Preamble detection p50, ms (`Td`).
    pub detect_ms: f64,
    /// Frame → AoA spectrum p50, ms (MUSIC + weighting + symmetry).
    pub spectrum_ms: f64,
    /// Multi-AP fusion p50, ms (engine coarse-to-fine synthesis).
    pub fusion_ms: f64,
}

impl LatencyBudget {
    /// The stage keys a budget is built from, in pipeline order.
    pub const STAGES: [&'static str; 3] = [stages::DETECT, stages::SPECTRUM, stages::FUSION];

    /// Reads the budget from a snapshot's `at_stage_seconds` histograms.
    /// Returns `None` if any of the three stages has no observations.
    pub fn from_snapshot(s: &MetricsSnapshot) -> Option<Self> {
        let p50_ms = |stage: &str| -> Option<f64> {
            s.histogram(stages::STAGE_SECONDS, &[("stage", stage)])?
                .p50()
                .map(|v| v * 1e3)
        };
        Some(Self {
            detect_ms: p50_ms(stages::DETECT)?,
            spectrum_ms: p50_ms(stages::SPECTRUM)?,
            fusion_ms: p50_ms(stages::FUSION)?,
        })
    }

    /// Server-side processing total, ms (the paper's `Tp`: everything after
    /// detection).
    pub fn processing_ms(&self) -> f64 {
        self.spectrum_ms + self.fusion_ms
    }

    /// The stage values in [`Self::STAGES`] order.
    pub fn stage_ms(&self) -> [(&'static str, f64); 3] {
        [
            (stages::DETECT, self.detect_ms),
            (stages::SPECTRUM, self.spectrum_ms),
            (stages::FUSION, self.fusion_ms),
        ]
    }

    /// Gates this (observed) budget against a committed `baseline`: every
    /// stage must satisfy `observed <= baseline * tolerance + slack_ms`.
    /// `slack_ms` absorbs timer granularity on near-zero stages. Returns
    /// the list of violations (empty = pass).
    pub fn regressions_vs(
        &self,
        baseline: &LatencyBudget,
        tolerance: f64,
        slack_ms: f64,
    ) -> Vec<BudgetViolation> {
        assert!(tolerance >= 1.0, "tolerance is a multiplier >= 1");
        self.stage_ms()
            .iter()
            .zip(baseline.stage_ms())
            .filter_map(|(&(stage, got), (_, base))| {
                let limit = base * tolerance + slack_ms;
                (got > limit).then_some(BudgetViolation {
                    stage,
                    observed_ms: got,
                    baseline_ms: base,
                    limit_ms: limit,
                })
            })
            .collect()
    }
}

impl fmt::Display for LatencyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detect {:.3} ms | spectrum {:.3} ms | fusion {:.3} ms (Tp = {:.3} ms)",
            self.detect_ms,
            self.spectrum_ms,
            self.fusion_ms,
            self.processing_ms()
        )
    }
}

/// One stage exceeding its budget limit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetViolation {
    /// Stage name.
    pub stage: &'static str,
    /// Observed p50, ms.
    pub observed_ms: f64,
    /// Committed baseline p50, ms.
    pub baseline_ms: f64,
    /// The gate limit that was exceeded, ms.
    pub limit_ms: f64,
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` regressed: {:.3} ms observed > {:.3} ms limit (baseline {:.3} ms)",
            self.stage, self.observed_ms, self.limit_ms, self.baseline_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn registry_with_stages(detect: f64, spectrum: f64, fusion: f64) -> Registry {
        let r = Registry::new();
        for (stage, v) in [
            (stages::DETECT, detect),
            (stages::SPECTRUM, spectrum),
            (stages::FUSION, fusion),
        ] {
            r.histogram(stages::STAGE_SECONDS, &[("stage", stage)])
                .observe(v);
        }
        r
    }

    #[test]
    fn budget_reads_stage_histograms() {
        let r = registry_with_stages(20e-6, 0.9e-3, 1.1e-3);
        let b = LatencyBudget::from_snapshot(&r.snapshot()).expect("all stages present");
        // p50 of a single observation interpolates inside its 2^k bucket;
        // the estimate must be within one bucket (2x) of the truth.
        assert!(b.detect_ms > 0.01 && b.detect_ms < 0.04, "{b}");
        assert!(b.spectrum_ms > 0.45 && b.spectrum_ms < 1.8, "{b}");
        assert!((b.processing_ms() - b.spectrum_ms - b.fusion_ms).abs() < 1e-12);
    }

    #[test]
    fn missing_stage_yields_none() {
        let r = Registry::new();
        r.histogram(stages::STAGE_SECONDS, &[("stage", stages::DETECT)])
            .observe(1e-5);
        assert_eq!(LatencyBudget::from_snapshot(&r.snapshot()), None);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = LatencyBudget {
            detect_ms: 0.02,
            spectrum_ms: 0.07,
            fusion_ms: 0.9,
        };
        let ok = LatencyBudget {
            detect_ms: 0.05,
            spectrum_ms: 0.2,
            fusion_ms: 2.6,
        };
        assert!(ok.regressions_vs(&base, 3.0, 0.05).is_empty());

        let bad = LatencyBudget {
            fusion_ms: 3.0,
            ..ok
        };
        let viol = bad.regressions_vs(&base, 3.0, 0.05);
        assert_eq!(viol.len(), 1);
        assert_eq!(viol[0].stage, stages::FUSION);
        assert!(viol[0].to_string().contains("regressed"));
    }

    #[test]
    fn slack_absorbs_timer_granularity() {
        let base = LatencyBudget {
            detect_ms: 0.0,
            spectrum_ms: 0.0,
            fusion_ms: 0.0,
        };
        let tiny = LatencyBudget {
            detect_ms: 0.01,
            spectrum_ms: 0.01,
            fusion_ms: 0.01,
        };
        assert!(tiny.regressions_vs(&base, 3.0, 0.05).is_empty());
        assert_eq!(tiny.regressions_vs(&base, 3.0, 0.0).len(), 3);
    }
}
