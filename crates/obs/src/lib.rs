//! # at-obs — the ArrayTrack observability layer
//!
//! ArrayTrack's headline claim is system-level: ~100 ms added latency from
//! frame-on-air to location fix (paper §4.4). Holding that claim while the
//! system grows requires seeing *every* pipeline stage, all the time, at a
//! cost that is noise next to the stages themselves. This crate is the
//! zero-dependency layer the rest of the workspace records into:
//!
//! - [`metrics`] — a lock-free registry of counters, gauges, and
//!   fixed-bucket histograms (p50/p95/p99); hot-path recording is plain
//!   relaxed atomics, handles are cached per call site by the
//!   [`time_stage!`] / [`count!`] macros.
//! - [`trace`] — a structured tracing facade: spans with stage/AP/client
//!   fields, delivered to a ring-buffer subscriber or a JSON-lines sink.
//!   Off by default; one atomic load when off.
//! - [`snapshot`] — deterministic [`MetricsSnapshot`]s exportable as
//!   Prometheus text and JSON, with a human-readable diff.
//! - [`stages`] — the canonical stage names (Figure 1's flow) and the
//!   [`StageSpan`] RAII timer every instrumented site uses.
//! - [`budget`] — the measured per-stage latency budget (detection /
//!   spectrum / fusion, mirroring the paper's table) plus the tolerance
//!   gate `ci.sh`'s bench-smoke stage enforces against `BENCH_PERF.json`.
//!
//! Instrumentation lives in the crates that own each stage: `at-dsp`
//! (preamble detection), `at-core` (smoothing, eigendecomposition, scan,
//! suppression, fusion, server localize, health/fault counters),
//! `at-frontend` (capture buffers), and `at-testbed` (capture,
//! acquisition). See DESIGN.md §"Observability" for the naming scheme and
//! the measured overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod metrics;
pub mod names;
pub mod snapshot;
pub mod stages;
pub mod trace;

pub use budget::{BudgetViolation, LatencyBudget};
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use snapshot::MetricsSnapshot;
pub use stages::StageSpan;
pub use trace::{
    clear_sink, set_sink, span, tracing_enabled, JsonLinesSink, RingBufferSink, Span, SpanRecord,
    TraceSink,
};
