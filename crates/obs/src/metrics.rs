//! The lock-free metrics registry: counters, gauges, and fixed-bucket
//! histograms with p50/p95/p99 estimation.
//!
//! Hot-path operations ([`Counter::inc`], [`Gauge::set`],
//! [`Histogram::observe`]) are plain atomic read-modify-writes — no locks,
//! no allocation. The registry itself takes a short write lock only on
//! first registration of a metric; instrumented call sites cache the
//! returned `Arc` handle (see the [`counter!`](crate::counter) /
//! [`histogram!`](crate::histogram) macros), so steady-state recording
//! never touches the registry map at all.
//!
//! Naming scheme (see DESIGN.md §"Observability"): metric names are
//! `at_`-prefixed snake case with unit suffixes (`_seconds`, `_total`),
//! labels are static lowercase keys (`stage`, `kind`, `reason`, `ap`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing event counter.
///
/// The underlying value is a `u64` that **wraps on overflow** (the
/// semantics of `AtomicU64::fetch_add`); consumers that diff snapshots
/// must treat an observed decrease as a wrap or a process restart, exactly
/// as Prometheus clients do.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n` (wrapping on `u64` overflow).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; lock-free).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: cumulative-free per-bucket counts plus a
/// running sum, all atomics.
///
/// Bucket `i` counts observations `v <= bounds[i]` and `> bounds[i-1]`;
/// one extra overflow bucket counts `v > bounds.last()`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: Gauge,
    count: Counter,
}

/// Default duration buckets, seconds: powers of two from 1 µs to ≈ 8.4 s.
/// Wide enough for every pipeline stage (a MUSIC frame is ~10⁻⁴ s, a cold
/// exhaustive localize ~10⁻² s) with ≤ 2× relative quantile error.
pub fn duration_buckets() -> Vec<f64> {
    (0..24).map(|k| 1e-6 * f64::powi(2.0, k)).collect()
}

impl Histogram {
    /// A histogram over the given ascending, finite bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, unsorted, or non-finite.
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        let mut counts = Vec::with_capacity(bounds.len() + 1);
        counts.resize_with(bounds.len() + 1, AtomicU64::default);
        Self {
            bounds: bounds.to_vec(),
            counts,
            sum: Gauge::default(),
            count: Counter::default(),
        }
    }

    /// A histogram with the default [`duration_buckets`].
    pub fn for_durations() -> Self {
        Self::with_buckets(&duration_buckets())
    }

    /// Records one observation (lock-free: one atomic add per call plus
    /// the sum CAS).
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        self.count.inc();
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.get(),
            count: self.count.get(),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile estimation.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending, finite).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile `q ∈ [0, 1]` by linear interpolation inside the
    /// containing bucket (the Prometheus `histogram_quantile` rule). The
    /// overflow bucket clamps to the last finite bound. Returns `None` on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= rank && c > 0 {
                if i >= self.bounds.len() {
                    return Some(*self.bounds.last().expect("non-empty bounds"));
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (rank - prev as f64) / c as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean of all observations (`sum / count`).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// A metric identity: name plus sorted label pairs. Orders by name, then
/// labels, so snapshots iterate deterministically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name (`at_*` snake case).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// Canonical `name{k="v",...}` form (Prometheus series syntax).
    pub fn canonical(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// The registry: owns every metric in the process (or a scoped test
/// instance). Registration is lock-guarded and idempotent; recording
/// through the returned handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricId, Metric>>,
}

impl Registry {
    /// An empty registry (tests use scoped instances; production code uses
    /// [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        if let Metric::Counter(c) = self.get_or_insert(id, || Metric::Counter(Arc::default())) {
            return c;
        }
        panic!("metric {name} already registered with a different type");
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        if let Metric::Gauge(g) = self.get_or_insert(id, || Metric::Gauge(Arc::default())) {
            return g;
        }
        panic!("metric {name} already registered with a different type");
    }

    /// Returns (registering on first use) the duration histogram
    /// `name{labels}` with the default buckets.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with(name, labels, &duration_buckets())
    }

    /// Returns (registering on first use) a histogram with explicit bucket
    /// bounds. Bounds are fixed by whoever registers first.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different type.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        if let Metric::Histogram(h) = self.get_or_insert(id, || {
            Metric::Histogram(Arc::new(Histogram::with_buckets(bounds)))
        }) {
            return h;
        }
        panic!("metric {name} already registered with a different type");
    }

    fn get_or_insert(&self, id: MetricId, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(&id) {
            return m.clone();
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        map.entry(id).or_insert_with(make).clone()
    }

    /// A deterministic point-in-time snapshot of every registered metric,
    /// ordered by [`MetricId`].
    pub fn snapshot(&self) -> crate::snapshot::MetricsSnapshot {
        let map = self.metrics.read().expect("registry poisoned");
        let entries = map
            .iter()
            .map(|(id, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (id.clone(), v)
            })
            .collect();
        crate::snapshot::MetricsSnapshot { entries }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every pipeline stage records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_wraps_on_overflow() {
        let c = Counter::default();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), 0, "counters wrap, matching AtomicU64::fetch_add");
        c.add(5);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        g.set(1.5);
        g.add(2.25);
        assert_eq!(g.get(), 3.75);
        g.add(-5.0);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        // Bounds [1, 2, 4]: a value exactly on a bound lands in that
        // bucket (`le` semantics), strictly-greater spills to the next.
        let h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.0001, 2.0, 4.0, 4.0001, 1e9] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        let expected_sum = 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 4.0001 + 1e9;
        assert!((s.sum - expected_sum).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        let h = Histogram::with_buckets(&[1.0, 2.0, 3.0, 4.0]);
        // 100 observations uniform over (0, 4]: 25 per bucket.
        for i in 0..100 {
            h.observe(0.04 * (i + 1) as f64);
        }
        let s = h.snapshot();
        // p50 rank = 50 → end of bucket 2 (cum 25, 50): interpolates to 2.0.
        assert!((s.p50().unwrap() - 2.0).abs() < 1e-12);
        // p95 rank = 95 → bucket (3, 4], 20/25 through it: 3.8.
        assert!((s.p95().unwrap() - 3.8).abs() < 1e-12);
        assert!((s.quantile(0.0).unwrap() - 0.0).abs() < 1e-12);
        assert!((s.quantile(1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((s.mean().unwrap() - 2.02).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_overflow_bucket() {
        let h = Histogram::with_buckets(&[1.0, 2.0]);
        h.observe(100.0);
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(2.0), "overflow clamps to last bound");
        assert_eq!(s.p99(), Some(2.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::for_durations().snapshot();
        assert_eq!(s.p50(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn duration_buckets_cover_stage_range() {
        let b = duration_buckets();
        assert_eq!(b.len(), 24);
        assert_eq!(b[0], 1e-6);
        assert!(*b.last().unwrap() > 8.0, "covers multi-second stages");
    }

    #[test]
    fn registry_is_idempotent_and_typed() {
        let r = Registry::new();
        let a = r.counter("at_x_total", &[("k", "v")]);
        let b = r.counter("at_x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series → same handle");
        assert_eq!(r.counter("at_x_total", &[("k", "w")]).get(), 0);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_rejected() {
        let r = Registry::new();
        r.counter("at_y", &[]);
        r.gauge("at_y", &[]);
    }

    #[test]
    fn metric_id_canonical_sorts_labels() {
        let id = MetricId::new("at_z", &[("b", "2"), ("a", "1")]);
        assert_eq!(id.canonical(), "at_z{a=\"1\",b=\"2\"}");
        assert_eq!(MetricId::new("at_z", &[]).canonical(), "at_z");
    }
}
