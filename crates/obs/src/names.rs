//! Canonical names for cross-crate metrics.
//!
//! Stage timings get their names from [`crate::stages`]; everything else
//! that more than one crate needs to agree on — the recorder on one side,
//! dashboards/tests/loadgen asserting on the other — lives here, so a
//! rename is a one-line change instead of a string hunt. Today that is
//! the `at-serve` session store: the ROADMAP's "millions of mostly-idle
//! clients" goal makes resident-session accounting an operational
//! invariant (the loadgen mixed workload asserts the resident gauges
//! never exceed the configured cap), which only works if both sides spell
//! the names identically.

/// Gauge: keyed sessions currently resident in the serve session store.
pub const SERVE_SESSIONS_RESIDENT: &str = "at_serve_sessions_resident";

/// Gauge: spectra currently resident across all keyed sessions — the
/// quantity the store's hard cap bounds.
pub const SERVE_SESSIONS_SPECTRA_RESIDENT: &str = "at_serve_sessions_spectra_resident";

/// Counter: keyed sessions created (first spectrum for a new key).
pub const SERVE_SESSIONS_CREATED_TOTAL: &str = "at_serve_sessions_created_total";

/// Counter: keyed sessions evicted, labelled `reason="idle"` (idle
/// timeout hit by the reaper) or `reason="cap"` (displaced oldest-first
/// by an insert over the resident-spectra cap).
pub const SERVE_SESSIONS_EVICTED_TOTAL: &str = "at_serve_sessions_evicted_total";

/// Counter: keyed spectrum submissions accepted into the store.
pub const SERVE_SESSIONS_SUBMITS_TOTAL: &str = "at_serve_sessions_submits_total";

/// Counter: bytes of spectrum-submission frames read off AP/client
/// uplinks, labelled `encoding="raw"|"quantized"|"lossless"` — the
/// quantity protocol v3's wire compression exists to shrink (loadgen's
/// byte-budget smoke gate reads the same counter the operator would).
pub const SERVE_UPLINK_BYTES_TOTAL: &str = "at_serve_uplink_bytes_total";

/// Counter: compressed (v3 `SubmitCompressed*`) frames admitted,
/// labelled `mode="quantized"|"lossless"`.
pub const SERVE_COMPRESSED_FRAMES_TOTAL: &str = "at_serve_compressed_frames_total";

/// Gauge: cumulative uplink compression ratio — raw-equivalent bytes of
/// every compressed submission divided by the bytes actually on the
/// wire. 1.0 until the first compressed frame arrives; ≥8 is the
/// loadgen acceptance bar for the quantized mixed phase.
pub const SERVE_UPLINK_COMPRESSION_RATIO: &str = "at_serve_uplink_compression_ratio";

/// Counter: bytes appended to the capture journal (record frames plus
/// segment headers), by the `at-replay` recorder tapping the server at
/// admission.
pub const REPLAY_JOURNAL_BYTES_TOTAL: &str = "at_replay_journal_bytes_total";

/// Counter: records appended to the capture journal, labelled
/// `event="submit"|"query"|"outcome"|"failure"|"tick"|"idle_reap"|"epoch"`.
pub const REPLAY_RECORDS_TOTAL: &str = "at_replay_records_total";

/// Gauge: the serve deployment's current topology epoch (0 = the config
/// the server started with; incremented by every applied `Reconfigure`).
pub const SERVE_TOPOLOGY_EPOCH: &str = "at_serve_topology_epoch";

/// Counter: topology reconfigurations applied on the live server,
/// labelled `op="add"|"remove"|"move"`.
pub const SERVE_RECONFIGURES_TOTAL: &str = "at_serve_reconfigures_total";

/// Counter: journal segments rotated out (closed at the size threshold
/// and succeeded by a fresh segment file).
pub const REPLAY_SEGMENTS_ROTATED_TOTAL: &str = "at_replay_segments_rotated_total";

/// Counter: recorder write failures. The recorder is fail-open: after
/// the first I/O error it stops journaling (and keeps counting here)
/// rather than take the serving path down with it.
pub const REPLAY_WRITE_ERRORS_TOTAL: &str = "at_replay_write_errors_total";

/// Gauge: bytes in the journal segment currently being appended to
/// (resets to the header size at every rotation).
pub const REPLAY_SEGMENT_BYTES: &str = "at_replay_segment_bytes";

/// Counter: replayed queries whose recomputed outcome differed from the
/// recorded one — the quantity the `replay_check` CI gate requires to
/// be zero on the committed golden journal.
pub const REPLAY_DIVERGENCE_TOTAL: &str = "at_replay_divergence_total";
