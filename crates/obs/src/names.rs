//! Canonical names for cross-crate metrics.
//!
//! Stage timings get their names from [`crate::stages`]; everything else
//! that more than one crate needs to agree on — the recorder on one side,
//! dashboards/tests/loadgen asserting on the other — lives here, so a
//! rename is a one-line change instead of a string hunt. Today that is
//! the `at-serve` session store: the ROADMAP's "millions of mostly-idle
//! clients" goal makes resident-session accounting an operational
//! invariant (the loadgen mixed workload asserts the resident gauges
//! never exceed the configured cap), which only works if both sides spell
//! the names identically.

/// Gauge: keyed sessions currently resident in the serve session store.
pub const SERVE_SESSIONS_RESIDENT: &str = "at_serve_sessions_resident";

/// Gauge: spectra currently resident across all keyed sessions — the
/// quantity the store's hard cap bounds.
pub const SERVE_SESSIONS_SPECTRA_RESIDENT: &str = "at_serve_sessions_spectra_resident";

/// Counter: keyed sessions created (first spectrum for a new key).
pub const SERVE_SESSIONS_CREATED_TOTAL: &str = "at_serve_sessions_created_total";

/// Counter: keyed sessions evicted, labelled `reason="idle"` (idle
/// timeout hit by the reaper) or `reason="cap"` (displaced oldest-first
/// by an insert over the resident-spectra cap).
pub const SERVE_SESSIONS_EVICTED_TOTAL: &str = "at_serve_sessions_evicted_total";

/// Counter: keyed spectrum submissions accepted into the store.
pub const SERVE_SESSIONS_SUBMITS_TOTAL: &str = "at_serve_sessions_submits_total";
