//! Point-in-time metric snapshots, exportable as Prometheus text
//! exposition format and JSON, plus the snapshot diff the CI gate prints.

use crate::metrics::{MetricId, MetricValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deterministic copy of every metric in a [`crate::metrics::Registry`]
/// at one instant, ordered by [`MetricId`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, sorted by name then labels.
    pub entries: BTreeMap<MetricId, MetricValue>,
}

impl MetricsSnapshot {
    /// Looks up a series by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let id = MetricId {
            name: name.to_string(),
            labels,
        };
        self.entries.get(&id)
    }

    /// Counter value of a series, if present and a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state of a series, if present and a histogram.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&crate::metrics::HistogramSnapshot> {
        match self.get(name, labels)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition format (one `# TYPE` line per metric
    /// name, histograms expanded into `_bucket`/`_sum`/`_count` series
    /// with cumulative `le` buckets).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (id, value) in &self.entries {
            if id.name != last_name {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", id.name);
                last_name = &id.name;
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", id.canonical());
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", id.canonical());
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = if i < h.bounds.len() {
                            format_float(h.bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{} {cum}",
                            with_label(&id.name, "_bucket", &id.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        with_label(&id.name, "_sum", &id.labels, None),
                        format_float(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        with_label(&id.name, "_count", &id.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// JSON object keyed by the canonical series name; histograms carry
    /// bounds, counts, sum, count, and the three headline quantiles.
    /// Deterministic: keys appear in [`MetricId`] order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (id, value) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "  {}: ", json_string(&id.canonical()));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{}", format_float(*v));
                }
                MetricValue::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds.iter().map(|b| format_float(*b)).collect();
                    let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                    let _ = write!(
                        out,
                        "{{ \"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {} }}",
                        bounds.join(", "),
                        counts.join(", "),
                        format_float(h.sum),
                        h.count,
                        json_opt(h.p50()),
                        json_opt(h.p95()),
                        json_opt(h.p99()),
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Human-readable diff against an older snapshot: one line per series
    /// whose value changed, `name: old -> new`. Histograms diff by count
    /// and p50. Series only present on one side are listed as added or
    /// removed. Returns an empty string when nothing changed.
    pub fn diff(&self, older: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (id, new) in &self.entries {
            match older.entries.get(id) {
                None => {
                    let _ = writeln!(out, "+ {}: {}", id.canonical(), summarize(new));
                }
                Some(old) if old != new => {
                    let _ = writeln!(
                        out,
                        "~ {}: {} -> {}",
                        id.canonical(),
                        summarize(old),
                        summarize(new)
                    );
                }
                Some(_) => {}
            }
        }
        for id in older.entries.keys() {
            if !self.entries.contains_key(id) {
                let _ = writeln!(out, "- {}", id.canonical());
            }
        }
        out
    }
}

fn summarize(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => c.to_string(),
        MetricValue::Gauge(g) => format_float(*g),
        MetricValue::Histogram(h) => format!(
            "count={} p50={}",
            h.count,
            h.p50().map_or("n/a".into(), format_float)
        ),
    }
}

fn with_label(
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        format!("{name}{suffix}")
    } else {
        format!("{name}{suffix}{{{}}}", pairs.join(","))
    }
}

/// Formats a float compactly but losslessly enough for export (shortest
/// round-trip via `{}`; integers keep no trailing `.0` per JSON norms).
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), format_float)
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("at_events_total", &[("kind", "ok")]).add(3);
        r.gauge("at_load", &[]).set(0.5);
        let h = r.histogram_with("at_lat_seconds", &[("stage", "x")], &[0.001, 0.01, 0.1]);
        h.observe(0.005);
        h.observe(0.005);
        h.observe(0.5);
        r.snapshot()
    }

    #[test]
    fn prometheus_export_is_valid_and_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE at_events_total counter"));
        assert!(text.contains("at_events_total{kind=\"ok\"} 3"));
        assert!(text.contains("# TYPE at_lat_seconds histogram"));
        // Cumulative buckets: 0, 2, 2, then +Inf picks up the overflow.
        assert!(text.contains("at_lat_seconds_bucket{stage=\"x\",le=\"0.001\"} 0"));
        assert!(text.contains("at_lat_seconds_bucket{stage=\"x\",le=\"0.01\"} 2"));
        assert!(text.contains("at_lat_seconds_bucket{stage=\"x\",le=\"0.1\"} 2"));
        assert!(text.contains("at_lat_seconds_bucket{stage=\"x\",le=\"+Inf\"} 3"));
        assert!(text.contains("at_lat_seconds_count{stage=\"x\"} 3"));
        assert!(text.contains("at_load 0.5"));
        // Every line is either a comment or `series value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn json_export_is_deterministic_and_parsable_shape() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b, "snapshot export must be deterministic");
        assert!(a.contains("\"at_events_total{kind=\\\"ok\\\"}\": 3"));
        assert!(a.contains("\"p50\":"));
        // Balanced braces/brackets (cheap structural validity check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                a.matches(open).count(),
                a.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn diff_reports_changes_only() {
        let r = Registry::new();
        let c = r.counter("at_n_total", &[]);
        c.inc();
        let before = r.snapshot();
        assert_eq!(before.diff(&before), "");
        c.add(4);
        r.gauge("at_new", &[]).set(1.0);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert!(d.contains("~ at_n_total: 1 -> 5"), "{d}");
        assert!(d.contains("+ at_new: 1"), "{d}");
    }

    #[test]
    fn lookup_by_unsorted_labels() {
        let r = Registry::new();
        r.counter("at_c", &[("b", "2"), ("a", "1")]).inc();
        let s = r.snapshot();
        assert_eq!(s.counter("at_c", &[("a", "1"), ("b", "2")]), Some(1));
        assert_eq!(s.counter("at_c", &[("a", "1")]), None);
    }
}
