//! Canonical pipeline stage names and the one-liner stage timer every
//! instrumented call site uses.
//!
//! Stage names are the `stage` label of the shared
//! [`STAGE_SECONDS`] histogram family, mirroring Figure 1's information
//! flow: capture → preamble detection → (smoothing → eigendecomposition →
//! scan) = spectrum → suppression → fusion → localize. DESIGN.md
//! §"Observability" documents the scheme.

use crate::metrics::{global, Histogram};
use crate::trace::{deliver, tracing_enabled, SpanRecord};
use std::sync::Arc;
use std::time::Instant;

/// Histogram family every stage records into: `at_stage_seconds{stage=..}`.
pub const STAGE_SECONDS: &str = "at_stage_seconds";

/// Raw-sample capture at an AP front end (channel + radio simulation).
pub const CAPTURE: &str = "capture";
/// Preamble detection on the captured stream (§4.4's `Td`).
pub const DETECT: &str = "detect";
/// Spatial smoothing of the correlation matrix (§2.3.2).
pub const SMOOTHING: &str = "smoothing";
/// Eigendecomposition of the (smoothed) correlation matrix.
pub const MUSIC_EIG: &str = "music_eig";
/// MUSIC pseudospectrum scan over the steering continuum.
pub const MUSIC_SCAN: &str = "music_scan";
/// One full frame → AoA spectrum (`process_frame`: MUSIC + weighting +
/// symmetry; the paper table's "spectrum" stage).
pub const SPECTRUM: &str = "spectrum";
/// Multipath suppression across a frame group (§2.4).
pub const SUPPRESSION: &str = "suppression";
/// Spectra synthesis across APs (engine coarse-to-fine search, §2.5; the
/// paper table's "fusion" stage).
pub const FUSION: &str = "fusion";
/// One server-side localization request end to end (`try_localize`).
pub const LOCALIZE: &str = "localize";
/// One AP's full spectrum acquisition (capture + retries + processing).
pub const ACQUIRE: &str = "acquire";
/// One networked localize request end to end: frame receipt to reply
/// written (at-serve connection thread).
pub const SERVE_REQUEST: &str = "serve_request";
/// Admission-queue dwell plus batch gathering (at-serve batcher).
pub const SERVE_QUEUE: &str = "serve_queue";
/// One coalesced engine sweep over a batch of localize requests
/// (at-serve worker).
pub const SERVE_BATCH: &str = "serve_batch";

/// Every stage name, in pipeline order (export and doc tooling).
pub const ALL_STAGES: &[&str] = &[
    CAPTURE,
    DETECT,
    SMOOTHING,
    MUSIC_EIG,
    MUSIC_SCAN,
    SPECTRUM,
    SUPPRESSION,
    FUSION,
    LOCALIZE,
    ACQUIRE,
    SERVE_REQUEST,
    SERVE_QUEUE,
    SERVE_BATCH,
];

/// The `at_stage_seconds{stage=..}` histogram for a stage (registered on
/// first use). Call sites on the hot path should cache the handle — the
/// [`time_stage!`](crate::time_stage) macro does so via a per-site
/// `OnceLock`.
pub fn stage_histogram(stage: &'static str) -> Arc<Histogram> {
    global().histogram(STAGE_SECONDS, &[("stage", stage)])
}

/// An RAII stage timer: on drop it records the elapsed seconds into the
/// stage histogram (always) and emits a trace span (when a sink is
/// installed). The mandatory cost is two `Instant` reads and one lock-free
/// histogram observation.
#[derive(Debug)]
pub struct StageSpan {
    stage: &'static str,
    hist: Arc<Histogram>,
    fields: Vec<(&'static str, String)>,
    start: Instant,
}

impl StageSpan {
    /// Starts timing `stage` with a pre-resolved histogram handle.
    pub fn with_histogram(stage: &'static str, hist: Arc<Histogram>) -> Self {
        Self {
            stage,
            hist,
            fields: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Starts timing `stage`, resolving the histogram through the registry
    /// (fine off the hot path).
    pub fn new(stage: &'static str) -> Self {
        Self::with_histogram(stage, stage_histogram(stage))
    }

    /// Attaches a structured field to the trace span (no-op unless a sink
    /// is installed; the histogram is unaffected).
    pub fn field(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if tracing_enabled() {
            self.fields.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.observe(elapsed.as_secs_f64());
        if tracing_enabled() {
            let mut fields = std::mem::take(&mut self.fields);
            fields.insert(0, ("stage", self.stage.to_string()));
            deliver(SpanRecord {
                name: self.stage,
                fields,
                duration_ns: elapsed.as_nanos() as u64,
            });
        }
    }
}

/// Times the enclosing scope as pipeline stage `$stage` (a `&'static str`
/// stage name, usually one of this module's constants). The histogram
/// handle is resolved once per call site and cached in a `OnceLock`, so
/// the steady state never locks the registry. Optional `key => value`
/// pairs become trace-span fields.
///
/// ```
/// let _t = at_obs::time_stage!(at_obs::stages::FUSION, "aps" => 3);
/// ```
#[macro_export]
macro_rules! time_stage {
    ($stage:expr $(, $k:literal => $v:expr)* $(,)?) => {{
        static __HIST: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Histogram>> =
            std::sync::OnceLock::new();
        let __h = __HIST.get_or_init(|| $crate::stages::stage_histogram($stage));
        #[allow(unused_mut)]
        let mut __s = $crate::stages::StageSpan::with_histogram($stage, __h.clone());
        $(__s = __s.field($k, $v);)*
        __s
    }};
}

/// Increments the counter `$name{$k=$v, ...}` by one, with the handle
/// cached per call site (labels must be string literals for the cache to
/// be sound).
#[macro_export]
macro_rules! count {
    ($name:expr $(, $k:literal => $v:literal)* $(,)?) => {{
        static __C: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Counter>> =
            std::sync::OnceLock::new();
        __C.get_or_init(|| $crate::metrics::global().counter($name, &[$(($k, $v)),*]))
            .inc()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_span_records_into_global_histogram() {
        let before = stage_histogram("unit_test_stage").snapshot().count;
        {
            let _t = StageSpan::new("unit_test_stage");
        }
        let after = stage_histogram("unit_test_stage").snapshot();
        assert_eq!(after.count, before + 1);
        assert!(after.sum >= 0.0);
    }

    #[test]
    fn time_stage_macro_caches_and_records() {
        for _ in 0..3 {
            let _t = crate::time_stage!("unit_macro_stage", "ap" => 1);
        }
        let s = stage_histogram("unit_macro_stage").snapshot();
        assert_eq!(s.count, 3);
    }

    #[test]
    fn count_macro_increments() {
        crate::count!("at_unit_events_total", "kind" => "x");
        crate::count!("at_unit_events_total", "kind" => "x");
        let s = crate::metrics::global().snapshot();
        assert_eq!(s.counter("at_unit_events_total", &[("kind", "x")]), Some(2));
    }

    #[test]
    fn all_stages_are_distinct() {
        let mut names = ALL_STAGES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_STAGES.len());
    }
}
