//! The structured tracing facade: spans with stage/AP/client fields, a
//! ring-buffer subscriber, and an optional JSON-lines sink.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! span when off — the hot path's only mandatory work is the histogram
//! observation a [`StageSpan`](crate::stages::StageSpan) records. When a
//! sink is installed (ring buffer for tests and postmortems, JSON lines
//! for offline analysis), finished spans are delivered to it as
//! [`SpanRecord`]s.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A finished span, as delivered to sinks.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span (stage) name.
    pub name: &'static str,
    /// Structured fields (`ap`, `client`, `kind`, ...), in attach order.
    pub fields: Vec<(&'static str, String)>,
    /// Wall-clock duration of the span, nanoseconds.
    pub duration_ns: u64,
}

impl SpanRecord {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"span\":\"{}\",\"duration_ns\":{}",
            self.name, self.duration_ns
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{k}\":\"{}\"", v.replace('"', "\\\"")));
        }
        out.push('}');
        out
    }
}

/// Receives finished spans. Implementations must be cheap and non-blocking
/// enough for the pipeline hot path.
pub trait TraceSink: Send + Sync {
    /// Called once per finished span.
    fn record(&self, rec: SpanRecord);
}

/// A bounded in-memory ring of the most recent spans (postmortems, tests).
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<std::collections::VecDeque<SpanRecord>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        Self {
            capacity,
            buf: Mutex::new(std::collections::VecDeque::with_capacity(capacity)),
        }
    }

    /// A copy of the buffered records, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .expect("ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all buffered records.
    pub fn clear(&self) {
        self.buf.lock().expect("ring poisoned").clear();
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, rec: SpanRecord) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(rec);
    }
}

/// Writes each span as one JSON line to the wrapped writer (a file, a
/// pipe). Errors are swallowed: tracing must never take the pipeline down.
pub struct JsonLinesSink<W: Write + Send> {
    w: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        Self { w: Mutex::new(w) }
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, rec: SpanRecord) {
        if let Ok(mut w) = self.w.lock() {
            let _ = writeln!(w, "{}", rec.to_json());
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Installs (or replaces) the process-wide trace sink and enables span
/// delivery.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    *SINK.write().expect("sink poisoned") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the sink; spans go back to metrics-only (the default).
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Release);
    *SINK.write().expect("sink poisoned") = None;
}

/// Whether a sink is installed (one relaxed load; the hot path's guard).
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

pub(crate) fn deliver(rec: SpanRecord) {
    if let Some(sink) = SINK.read().expect("sink poisoned").as_ref() {
        sink.record(rec);
    }
}

/// An in-flight span. Create via [`span`], attach fields with
/// [`Span::field`], and it reports itself on drop. Field formatting is
/// skipped entirely when no sink is installed.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
}

/// Opens a span named `name`.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        fields: Vec::new(),
        start: Instant::now(),
    }
}

impl Span {
    /// Attaches a structured field (no-op unless a sink is installed).
    pub fn field(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if tracing_enabled() {
            self.fields.push((key, value.to_string()));
        }
        self
    }

    /// The span's elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if tracing_enabled() {
            deliver(SpanRecord {
                name: self.name,
                fields: std::mem::take(&mut self.fields),
                duration_ns: self.start.elapsed().as_nanos() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace-sink state is process-global; serialize the tests that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = RingBufferSink::new(2);
        for i in 0..3 {
            ring.record(SpanRecord {
                name: "s",
                fields: vec![("i", i.to_string())],
                duration_ns: i,
            });
        }
        let recs = ring.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].duration_ns, 1);
        assert_eq!(recs[1].duration_ns, 2);
    }

    #[test]
    fn spans_deliver_to_installed_sink() {
        let _g = GUARD.lock().unwrap();
        let ring = Arc::new(RingBufferSink::new(8));
        set_sink(ring.clone());
        {
            let _s = span("unit_stage").field("ap", 3).field("client", 7);
        }
        clear_sink();
        let recs = ring.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "unit_stage");
        assert_eq!(recs[0].fields[0], ("ap", "3".to_string()));
        assert_eq!(recs[0].fields[1], ("client", "7".to_string()));
    }

    #[test]
    fn disabled_tracing_skips_fields_and_delivery() {
        let _g = GUARD.lock().unwrap();
        clear_sink();
        let s = span("quiet").field("k", "v");
        assert!(s.fields.is_empty(), "fields must not materialize when off");
        drop(s);
        assert!(!tracing_enabled());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_span() {
        let buf: Vec<u8> = Vec::new();
        let sink = JsonLinesSink::new(buf);
        sink.record(SpanRecord {
            name: "x",
            fields: vec![("stage", "eig \"q\"".to_string())],
            duration_ns: 42,
        });
        let w = sink.w.into_inner().unwrap();
        let line = String::from_utf8(w).unwrap();
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("\"span\":\"x\""));
        assert!(line.contains("\"duration_ns\":42"));
        assert!(line.contains("\\\"q\\\""), "quotes escaped: {line}");
    }
}
