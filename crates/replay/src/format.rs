//! The on-disk journal format: segment headers, record framing, and a
//! total decoder.
//!
//! A journal is a directory of segment files named `seg-NNNNNN.atj`
//! (zero-padded segment index). Each segment is:
//!
//! ```text
//! header (48 bytes):
//!   magic         8  b"ATJRNL01"
//!   version       u32 LE   (format version, currently 2; 1 still reads)
//!   n_aps         u32 LE   epoch-0 deployment AP count
//!   bins          u32 LE   spectrum resolution
//!   max_resident  u64 LE   session-store spectrum cap
//!   fingerprint   u64 LE   canonical at-config fingerprint of epoch 0
//!   segment_index u32 LE   position in the journal, from 0
//!   first_seq     u64 LE   sequence number of the segment's first record
//! records, back to back:
//!   len     u32 LE   payload length (<= REC_MAX)
//!   crc     u32 LE   IEEE CRC-32 of the payload
//!   payload len bytes
//! ```
//!
//! Every record payload starts `type u8 | seq u64 | t_us u64`, followed by
//! type-specific fields ([`Event`]). Spectra are stored via the wire
//! codec's lossless XOR-delta mode, so a replayed spectrum is bit-exact
//! with what the server admitted.
//!
//! The decoder is *total*: arbitrary bytes produce a typed
//! [`JournalError`] or a [`DecodedSegment`], never a panic. A record cut
//! off mid-write (incomplete length/CRC prefix, or payload shorter than
//! its declared length) is a *tolerated tail* — decoding stops and the
//! segment is flagged `truncated` — because a crash mid-append is an
//! expected journal state. A CRC mismatch on a *complete* record is a
//! hard [`JournalError::CrcMismatch`]: bit rot is corruption, not a tail.

use std::error::Error;
use std::fmt;
use std::io;

use at_config::{SessionPolicy, TopologyOp};
use at_core::health::LocalizeError;
use at_core::AoaSpectrum;
use at_serve::codec::{self, CompressedMode};
use at_serve::{ClientKey, ServiceConfig};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"ATJRNL01";

/// Journal format version written by this crate. Version 2 added
/// [`et::EPOCH`] records (topology reconfigurations) and switched the
/// header fingerprint to the canonical `at-config` one; version-1
/// journals (which by construction hold no epoch records) still decode.
pub const FORMAT_VERSION: u32 = 2;

/// Fixed size of a segment header, bytes.
pub const SEGMENT_HEADER_LEN: usize = 48;

/// Hard cap on a single record payload. The largest legitimate record (a
/// lossless 65536-bin spectrum submission) is ~512 KiB; anything larger
/// is corruption, rejected before allocation.
pub const REC_MAX: usize = 1 << 21;

/// Record type bytes (`et` = event type).
pub mod et {
    /// An admitted keyed spectrum submission.
    pub const SUBMIT: u8 = 1;
    /// A keyed localize request, at the instant its session was snapshot.
    pub const QUERY: u8 = 2;
    /// The reply the live server produced for an earlier `QUERY`.
    pub const OUTCOME: u8 = 3;
    /// An AP acquisition-failure report.
    pub const FAILURE: u8 = 4;
    /// One staleness refresh tick of the session store.
    pub const TICK: u8 = 5;
    /// Sessions evicted by the idle reaper.
    pub const IDLE_REAP: u8 = 6;
    /// A topology reconfiguration committed (format v2): everything
    /// before this record belongs to the previous epoch, everything
    /// after to the new one.
    pub const EPOCH: u8 = 7;
}

/// Outcome kind bytes within an [`et::OUTCOME`] record.
mod ok_ {
    pub const FIX: u8 = 0;
    pub const FAILED: u8 = 1;
    pub const OVERLOADED: u8 = 2;
    pub const DEADLINE: u8 = 3;
    pub const SHUTTING_DOWN: u8 = 4;
}

/// Localize-error codes within an [`ok_::FAILED`] outcome (mirrors the
/// wire protocol's `FAILED` encoding).
mod ec {
    pub const NO_OBSERVATIONS: u8 = 0;
    pub const QUORUM_NOT_MET: u8 = 1;
    pub const RESOLUTION_MISMATCH: u8 = 2;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table generated at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum guarding every record payload).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// Deployment identity a journal was recorded under. Replay refuses a
/// config whose fingerprint disagrees — a bit-exact comparison against a
/// *different* deployment is meaningless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalMeta {
    /// Deployment AP count.
    pub n_aps: u32,
    /// Spectrum resolution (bins).
    pub bins: u32,
    /// Session-store resident-spectra cap (eviction order depends on it).
    pub max_resident_spectra: u64,
    /// [`config_fingerprint`] — the canonical `at-config` fingerprint of
    /// the epoch-0 [`at_config::SystemConfig`], the same number the live
    /// server reports in `TopologyInfo` before any reconfiguration.
    pub fingerprint: u64,
}

impl JournalMeta {
    /// The meta block for the service config and session policy the
    /// recorded server was started with (its epoch-0 system config).
    pub fn for_service(service: &ServiceConfig, session: SessionPolicy) -> Self {
        Self {
            n_aps: service.poses.len() as u32,
            bins: service.bins as u32,
            max_resident_spectra: session.max_resident_spectra as u64,
            fingerprint: config_fingerprint(service, session),
        }
    }
}

/// One segment file's header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Deployment identity (identical across a journal's segments).
    pub meta: JournalMeta,
    /// Position of this segment in the journal, from 0.
    pub segment_index: u32,
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
}

/// One journal record: a monotonic sequence number, a capture timestamp
/// (microseconds since recording began), and the event itself.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Monotonic sequence number, from 1, shared across all event types.
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    /// What happened.
    pub event: Event,
}

/// A state-changing event the live server admitted, in admission order.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A keyed spectrum submission, post-decompress, pre-store.
    Submit {
        /// Session key.
        key: ClientKey,
        /// Submitting AP.
        ap_id: u32,
        /// Client-declared spectrum age, refresh intervals.
        age: u64,
        /// The admitted spectrum, bit-exact.
        spectrum: AoaSpectrum,
    },
    /// A keyed localize request, recorded at session-snapshot time.
    Query {
        /// Session key.
        key: ClientKey,
        /// Client deadline (0 = none). Informational: replay does not
        /// re-enforce deadlines, which are wall-clock nondeterminism.
        deadline_ms: u32,
    },
    /// The live server's reply to the query recorded at `query_seq`.
    Outcome {
        /// `seq` of the matching [`Event::Query`] record.
        query_seq: u64,
        /// What the server answered.
        outcome: Outcome,
    },
    /// An AP acquisition-failure report (drives health state).
    Failure {
        /// Reported AP.
        ap_id: u32,
    },
    /// One staleness refresh tick (ages every resident spectrum by one).
    Tick,
    /// Sessions the idle reaper evicted, in eviction order.
    IdleReap {
        /// Evicted session keys.
        keys: Vec<ClientKey>,
    },
    /// A topology reconfiguration committed between the surrounding
    /// records (format v2). Replay applies `op` to its current system
    /// config and refuses to continue if the result's canonical
    /// fingerprint is not `fingerprint` — each epoch is pinned.
    Epoch {
        /// The new epoch number (first reconfigure produces epoch 1).
        epoch: u64,
        /// Canonical fingerprint of the new epoch's system config.
        fingerprint: u64,
        /// The applied topology operation.
        op: TopologyOp,
    },
}

impl Event {
    /// Stable label for metrics/reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Submit { .. } => "submit",
            Event::Query { .. } => "query",
            Event::Outcome { .. } => "outcome",
            Event::Failure { .. } => "failure",
            Event::Tick => "tick",
            Event::IdleReap { .. } => "idle_reap",
            Event::Epoch { .. } => "epoch",
        }
    }
}

/// The reply the live server produced for a recorded query.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A fix: the bit patterns replay must reproduce exactly.
    Fix {
        /// Estimated x, meters.
        x: f64,
        /// Estimated y, meters.
        y: f64,
        /// Likelihood at the estimate.
        likelihood: f64,
    },
    /// A typed localize refusal (also replayed bit-exactly).
    Failed {
        /// The in-process error.
        error: LocalizeError,
    },
    /// Admission control shed the request (wall-clock dependent; replay
    /// skips the comparison).
    Overloaded,
    /// The deadline expired live (wall-clock dependent; skipped).
    DeadlineExceeded,
    /// The server was draining (skipped).
    ShuttingDown,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed journal failure. Decoding arbitrary bytes yields one of these
/// or a decoded segment — never a panic.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure while reading or writing the journal.
    Io(io::Error),
    /// A segment file does not open with [`SEGMENT_MAGIC`].
    BadMagic {
        /// The first bytes actually found.
        got: [u8; 8],
    },
    /// A segment declares a format version this reader does not speak.
    BadVersion {
        /// The declared version.
        got: u32,
    },
    /// A segment is shorter than [`SEGMENT_HEADER_LEN`].
    HeaderTruncated,
    /// A record declares a payload longer than [`REC_MAX`].
    Oversize {
        /// Byte offset of the record within the segment.
        at: usize,
        /// The declared length.
        len: usize,
    },
    /// A complete record's payload fails its CRC — bit rot, not a
    /// tolerated truncation tail.
    CrcMismatch {
        /// Byte offset of the record within the segment.
        at: usize,
    },
    /// A record's payload passed its CRC but does not parse as an event.
    Malformed {
        /// Byte offset of the record within the segment.
        at: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// A non-final segment ends in a truncated tail (only the journal's
    /// last segment may be cut off by a crash).
    TruncatedMidJournal {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A segment's deployment meta disagrees with the journal's first
    /// segment.
    MetaMismatch {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A segment's header index or first-sequence disagrees with its
    /// position in the journal.
    SegmentOutOfOrder {
        /// Index (by filename order) of the offending segment.
        segment: usize,
        /// What disagreed.
        reason: &'static str,
    },
    /// The journal directory holds no segment files.
    NoSegments,
    /// Replay was asked to run a journal against a service config with a
    /// different fingerprint.
    ConfigMismatch {
        /// Fingerprint recorded in the journal.
        expected: u64,
        /// Fingerprint of the offered config.
        got: u64,
    },
    /// A record cites an AP outside the journal's declared deployment.
    BadApId {
        /// Sequence number of the offending record.
        seq: u64,
        /// The out-of-range AP id.
        ap_id: u32,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O: {e}"),
            Self::BadMagic { got } => write!(f, "bad segment magic {got:02x?}"),
            Self::BadVersion { got } => write!(f, "unsupported journal format version {got}"),
            Self::HeaderTruncated => write!(f, "segment shorter than its header"),
            Self::Oversize { at, len } => {
                write!(
                    f,
                    "record at byte {at} declares oversize payload ({len} bytes)"
                )
            }
            Self::CrcMismatch { at } => write!(f, "record at byte {at} fails its CRC"),
            Self::Malformed { at, reason } => {
                write!(f, "record at byte {at} is malformed: {reason}")
            }
            Self::TruncatedMidJournal { segment } => {
                write!(
                    f,
                    "segment {segment} is truncated but is not the last segment"
                )
            }
            Self::MetaMismatch { segment } => {
                write!(
                    f,
                    "segment {segment} was recorded under a different deployment"
                )
            }
            Self::SegmentOutOfOrder { segment, reason } => {
                write!(f, "segment {segment} out of order: {reason}")
            }
            Self::NoSegments => write!(f, "journal directory holds no segments"),
            Self::ConfigMismatch { expected, got } => write!(
                f,
                "journal fingerprint {expected:#018x} != config fingerprint {got:#018x}"
            ),
            Self::BadApId { seq, ap_id } => {
                write!(f, "record {seq} cites AP {ap_id}, outside the deployment")
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------------

/// Canonical fingerprint of everything a deterministic replay depends
/// on: the [`at_config::SystemConfig`] the recorded server was started
/// with, hashed over its canonical byte serialization. This is the same
/// number the live server reports in `TopologyInfo` for the matching
/// epoch, so the recorder, the replayer, and the server cannot drift.
pub fn config_fingerprint(service: &ServiceConfig, session: SessionPolicy) -> u64 {
    service.to_system(session).fingerprint()
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

/// Serializes a segment header.
pub fn encode_header(out: &mut Vec<u8>, header: &SegmentHeader) {
    let start = out.len();
    out.extend_from_slice(&SEGMENT_MAGIC);
    push_u32(out, FORMAT_VERSION);
    push_u32(out, header.meta.n_aps);
    push_u32(out, header.meta.bins);
    push_u64(out, header.meta.max_resident_spectra);
    push_u64(out, header.meta.fingerprint);
    push_u32(out, header.segment_index);
    push_u64(out, header.first_seq);
    debug_assert_eq!(out.len() - start, SEGMENT_HEADER_LEN);
}

/// Serializes a record payload (no length/CRC framing; see
/// [`encode_framed`]).
pub fn encode_payload(out: &mut Vec<u8>, record: &Record) {
    let type_byte = match &record.event {
        Event::Submit { .. } => et::SUBMIT,
        Event::Query { .. } => et::QUERY,
        Event::Outcome { .. } => et::OUTCOME,
        Event::Failure { .. } => et::FAILURE,
        Event::Tick => et::TICK,
        Event::IdleReap { .. } => et::IDLE_REAP,
        Event::Epoch { .. } => et::EPOCH,
    };
    out.push(type_byte);
    push_u64(out, record.seq);
    push_u64(out, record.t_us);
    match &record.event {
        Event::Submit {
            key,
            ap_id,
            age,
            spectrum,
        } => {
            push_u64(out, *key);
            push_u32(out, *ap_id);
            push_u64(out, *age);
            codec::compress_into(out, spectrum, CompressedMode::Lossless);
        }
        Event::Query { key, deadline_ms } => {
            push_u64(out, *key);
            push_u32(out, *deadline_ms);
        }
        Event::Outcome { query_seq, outcome } => {
            push_u64(out, *query_seq);
            match outcome {
                Outcome::Fix { x, y, likelihood } => {
                    out.push(ok_::FIX);
                    push_f64(out, *x);
                    push_f64(out, *y);
                    push_f64(out, *likelihood);
                }
                Outcome::Failed { error } => {
                    out.push(ok_::FAILED);
                    match error {
                        LocalizeError::NoObservations => out.push(ec::NO_OBSERVATIONS),
                        LocalizeError::QuorumNotMet {
                            available,
                            required,
                            stale,
                            down,
                            degenerate,
                        } => {
                            out.push(ec::QUORUM_NOT_MET);
                            push_u64(out, *available as u64);
                            push_u64(out, *required as u64);
                            push_u64(out, *stale as u64);
                            push_u64(out, *down as u64);
                            push_u64(out, *degenerate as u64);
                        }
                        LocalizeError::ResolutionMismatch {
                            observation,
                            bins,
                            expected,
                        } => {
                            out.push(ec::RESOLUTION_MISMATCH);
                            push_u64(out, *observation as u64);
                            push_u64(out, *bins as u64);
                            push_u64(out, *expected as u64);
                        }
                    }
                }
                Outcome::Overloaded => out.push(ok_::OVERLOADED),
                Outcome::DeadlineExceeded => out.push(ok_::DEADLINE),
                Outcome::ShuttingDown => out.push(ok_::SHUTTING_DOWN),
            }
        }
        Event::Failure { ap_id } => push_u32(out, *ap_id),
        Event::Tick => {}
        Event::IdleReap { keys } => {
            push_u32(out, keys.len() as u32);
            for &k in keys {
                push_u64(out, k);
            }
        }
        Event::Epoch {
            epoch,
            fingerprint,
            op,
        } => {
            push_u64(out, *epoch);
            push_u64(out, *fingerprint);
            op.encode(out);
        }
    }
}

/// Serializes a record with its `len | crc | payload` framing, appended
/// to `out`. Returns the framed size in bytes.
pub fn encode_framed(out: &mut Vec<u8>, record: &Record) -> usize {
    let mut payload = Vec::with_capacity(64);
    encode_payload(&mut payload, record);
    debug_assert!(payload.len() <= REC_MAX);
    push_u32(out, payload.len() as u32);
    push_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    payload.len() + 8
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A cursor over untrusted bytes; every read is bounds-checked.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        s
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parses a segment header from the front of `bytes`.
pub fn decode_header(bytes: &[u8]) -> Result<SegmentHeader, JournalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(JournalError::HeaderTruncated);
    }
    let mut c = Cursor::new(&bytes[..SEGMENT_HEADER_LEN]);
    let magic: [u8; 8] = c.take(8).unwrap().try_into().unwrap();
    if magic != SEGMENT_MAGIC {
        return Err(JournalError::BadMagic { got: magic });
    }
    let version = c.u32().unwrap();
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(JournalError::BadVersion { got: version });
    }
    Ok(SegmentHeader {
        meta: JournalMeta {
            n_aps: c.u32().unwrap(),
            bins: c.u32().unwrap(),
            max_resident_spectra: c.u64().unwrap(),
            fingerprint: c.u64().unwrap(),
        },
        segment_index: c.u32().unwrap(),
        first_seq: c.u64().unwrap(),
    })
}

fn decode_payload(payload: &[u8], at: usize) -> Result<Record, JournalError> {
    let mal = |reason| JournalError::Malformed { at, reason };
    let mut c = Cursor::new(payload);
    let type_byte = c.u8().ok_or(mal("empty payload"))?;
    let seq = c.u64().ok_or(mal("missing seq"))?;
    let t_us = c.u64().ok_or(mal("missing timestamp"))?;
    let event = match type_byte {
        et::SUBMIT => {
            let key = c.u64().ok_or(mal("submit missing key"))?;
            let ap_id = c.u32().ok_or(mal("submit missing ap_id"))?;
            let age = c.u64().ok_or(mal("submit missing age"))?;
            let blob = c.rest();
            let (mode, spectrum) =
                codec::decompress(blob).map_err(|_| mal("submit spectrum undecodable"))?;
            if mode != CompressedMode::Lossless {
                return Err(mal("submit spectrum not lossless"));
            }
            Event::Submit {
                key,
                ap_id,
                age,
                spectrum,
            }
        }
        et::QUERY => Event::Query {
            key: c.u64().ok_or(mal("query missing key"))?,
            deadline_ms: c.u32().ok_or(mal("query missing deadline"))?,
        },
        et::OUTCOME => {
            let query_seq = c.u64().ok_or(mal("outcome missing query_seq"))?;
            let kind = c.u8().ok_or(mal("outcome missing kind"))?;
            let outcome = match kind {
                ok_::FIX => Outcome::Fix {
                    x: c.f64().ok_or(mal("fix missing x"))?,
                    y: c.f64().ok_or(mal("fix missing y"))?,
                    likelihood: c.f64().ok_or(mal("fix missing likelihood"))?,
                },
                ok_::FAILED => {
                    let code = c.u8().ok_or(mal("failed missing error code"))?;
                    let error = match code {
                        ec::NO_OBSERVATIONS => LocalizeError::NoObservations,
                        ec::QUORUM_NOT_MET => LocalizeError::QuorumNotMet {
                            available: c.u64().ok_or(mal("quorum fields short"))? as usize,
                            required: c.u64().ok_or(mal("quorum fields short"))? as usize,
                            stale: c.u64().ok_or(mal("quorum fields short"))? as usize,
                            down: c.u64().ok_or(mal("quorum fields short"))? as usize,
                            degenerate: c.u64().ok_or(mal("quorum fields short"))? as usize,
                        },
                        ec::RESOLUTION_MISMATCH => LocalizeError::ResolutionMismatch {
                            observation: c.u64().ok_or(mal("mismatch fields short"))? as usize,
                            bins: c.u64().ok_or(mal("mismatch fields short"))? as usize,
                            expected: c.u64().ok_or(mal("mismatch fields short"))? as usize,
                        },
                        _ => return Err(mal("unknown localize error code")),
                    };
                    Outcome::Failed { error }
                }
                ok_::OVERLOADED => Outcome::Overloaded,
                ok_::DEADLINE => Outcome::DeadlineExceeded,
                ok_::SHUTTING_DOWN => Outcome::ShuttingDown,
                _ => return Err(mal("unknown outcome kind")),
            };
            Event::Outcome { query_seq, outcome }
        }
        et::FAILURE => Event::Failure {
            ap_id: c.u32().ok_or(mal("failure missing ap_id"))?,
        },
        et::TICK => Event::Tick,
        et::IDLE_REAP => {
            let n = c.u32().ok_or(mal("idle_reap missing count"))? as usize;
            if n > payload.len() / 8 {
                return Err(mal("idle_reap count exceeds payload"));
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(c.u64().ok_or(mal("idle_reap keys short"))?);
            }
            Event::IdleReap { keys }
        }
        et::EPOCH => {
            let epoch = c.u64().ok_or(mal("epoch missing number"))?;
            let fingerprint = c.u64().ok_or(mal("epoch missing fingerprint"))?;
            let rest = c.rest();
            let (op, used) = TopologyOp::decode(rest).map_err(|_| mal("epoch op undecodable"))?;
            if used != rest.len() {
                return Err(mal("trailing bytes after epoch op"));
            }
            Event::Epoch {
                epoch,
                fingerprint,
                op,
            }
        }
        _ => return Err(mal("unknown record type")),
    };
    if !c.done() {
        return Err(mal("trailing bytes after record"));
    }
    Ok(Record { seq, t_us, event })
}

/// A fully decoded segment.
#[derive(Clone, Debug)]
pub struct DecodedSegment {
    /// The segment's header.
    pub header: SegmentHeader,
    /// Every record that decoded cleanly, in file order.
    pub records: Vec<Record>,
    /// True if the segment ends in an incomplete record (crash tail).
    pub truncated: bool,
}

/// Decodes one segment from raw bytes. Total: any input yields a typed
/// error or a `DecodedSegment`, never a panic. An incomplete final record
/// sets `truncated` instead of failing; a CRC or parse failure on a
/// *complete* record is a hard error.
pub fn decode_segment(bytes: &[u8]) -> Result<DecodedSegment, JournalError> {
    let header = decode_header(bytes)?;
    let mut records = Vec::new();
    let mut truncated = false;
    let mut pos = SEGMENT_HEADER_LEN;
    let mut last_seq: Option<u64> = None;
    while pos < bytes.len() {
        let at = pos;
        if bytes.len() - pos < 8 {
            truncated = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > REC_MAX {
            return Err(JournalError::Oversize { at, len });
        }
        pos += 8;
        if bytes.len() - pos < len {
            truncated = true;
            break;
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        if crc32(payload) != crc {
            return Err(JournalError::CrcMismatch { at });
        }
        let record = decode_payload(payload, at)?;
        let expected = last_seq.map_or(header.first_seq, |s| s + 1);
        if record.seq != expected {
            return Err(JournalError::Malformed {
                at,
                reason: "sequence number out of order",
            });
        }
        last_seq = Some(record.seq);
        records.push(record);
    }
    Ok(DecodedSegment {
        header,
        records,
        truncated,
    })
}

/// Filename of segment `index` within a journal directory.
pub fn segment_file_name(index: u32) -> String {
    format!("seg-{index:06}.atj")
}
