//! # at-replay — deterministic capture-and-replay for the location service
//!
//! The fusion pipeline is deterministic: the same spectra through the
//! same engine under the same health state produce bit-identical fixes.
//! This crate exploits that to turn *production traffic itself* into a
//! regression suite:
//!
//! - [`format`] — the on-disk journal: segmented, append-only,
//!   CRC-checksummed records of every admitted submission, localize
//!   request, failure report, and reaper event, with spectra stored via
//!   the wire codec's lossless mode. The decoder is total — arbitrary
//!   bytes yield a typed [`JournalError`] or a decoded segment, never a
//!   panic — and a crash-truncated tail is a tolerated state, not an
//!   error.
//! - [`writer`] — [`Recorder`], an [`at_serve::RecordTap`] the server
//!   calls at admission (post-decompress, pre-store). Fail-open: a disk
//!   error stops recording, never the service.
//! - [`reader`] — [`Journal::open`] loads and cross-validates a whole
//!   segment directory.
//! - [`replay`] — [`replay_in_process`] re-drives a fresh store + engine
//!   and asserts every recorded fix reproduces bit-exactly;
//!   [`replay_wire`] replays through real client sessions against a live
//!   server at recorded or accelerated pacing.
//!
//! The committed golden journal under `tests/fixtures/replay_office/` is
//! replayed by the `replay_check` binary in CI: any divergence means the
//! pipeline's numerical behavior changed and the build fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod reader;
pub mod replay;
pub mod writer;

pub use format::{
    config_fingerprint, crc32, decode_segment, DecodedSegment, Event, JournalError, JournalMeta,
    Outcome, Record, SegmentHeader,
};
pub use reader::Journal;
pub use replay::{
    replay_in_process, replay_wire, Divergence, Pacing, ReplayReport, WireOptions,
    MAX_DIVERGENCE_DETAILS,
};
pub use writer::{Recorder, RecorderConfig, RecorderStats};
