//! Loading a whole journal directory: segment discovery, cross-segment
//! validation, and the flattened record stream.

use std::fs;
use std::path::Path;

use crate::format::{self, DecodedSegment, JournalError, JournalMeta, Record};

/// A fully loaded, validated journal: the deployment it was recorded
/// under and every record across all segments, in sequence order.
#[derive(Clone, Debug)]
pub struct Journal {
    /// Deployment identity (identical across segments, verified).
    pub meta: JournalMeta,
    /// All records, concatenated across segments, seq strictly +1.
    pub records: Vec<Record>,
    /// Number of segment files read.
    pub segments: usize,
    /// True if the final segment ends in an incomplete record — the
    /// expected shape after a crash mid-append. The intact prefix is
    /// still fully replayable.
    pub truncated_tail: bool,
}

impl Journal {
    /// Loads every `seg-*.atj` in `dir`, in filename order.
    ///
    /// Validation: all headers must carry identical deployment meta,
    /// segment indices must be contiguous from 0, sequence numbers must
    /// continue across segment boundaries, and only the *last* segment
    /// may end in a truncated tail. Any violation is a typed
    /// [`JournalError`]; nothing panics.
    pub fn open(dir: &Path) -> Result<Journal, JournalError> {
        let mut names: Vec<String> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("seg-") && n.ends_with(".atj"))
            .collect();
        names.sort();
        if names.is_empty() {
            return Err(JournalError::NoSegments);
        }

        let mut meta: Option<JournalMeta> = None;
        let mut records = Vec::new();
        let mut truncated_tail = false;
        let mut next_seq: Option<u64> = None;
        let last = names.len() - 1;
        for (i, name) in names.iter().enumerate() {
            let bytes = fs::read(dir.join(name))?;
            let DecodedSegment {
                header,
                records: segment_records,
                truncated,
            } = format::decode_segment(&bytes)?;
            match meta {
                None => meta = Some(header.meta),
                Some(m) if m != header.meta => {
                    return Err(JournalError::MetaMismatch { segment: i })
                }
                Some(_) => {}
            }
            if header.segment_index as usize != i {
                return Err(JournalError::SegmentOutOfOrder {
                    segment: i,
                    reason: "segment index disagrees with filename order",
                });
            }
            if let Some(expected) = next_seq {
                if header.first_seq != expected {
                    return Err(JournalError::SegmentOutOfOrder {
                        segment: i,
                        reason: "first_seq breaks sequence continuity",
                    });
                }
            }
            if truncated {
                if i != last {
                    return Err(JournalError::TruncatedMidJournal { segment: i });
                }
                truncated_tail = true;
            }
            next_seq = Some(
                segment_records
                    .last()
                    .map_or(header.first_seq, |r| r.seq + 1),
            );
            records.extend(segment_records);
        }

        Ok(Journal {
            meta: meta.expect("at least one segment"),
            records,
            segments: names.len(),
            truncated_tail,
        })
    }
}
