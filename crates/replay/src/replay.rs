//! Replay engines: feed a recorded journal back through the location
//! pipeline and check every recorded fix reproduces bit-exactly.
//!
//! Two modes:
//!
//! - [`replay_in_process`] drives a fresh [`SessionStore`] +
//!   [`at_core::LocalizationEngine`] + [`HealthTracker`] directly, with
//!   no network or threads — the regression harness. Because the store's
//!   eviction order is a deterministic function of the submit/snapshot
//!   sequence, a sequentially recorded journal replays to identical
//!   session state and therefore identical fusion inputs.
//! - [`replay_wire`] replays the journal against a *live* server through
//!   real [`ApClient`]/[`AppClient`] sessions, optionally at recorded or
//!   accelerated pacing — a load/soak generator with built-in parity
//!   checking.
//!
//! Recorded outcomes that depend on wall-clock scheduling (`Overloaded`,
//! `DeadlineExceeded`, `ShuttingDown`) are *skipped*, not compared:
//! admission pressure is not part of the deterministic state machine.
//! Journals recorded under concurrent load may also legitimately diverge
//! — interleaving at the tap is racy by construction — which is what the
//! `at_replay_divergence_total` counter is for; the committed golden
//! fixture is recorded sequentially and must replay divergence-free.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use at_config::{SystemConfig, TopologyOp};
use at_core::health::{HealthTracker, LocalizeError};
use at_core::{fuse_batch_into, FusedObservation, LocalizationEngine, LocationEstimate};
use at_obs::names;
use at_serve::{
    ApClient, AppClient, ClientConfig, ClientError, Encoding, ServiceConfig, SessionPolicy,
    SessionStore,
};

use crate::format::{config_fingerprint, Event, JournalError, Outcome};
use crate::reader::Journal;

/// Cap on retained [`Divergence`] details (totals keep counting past it).
pub const MAX_DIVERGENCE_DETAILS: usize = 16;

/// One query whose replayed result disagreed with the recorded outcome.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// `seq` of the diverging query record.
    pub query_seq: u64,
    /// Session key the query cited.
    pub key: u64,
    /// Human-readable recorded-vs-replayed description.
    pub detail: String,
}

/// What a replay did and found.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Journal records consumed.
    pub records: usize,
    /// Spectrum submissions applied.
    pub submits: usize,
    /// Localize queries driven.
    pub queries: usize,
    /// Queries whose outcome was compared bit-exactly.
    pub compared: usize,
    /// Queries skipped (load-dependent outcome, or no outcome recorded —
    /// e.g. the recorder died mid-exchange).
    pub skipped: usize,
    /// Compared queries that did **not** reproduce the recorded outcome.
    pub divergences: usize,
    /// Details for the first [`MAX_DIVERGENCE_DETAILS`] divergences.
    pub divergence_details: Vec<Divergence>,
    /// Propagated from the journal: it ended in a crash tail.
    pub truncated_tail: bool,
}

impl ReplayReport {
    fn diverge(&mut self, query_seq: u64, key: u64, detail: String) {
        self.divergences += 1;
        if self.divergence_details.len() < MAX_DIVERGENCE_DETAILS {
            self.divergence_details.push(Divergence {
                query_seq,
                key,
                detail,
            });
        }
    }

    fn finish(&mut self) {
        if self.divergences > 0 {
            at_obs::global()
                .counter(names::REPLAY_DIVERGENCE_TOTAL, &[])
                .add(self.divergences as u64);
        }
    }
}

fn fix_matches(x: f64, y: f64, likelihood: f64, est: &LocationEstimate) -> bool {
    x.to_bits() == est.position.x.to_bits()
        && y.to_bits() == est.position.y.to_bits()
        && likelihood.to_bits() == est.likelihood.to_bits()
}

fn describe_fix(est: &LocationEstimate) -> String {
    format!(
        "fix ({:?}, {:?}, likelihood {:?})",
        est.position.x, est.position.y, est.likelihood
    )
}

fn describe_outcome(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Fix { x, y, likelihood } => {
            format!("fix ({x:?}, {y:?}, likelihood {likelihood:?})")
        }
        Outcome::Failed { error } => format!("failed ({error})"),
        Outcome::Overloaded => "overloaded".into(),
        Outcome::DeadlineExceeded => "deadline exceeded".into(),
        Outcome::ShuttingDown => "shutting down".into(),
    }
}

/// True if this recorded outcome is part of the deterministic state
/// machine (comparable), false if it is load-dependent (skipped).
fn comparable(outcome: &Outcome) -> bool {
    matches!(outcome, Outcome::Fix { .. } | Outcome::Failed { .. })
}

fn check_config(
    journal: &Journal,
    service: &ServiceConfig,
    session: SessionPolicy,
) -> Result<(), JournalError> {
    let got = config_fingerprint(service, session);
    if got != journal.meta.fingerprint {
        return Err(JournalError::ConfigMismatch {
            expected: journal.meta.fingerprint,
            got,
        });
    }
    // Guard the invariants the store/engine assert on, so a tampered
    // header surfaces as a typed error instead of a panic.
    if journal.meta.n_aps as usize != service.poses.len()
        || journal.meta.max_resident_spectra != session.max_resident_spectra as u64
        || journal.meta.max_resident_spectra < journal.meta.n_aps as u64
        || journal.meta.n_aps == 0
    {
        return Err(JournalError::Malformed {
            at: 0,
            reason: "journal meta inconsistent with deployment",
        });
    }
    Ok(())
}

/// AP ids are validated against the *current epoch's* AP count, not the
/// epoch-0 count in the journal header — a post-`Add` submit to a new AP
/// is legal, a post-`Remove` submit to the vanished slot is not.
fn check_ap(n_aps: usize, seq: u64, ap_id: u32) -> Result<(), JournalError> {
    if ap_id as usize >= n_aps {
        return Err(JournalError::BadApId { seq, ap_id });
    }
    Ok(())
}

/// Applies a recorded epoch transition to the replayer's system config,
/// refusing to continue if the op no longer applies or the resulting
/// canonical fingerprint disagrees with the recorded pin.
fn apply_epoch(
    system: &SystemConfig,
    op: &TopologyOp,
    recorded_fingerprint: u64,
) -> Result<(SystemConfig, at_config::ApMapping), JournalError> {
    let (next, mapping) = system.apply(op).map_err(|_| JournalError::Malformed {
        at: 0,
        reason: "recorded epoch op does not apply to the current topology",
    })?;
    let got = next.fingerprint();
    if got != recorded_fingerprint {
        return Err(JournalError::ConfigMismatch {
            expected: recorded_fingerprint,
            got,
        });
    }
    Ok((next, mapping))
}

/// Indexes recorded outcomes by the `seq` of their query record.
fn outcome_index(journal: &Journal) -> HashMap<u64, &Outcome> {
    journal
        .records
        .iter()
        .filter_map(|r| match &r.event {
            Event::Outcome { query_seq, outcome } => Some((*query_seq, outcome)),
            _ => None,
        })
        .collect()
}

/// Replays a journal through a fresh in-process store + engine + health
/// tracker, asserting bit-exact parity for every comparable outcome.
///
/// `service` + `session` must be the epoch-0 deployment the journal was
/// recorded under (checked by canonical fingerprint); recorded
/// [`Event::Epoch`] transitions are re-applied, re-fingerprinted against
/// their recorded pin, and the engine/store/health remapped exactly as
/// the live server did. Never panics on journal content: corrupt records
/// were already rejected by the reader, and remaining inconsistencies
/// (out-of-range APs, inconsistent meta, stale epoch ops) return typed
/// errors.
pub fn replay_in_process(
    journal: &Journal,
    service: &ServiceConfig,
    session: SessionPolicy,
) -> Result<ReplayReport, JournalError> {
    check_config(journal, service, session)?;
    let mut system = service.to_system(session);
    let mut engine = LocalizationEngine::for_epoch(&system.poses, system.region, system.bins, 0);
    // Reaper-driven time (idle eviction, staleness ticks) replays from
    // journal events, so the policy's wall-clock knobs are inert here.
    let store = SessionStore::new(system.poses.len(), system.session);
    let mut health = HealthTracker::new(system.poses.len());
    let outcomes = outcome_index(journal);

    let mut report = ReplayReport {
        truncated_tail: journal.truncated_tail,
        ..ReplayReport::default()
    };
    let mut results: Vec<Result<LocationEstimate, LocalizeError>> = Vec::with_capacity(1);
    for record in &journal.records {
        report.records += 1;
        match &record.event {
            Event::Submit {
                key,
                ap_id,
                age,
                spectrum,
            } => {
                check_ap(system.poses.len(), record.seq, *ap_id)?;
                report.submits += 1;
                // Mirrors the live admission order: success report, then
                // store insert.
                health.report_success(*ap_id as usize);
                store.submit(*key, *ap_id as usize, *age, Arc::new(spectrum.clone()));
            }
            Event::Failure { ap_id } => {
                check_ap(system.poses.len(), record.seq, *ap_id)?;
                health.report_failure(*ap_id as usize);
            }
            Event::Tick => store.advance_tick(),
            Event::IdleReap { keys } => {
                for key in keys {
                    store.clear(*key);
                }
            }
            Event::Epoch {
                epoch,
                fingerprint,
                op,
            } => {
                let (next, mapping) = apply_epoch(&system, op, *fingerprint)?;
                engine = LocalizationEngine::for_epoch(&next.poses, next.region, next.bins, *epoch);
                store.remap(&mapping.old_to_new, mapping.n_new);
                health.remap(&mapping.old_to_new, mapping.n_new);
                system = next;
            }
            Event::Query { key, .. } => {
                report.queries += 1;
                // Snapshot unconditionally — it advances the store's
                // touch sequence exactly like the live server did, even
                // for queries whose outcome is skipped below.
                let snap = store.snapshot(*key).unwrap_or_default();
                let recorded = outcomes.get(&record.seq).copied();
                let Some(recorded) = recorded.filter(|o| comparable(o)) else {
                    report.skipped += 1;
                    continue;
                };
                let obs: Vec<FusedObservation<'_>> = snap
                    .iter()
                    .map(|o| FusedObservation {
                        pose_idx: o.ap_id as usize,
                        spectrum: &o.spectrum,
                        ap_id: Some(o.ap_id as usize),
                        age: o.age,
                    })
                    .collect();
                fuse_batch_into(
                    &engine,
                    &[obs.as_slice()],
                    &health,
                    &system.health,
                    1,
                    &mut results,
                );
                report.compared += 1;
                match (recorded, results.first()) {
                    (Outcome::Fix { x, y, likelihood }, Some(Ok(est)))
                        if fix_matches(*x, *y, *likelihood, est) => {}
                    (Outcome::Failed { error }, Some(Err(e))) if error == e => {}
                    (recorded, replayed) => {
                        let replayed = match replayed {
                            Some(Ok(est)) => describe_fix(est),
                            Some(Err(e)) => format!("failed ({e})"),
                            None => "no result".into(),
                        };
                        report.diverge(
                            record.seq,
                            *key,
                            format!(
                                "recorded {}, replayed {replayed}",
                                describe_outcome(recorded)
                            ),
                        );
                    }
                }
            }
            Event::Outcome { .. } => {}
        }
    }
    report.finish();
    Ok(report)
}

/// Pacing policy for [`replay_wire`].
#[derive(Clone, Copy, Debug, Default)]
pub enum Pacing {
    /// Fire events back to back, as fast as the server accepts them.
    #[default]
    Unpaced,
    /// Honor recorded inter-event gaps, divided by `speedup` (1.0 =
    /// real-time, 10.0 = ten times faster).
    Recorded {
        /// Time-compression factor; must be finite and positive.
        speedup: f64,
    },
}

/// Options for [`replay_wire`].
#[derive(Clone, Debug, Default)]
pub struct WireOptions {
    /// Event pacing.
    pub pacing: Pacing,
}

fn wire_err(e: ClientError) -> JournalError {
    JournalError::Io(std::io::Error::other(format!("wire replay: {e}")))
}

/// Replays a journal against a live server at `addr` through real client
/// sessions: one lossless-uplink [`ApClient`] per recorded AP plus one
/// [`AppClient`] for queries.
///
/// Queries are driven without deadlines (a recorded deadline re-imposed
/// on a differently loaded server is pure nondeterminism). Comparable
/// recorded outcomes are checked bit-exactly; a live `Overloaded`/
/// `DeadlineExceeded`/`ShuttingDown` answer to a comparable query counts
/// as a divergence only in the sense that it is reported — transport
/// failures abort with a typed error instead.
pub fn replay_wire(
    journal: &Journal,
    addr: &str,
    service: &ServiceConfig,
    session: SessionPolicy,
    opts: &WireOptions,
) -> Result<ReplayReport, JournalError> {
    check_config(journal, service, session)?;
    let mut system = service.to_system(session);
    let cfg = ClientConfig::default();
    let mut aps = Vec::with_capacity(journal.meta.n_aps as usize);
    for _ in 0..journal.meta.n_aps {
        aps.push(ApClient::connect_with(addr, cfg, Encoding::LosslessDelta).map_err(wire_err)?);
    }
    let mut app = AppClient::connect(addr, cfg).map_err(wire_err)?;
    let outcomes = outcome_index(journal);

    let mut report = ReplayReport {
        truncated_tail: journal.truncated_tail,
        ..ReplayReport::default()
    };
    let mut last_t_us: Option<u64> = None;
    for record in &journal.records {
        report.records += 1;
        if let Pacing::Recorded { speedup } = opts.pacing {
            if speedup.is_finite() && speedup > 0.0 {
                let gap = last_t_us.map_or(0, |t| record.t_us.saturating_sub(t));
                let scaled = (gap as f64 / speedup).min(1e9);
                if scaled >= 1.0 {
                    std::thread::sleep(Duration::from_micros(scaled as u64));
                }
            }
            last_t_us = Some(record.t_us);
        }
        match &record.event {
            Event::Submit {
                key,
                ap_id,
                age,
                spectrum,
            } => {
                check_ap(aps.len(), record.seq, *ap_id)?;
                report.submits += 1;
                aps[*ap_id as usize]
                    .submit(*key, *ap_id, *age, spectrum)
                    .map_err(wire_err)?;
            }
            Event::Failure { ap_id } => {
                check_ap(aps.len(), record.seq, *ap_id)?;
                aps[*ap_id as usize]
                    .report_failure(*ap_id)
                    .map_err(wire_err)?;
            }
            // Reaper-driven events cannot be injected over the wire; the
            // server's own reaper owns that clock.
            Event::Tick | Event::IdleReap { .. } | Event::Outcome { .. } => {}
            Event::Epoch {
                fingerprint, op, ..
            } => {
                let (next, _mapping) = apply_epoch(&system, op, *fingerprint)?;
                let info = app.reconfigure(op).map_err(wire_err)?;
                if info.fingerprint != *fingerprint {
                    return Err(JournalError::ConfigMismatch {
                        expected: *fingerprint,
                        got: info.fingerprint,
                    });
                }
                // Mirror the AP-process fleet: the removed AP's uplink
                // goes away, a joining AP dials in fresh.
                match *op {
                    TopologyOp::Remove { ap_id } => {
                        aps.remove(ap_id as usize);
                    }
                    TopologyOp::Add { .. } => {
                        aps.push(
                            ApClient::connect_with(addr, cfg, Encoding::LosslessDelta)
                                .map_err(wire_err)?,
                        );
                    }
                    TopologyOp::Move { .. } => {}
                }
                system = next;
            }
            Event::Query { key, .. } => {
                report.queries += 1;
                let recorded = outcomes.get(&record.seq).copied();
                let Some(recorded) = recorded.filter(|o| comparable(o)) else {
                    report.skipped += 1;
                    continue;
                };
                report.compared += 1;
                match (recorded, app.localize(*key, None)) {
                    (Outcome::Fix { x, y, likelihood }, Ok(fix))
                        if fix_matches(*x, *y, *likelihood, &fix.estimate()) => {}
                    (Outcome::Failed { error }, Err(ClientError::Localize(e))) if *error == e => {}
                    (_, Err(ClientError::Io(e))) => return Err(wire_err(ClientError::Io(e))),
                    (_, Err(e @ ClientError::Protocol(_)))
                    | (_, Err(e @ ClientError::Unexpected(_))) => return Err(wire_err(e)),
                    (recorded, replayed) => {
                        let replayed = match replayed {
                            Ok(fix) => describe_fix(&fix.estimate()),
                            Err(e) => format!("error ({e})"),
                        };
                        report.diverge(
                            record.seq,
                            *key,
                            format!(
                                "recorded {}, replayed {replayed}",
                                describe_outcome(recorded)
                            ),
                        );
                    }
                }
            }
        }
    }
    report.finish();
    Ok(report)
}
