//! The journal recorder: an append-only segmented writer implementing
//! [`at_serve::RecordTap`].
//!
//! Failure discipline is **fail-open**: the recorder must never take the
//! location service down. The first write error marks the recorder
//! failed (counted in `at_replay_write_errors_total`); subsequent events
//! still allocate sequence numbers (so an operator can see how much was
//! lost) but are dropped instead of written. Nothing in this module
//! panics on I/O.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use at_core::AoaSpectrum;
use at_obs::metrics::{Counter, Gauge};
use at_obs::names;
use at_serve::proto::Frame;
use at_serve::{ClientKey, RecordTap};

use crate::format::{self, Event, JournalMeta, Outcome, Record, SegmentHeader};

/// Recorder tuning.
#[derive(Clone, Debug)]
pub struct RecorderConfig {
    /// Once a segment reaches this many bytes, the next record opens a
    /// new segment file.
    pub rotate_bytes: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            rotate_bytes: 64 << 20,
        }
    }
}

/// A point-in-time summary of what the recorder has written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderStats {
    /// Sequence numbers allocated (= events offered by the server).
    pub records: u64,
    /// Framed bytes written across all segments.
    pub bytes: u64,
    /// Segment files opened.
    pub segments: u32,
    /// True once a write error has switched the recorder to drop mode.
    pub failed: bool,
}

struct WriterState {
    file: Option<File>,
    segment_index: u32,
    segment_bytes: u64,
    total_bytes: u64,
    next_seq: u64,
    failed: bool,
    closed: bool,
}

/// The append-only journal writer. Thread-safe; the server calls it from
/// connection threads and the reaper. See the module docs for the
/// fail-open discipline.
pub struct Recorder {
    meta: JournalMeta,
    dir: PathBuf,
    rotate_bytes: u64,
    t0: Instant,
    state: Mutex<WriterState>,
    bytes_total: Arc<Counter>,
    records: [Arc<Counter>; 7],
    rotations: Arc<Counter>,
    write_errors: Arc<Counter>,
    segment_bytes_gauge: Arc<Gauge>,
}

fn open_segment(dir: &Path, meta: JournalMeta, index: u32, first_seq: u64) -> io::Result<File> {
    let mut header = Vec::with_capacity(format::SEGMENT_HEADER_LEN);
    format::encode_header(
        &mut header,
        &SegmentHeader {
            meta,
            segment_index: index,
            first_seq,
        },
    );
    let mut file = File::create(dir.join(format::segment_file_name(index)))?;
    file.write_all(&header)?;
    file.flush()?;
    Ok(file)
}

impl Recorder {
    /// Creates `dir` (and parents) and opens segment 0. Errors here are
    /// surfaced — a recorder that cannot write its first header should
    /// fail loudly at startup, not silently record nothing.
    pub fn create(dir: &Path, meta: JournalMeta, cfg: RecorderConfig) -> io::Result<Recorder> {
        fs::create_dir_all(dir)?;
        let file = open_segment(dir, meta, 0, 1)?;
        let reg = at_obs::global();
        let labelled = |event: &str| reg.counter(names::REPLAY_RECORDS_TOTAL, &[("event", event)]);
        Ok(Recorder {
            meta,
            dir: dir.to_path_buf(),
            rotate_bytes: cfg.rotate_bytes.max(format::SEGMENT_HEADER_LEN as u64),
            t0: Instant::now(),
            state: Mutex::new(WriterState {
                file: Some(file),
                segment_index: 0,
                segment_bytes: format::SEGMENT_HEADER_LEN as u64,
                total_bytes: format::SEGMENT_HEADER_LEN as u64,
                next_seq: 1,
                failed: false,
                closed: false,
            }),
            bytes_total: reg.counter(names::REPLAY_JOURNAL_BYTES_TOTAL, &[]),
            records: [
                labelled("submit"),
                labelled("query"),
                labelled("outcome"),
                labelled("failure"),
                labelled("tick"),
                labelled("idle_reap"),
                labelled("epoch"),
            ],
            rotations: reg.counter(names::REPLAY_SEGMENTS_ROTATED_TOTAL, &[]),
            write_errors: reg.counter(names::REPLAY_WRITE_ERRORS_TOTAL, &[]),
            segment_bytes_gauge: reg.gauge(names::REPLAY_SEGMENT_BYTES, &[]),
        })
    }

    /// The meta block this recorder stamps on every segment.
    pub fn meta(&self) -> JournalMeta {
        self.meta
    }

    /// Directory the journal is being written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current recorder totals.
    pub fn stats(&self) -> RecorderStats {
        let st = self.state.lock().unwrap();
        RecorderStats {
            records: st.next_seq - 1,
            bytes: st.total_bytes,
            segments: st.segment_index + 1,
            failed: st.failed,
        }
    }

    /// Flushes and closes the current segment. Further events still
    /// allocate sequence numbers but are dropped. Returns final totals.
    pub fn finish(&self) -> RecorderStats {
        let mut st = self.state.lock().unwrap();
        if let Some(mut file) = st.file.take() {
            let _ = file.flush();
        }
        st.closed = true;
        RecorderStats {
            records: st.next_seq - 1,
            bytes: st.total_bytes,
            segments: st.segment_index + 1,
            failed: st.failed,
        }
    }

    fn counter_for(&self, event: &Event) -> &Counter {
        let idx = match event {
            Event::Submit { .. } => 0,
            Event::Query { .. } => 1,
            Event::Outcome { .. } => 2,
            Event::Failure { .. } => 3,
            Event::Tick => 4,
            Event::IdleReap { .. } => 5,
            Event::Epoch { .. } => 6,
        };
        &self.records[idx]
    }

    /// Appends one event; returns the sequence number it was assigned
    /// (allocated even in drop mode, so query/outcome pairing survives a
    /// disk failure).
    fn append(&self, event: Event) -> u64 {
        let t_us = u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.failed || st.closed {
            return seq;
        }

        if st.segment_bytes >= self.rotate_bytes {
            match open_segment(&self.dir, self.meta, st.segment_index + 1, seq) {
                Ok(file) => {
                    st.file = Some(file);
                    st.segment_index += 1;
                    st.segment_bytes = format::SEGMENT_HEADER_LEN as u64;
                    st.total_bytes += format::SEGMENT_HEADER_LEN as u64;
                    self.rotations.inc();
                    self.bytes_total.add(format::SEGMENT_HEADER_LEN as u64);
                }
                Err(_) => {
                    st.failed = true;
                    st.file = None;
                    self.write_errors.inc();
                    return seq;
                }
            }
        }

        let record = Record { seq, t_us, event };
        let mut frame = Vec::with_capacity(128);
        let framed = format::encode_framed(&mut frame, &record) as u64;
        let write = st
            .file
            .as_mut()
            .map(|f| f.write_all(&frame).and_then(|_| f.flush()))
            .unwrap_or_else(|| Err(io::Error::other("recorder segment closed")));
        match write {
            Ok(()) => {
                st.segment_bytes += framed;
                st.total_bytes += framed;
                self.bytes_total.add(framed);
                self.counter_for(&record.event).inc();
                self.segment_bytes_gauge.set(st.segment_bytes as f64);
            }
            Err(_) => {
                st.failed = true;
                st.file = None;
                self.write_errors.inc();
            }
        }
        seq
    }
}

impl RecordTap for Recorder {
    fn submit(&self, key: ClientKey, ap_id: u32, age: u64, spectrum: &AoaSpectrum) {
        self.append(Event::Submit {
            key,
            ap_id,
            age,
            spectrum: spectrum.clone(),
        });
    }

    fn failure(&self, ap_id: u32) {
        self.append(Event::Failure { ap_id });
    }

    fn query(&self, key: ClientKey, deadline_ms: u32) -> u64 {
        self.append(Event::Query { key, deadline_ms })
    }

    fn outcome(&self, query_seq: u64, reply: &Frame) {
        let outcome = match reply {
            Frame::Fix {
                x, y, likelihood, ..
            } => Outcome::Fix {
                x: *x,
                y: *y,
                likelihood: *likelihood,
            },
            Frame::Failed { error } => Outcome::Failed {
                error: error.clone(),
            },
            Frame::Overloaded { .. } => Outcome::Overloaded,
            Frame::DeadlineExceeded => Outcome::DeadlineExceeded,
            Frame::ShuttingDown => Outcome::ShuttingDown,
            // The localize path produces no other reply; journal anything
            // unexpected as a shed so the record count still balances.
            _ => Outcome::Overloaded,
        };
        self.append(Event::Outcome { query_seq, outcome });
    }

    fn tick(&self) {
        self.append(Event::Tick);
    }

    fn idle_reap(&self, keys: &[ClientKey]) {
        self.append(Event::IdleReap {
            keys: keys.to_vec(),
        });
    }

    fn epoch_change(&self, epoch: u64, fingerprint: u64, op: &at_config::TopologyOp) {
        self.append(Event::Epoch {
            epoch,
            fingerprint,
            op: *op,
        });
    }
}
