//! Property tests for the journal format: the segment decoder is total
//! (arbitrary bytes, truncations, and bit flips yield a typed error or a
//! decoded prefix — never a panic, and never a record that did not pass
//! its CRC), and encode→decode is bit-exact for every event shape.

use at_core::health::LocalizeError;
use at_core::AoaSpectrum;
use at_replay::format::{
    self, decode_segment, Event, JournalError, JournalMeta, Outcome, Record, SegmentHeader,
    SEGMENT_HEADER_LEN,
};
use proptest::prelude::*;

/// A deterministic seed-scrambled spectrum (positive, finite values).
fn scrambled_spectrum(bins: usize, seed: u64) -> AoaSpectrum {
    let mut state = seed | 1;
    let values: Vec<f64> = (0..bins)
        .map(|i| {
            if i == bins / 2 {
                return 1.0;
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            10f64.powf(-6.0 * u)
        })
        .collect();
    AoaSpectrum::from_values(values)
}

fn sample_meta(seed: u64) -> JournalMeta {
    JournalMeta {
        n_aps: 6,
        bins: 32,
        max_resident_spectra: 36,
        fingerprint: seed,
    }
}

/// One record of every event shape, with seed-dependent content.
fn sample_records(seed: u64, bins: usize) -> Vec<Record> {
    let events = vec![
        Event::Submit {
            key: seed ^ 0x1111,
            ap_id: (seed % 6) as u32,
            age: seed % 4,
            spectrum: scrambled_spectrum(bins, seed),
        },
        Event::Query {
            key: seed ^ 0x1111,
            deadline_ms: (seed % 500) as u32,
        },
        Event::Outcome {
            query_seq: 2,
            outcome: Outcome::Fix {
                x: 1.5 + seed as f64 * 1e-3,
                y: -2.5,
                likelihood: 0.75,
            },
        },
        Event::Failure {
            ap_id: (seed % 6) as u32,
        },
        Event::Tick,
        Event::IdleReap {
            keys: vec![seed, seed + 1, seed + 2],
        },
        Event::Outcome {
            query_seq: 2,
            outcome: Outcome::Failed {
                error: LocalizeError::QuorumNotMet {
                    available: 1,
                    required: 2,
                    stale: (seed % 3) as usize,
                    down: 1,
                    degenerate: 0,
                },
            },
        },
        Event::Outcome {
            query_seq: 4,
            outcome: Outcome::Failed {
                error: LocalizeError::NoObservations,
            },
        },
    ];
    events
        .into_iter()
        .enumerate()
        .map(|(i, event)| Record {
            seq: 1 + i as u64,
            t_us: 1000 * i as u64 + seed % 997,
            event,
        })
        .collect()
}

/// A complete, valid single-segment journal image.
fn sample_segment(seed: u64, bins: usize) -> (Vec<u8>, Vec<Record>) {
    let mut bytes = Vec::new();
    format::encode_header(
        &mut bytes,
        &SegmentHeader {
            meta: sample_meta(seed),
            segment_index: 0,
            first_seq: 1,
        },
    );
    let records = sample_records(seed, bins);
    for r in &records {
        format::encode_framed(&mut bytes, r);
    }
    (bytes, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into the segment decoder never panic: they yield
    /// a typed error or a decoded segment.
    #[test]
    fn decoder_is_total_on_random_bytes(
        bytes in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..400),
    ) {
        let _ = decode_segment(&bytes);
    }

    /// Header-shaped garbage (valid magic and version, random tail)
    /// exercises the record loop without panicking.
    #[test]
    fn decoder_is_total_on_magic_prefixed_bytes(
        tail in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..400),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&format::SEGMENT_MAGIC);
        bytes.extend_from_slice(&format::FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = decode_segment(&bytes);
    }

    /// Encode → decode is bit-exact for every event shape (spectra
    /// travel through the lossless codec and compare `PartialEq` on
    /// their `f64` values).
    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000, bins in 8usize..64) {
        let (bytes, records) = sample_segment(seed, bins);
        let seg = decode_segment(&bytes).expect("valid segment decodes");
        prop_assert!(!seg.truncated);
        prop_assert_eq!(seg.header.meta, sample_meta(seed));
        prop_assert_eq!(seg.records, records);
    }

    /// Truncation at *every* byte offset is tolerated: below the header
    /// it is the typed `HeaderTruncated`, past it the decoder returns
    /// the intact record prefix (every returned record passed its CRC)
    /// and flags the cut tail.
    #[test]
    fn truncation_at_every_offset_is_typed_or_a_clean_prefix(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, records) = sample_segment(seed, 16);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match decode_segment(&bytes[..cut.min(bytes.len())]) {
            Err(JournalError::HeaderTruncated) => prop_assert!(cut < SEGMENT_HEADER_LEN),
            Err(e) => prop_assert!(false, "unexpected error on truncation: {e}"),
            Ok(seg) => {
                prop_assert!(cut >= SEGMENT_HEADER_LEN);
                prop_assert!(seg.records.len() <= records.len());
                prop_assert_eq!(&seg.records[..], &records[..seg.records.len()]);
                // A cut on a record boundary is indistinguishable from a
                // clean close (no flag); a full-length read must be one.
                if cut == bytes.len() {
                    prop_assert!(!seg.truncated);
                    prop_assert_eq!(seg.records.len(), records.len());
                }
            }
        }
    }

    /// A single flipped bit anywhere in a valid segment never panics and
    /// never smuggles a corrupted record through: the decoder returns a
    /// typed error, or a decoded prefix whose records all bit-match the
    /// originals (the flip landed in tolerated framing slack or header
    /// fields the record loop does not depend on).
    #[test]
    fn bit_flips_never_panic_and_never_pass_a_bad_record(
        seed in 0u64..10_000,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, records) = sample_segment(seed, 16);
        let idx = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        bytes[idx] ^= 1 << bit;
        match decode_segment(&bytes) {
            Err(_) => {} // typed rejection is the expected outcome
            Ok(seg) => {
                for (got, want) in seg.records.iter().zip(records.iter()) {
                    prop_assert_eq!(got, want, "a flipped record survived its CRC");
                }
            }
        }
    }
}
