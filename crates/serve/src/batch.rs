//! Request batching: coalescing localize requests that arrive close
//! together into one engine sweep.
//!
//! The localization engine's per-query cost is dominated by the coarse
//! grid sweep; queries against the *same* deployment share every
//! precomputed table, so running `k` of them through
//! [`at_core::fuse_batch`] costs far less than `k` independent walks
//! through the full server. The batcher therefore holds the first request
//! of a batch for at most [`BatchPolicy::window`], absorbing whatever else
//! arrives in that window (up to [`BatchPolicy::max_batch`]), and hands
//! the group downstream as one unit. Under light load the window is the
//! only added latency; under heavy load batches fill instantly and the
//! window never expires.

use crate::queue::Bounded;
use std::time::{Duration, Instant};

/// How aggressively localize requests are coalesced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Longest the first request of a batch waits for company. Bounds the
    /// latency cost of batching under light load.
    pub window: Duration,
    /// Most requests fused in one engine sweep. Bounds the latency cost of
    /// batching under heavy load (a request never waits behind more than
    /// `max_batch - 1` peers in its own batch).
    pub max_batch: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(1),
            max_batch: 8,
        }
    }
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "a batch holds at least one request");
    }
}

/// Pulls the next batch off `queue`: blocks for the first item, then
/// absorbs arrivals until the window closes or the batch is full. Returns
/// `None` once the queue is closed and drained — the batcher's exit
/// signal.
pub fn gather<T>(queue: &Bounded<T>, policy: &BatchPolicy) -> Option<Vec<T>> {
    let first = queue.pop()?;
    let mut batch = vec![first];
    let deadline = Instant::now() + policy.window;
    while batch.len() < policy.max_batch {
        let Some(left) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            break;
        };
        match queue.pop_timeout(left) {
            Some(item) => batch.push(item),
            None => break,
        }
    }
    Some(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(window_ms: u64, max_batch: usize) -> BatchPolicy {
        BatchPolicy {
            window: Duration::from_millis(window_ms),
            max_batch,
        }
    }

    #[test]
    fn gather_takes_what_is_queued() {
        let q = Bounded::new(8, "unit_batch");
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let batch = gather(&q, &policy(5, 8)).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn gather_caps_at_max_batch() {
        let q = Bounded::new(8, "unit_batch_cap");
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let batch = gather(&q, &policy(50, 4)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        // The remainder stays for the next gather.
        assert_eq!(gather(&q, &policy(1, 4)).unwrap(), vec![4, 5]);
    }

    #[test]
    fn gather_returns_none_when_closed_and_drained() {
        let q: Bounded<u8> = Bounded::new(2, "unit_batch_close");
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(gather(&q, &policy(1, 8)).unwrap(), vec![7]);
        assert_eq!(gather(&q, &policy(1, 8)), None);
    }

    #[test]
    fn window_bounds_light_load_latency() {
        let q: Bounded<u8> = Bounded::new(2, "unit_batch_window");
        q.try_push(1).unwrap();
        let start = Instant::now();
        let batch = gather(&q, &policy(10, 8)).unwrap();
        assert_eq!(batch, vec![1]);
        // The single request waited roughly one window, not forever.
        assert!(start.elapsed() < Duration::from_millis(200));
    }
}
