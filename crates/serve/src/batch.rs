//! Request batching: coalescing localize requests that arrive close
//! together into one engine sweep.
//!
//! The localization engine's per-query cost is dominated by the coarse
//! grid sweep; queries against the *same* deployment share every
//! precomputed table, so running `k` of them through
//! [`at_core::fuse_batch`] costs far less than `k` independent walks
//! through the full server. The batcher therefore holds the first request
//! of a batch for at most [`BatchPolicy::window`], absorbing whatever else
//! arrives in that window (up to [`BatchPolicy::max_batch`]), and hands
//! the group downstream as one unit. Under light load the window is the
//! only added latency; under heavy load batches fill instantly and the
//! window never expires.

use crate::queue::Bounded;
use at_obs::metrics::{Gauge, Histogram, HistogramSnapshot};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gauge reporting the coalescing window the batcher is currently using,
/// in seconds (moves only when adaptive batching is on).
pub const BATCH_WINDOW_GAUGE: &str = "at_serve_batch_window_seconds";

/// How aggressively localize requests are coalesced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Longest the first request of a batch waits for company. Bounds the
    /// latency cost of batching under light load.
    pub window: Duration,
    /// Most requests fused in one engine sweep. Bounds the latency cost of
    /// batching under heavy load (a request never waits behind more than
    /// `max_batch - 1` peers in its own batch).
    pub max_batch: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(1),
            max_batch: 8,
        }
    }
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "a batch holds at least one request");
    }
}

/// Bounds and cadence of adaptive window sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// The floor the window decays to when the queue runs dry.
    pub min_window: Duration,
    /// The ceiling the window grows to under sustained backlog.
    pub max_window: Duration,
    /// Batches gathered between window recomputations (the controller
    /// needs a population of dwell samples, not single observations).
    pub period: u32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self {
            min_window: Duration::from_micros(100),
            max_window: Duration::from_millis(4),
            period: 32,
        }
    }
}

impl AdaptivePolicy {
    /// Validates the policy.
    ///
    /// # Panics
    /// Panics on a zero period or an inverted window range.
    pub fn validate(&self) {
        assert!(self.period >= 1, "adaptive period must be at least 1 batch");
        assert!(
            self.min_window <= self.max_window,
            "adaptive window range is inverted"
        );
    }
}

/// Sizes the coalescing window from the admission queue's observed dwell
/// distribution (the `serve_queue` stage histogram in `at-obs`).
///
/// Every [`AdaptivePolicy::period`] batches the controller takes the
/// dwell histogram's delta since its last decision and sets
/// `window = clamp(p50_dwell / 2, min_window, max_window)`:
///
/// - under light load a lone request dwells almost exactly one window
///   (the gather timeout is the only wait), so halving drives the window
///   down to `min_window` — batching stops taxing latency when there is
///   nothing to coalesce;
/// - under backlog dwell is queueing delay, far above the window, so the
///   window expands toward `max_window` and each engine sweep amortizes
///   over a fuller batch.
///
/// The active window is exported on the [`BATCH_WINDOW_GAUGE`] gauge.
#[derive(Debug)]
pub struct BatchController {
    policy: BatchPolicy,
    adaptive: Option<AdaptivePolicy>,
    dwell: Arc<Histogram>,
    gauge: Arc<Gauge>,
    batches: u32,
    prev: HistogramSnapshot,
}

impl BatchController {
    /// A controller starting from `policy`; a `None` adaptive policy
    /// pins the window (the controller becomes a pass-through).
    pub fn new(policy: BatchPolicy, adaptive: Option<AdaptivePolicy>) -> Self {
        policy.validate();
        if let Some(a) = &adaptive {
            a.validate();
        }
        let dwell = at_obs::stages::stage_histogram(at_obs::stages::SERVE_QUEUE);
        let gauge = at_obs::metrics::global().gauge(BATCH_WINDOW_GAUGE, &[]);
        gauge.set(policy.window.as_secs_f64());
        let prev = dwell.snapshot();
        Self {
            policy,
            adaptive,
            dwell,
            gauge,
            batches: 0,
            prev,
        }
    }

    /// The policy to gather the next batch under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Records one gathered batch and, at the adaptive period, re-derives
    /// the window from the dwell observed since the last decision.
    pub fn on_batch(&mut self) {
        let Some(adaptive) = self.adaptive else {
            return;
        };
        self.batches += 1;
        if self.batches < adaptive.period {
            return;
        }
        self.batches = 0;
        let cur = self.dwell.snapshot();
        if let Some(p50) = delta_quantile(&self.prev, &cur, 0.5) {
            let window = Duration::from_secs_f64((p50 / 2.0).clamp(
                adaptive.min_window.as_secs_f64(),
                adaptive.max_window.as_secs_f64(),
            ));
            self.policy.window = window;
            self.gauge.set(window.as_secs_f64());
        }
        self.prev = cur;
    }
}

/// Quantile of the observations recorded between two snapshots of the
/// same histogram; `None` when nothing was recorded in between.
fn delta_quantile(prev: &HistogramSnapshot, cur: &HistogramSnapshot, q: f64) -> Option<f64> {
    let delta = HistogramSnapshot {
        bounds: cur.bounds.clone(),
        counts: cur
            .counts
            .iter()
            .zip(&prev.counts)
            .map(|(c, p)| c.saturating_sub(*p))
            .collect(),
        sum: cur.sum - prev.sum,
        count: cur.count.saturating_sub(prev.count),
    };
    if delta.count == 0 {
        return None;
    }
    delta.quantile(q)
}

/// Pulls the next batch off `queue`: blocks for the first item, then
/// absorbs arrivals until the window closes or the batch is full. Returns
/// `None` once the queue is closed and drained — the batcher's exit
/// signal.
pub fn gather<T>(queue: &Bounded<T>, policy: &BatchPolicy) -> Option<Vec<T>> {
    let first = queue.pop()?;
    let mut batch = vec![first];
    let deadline = Instant::now() + policy.window;
    while batch.len() < policy.max_batch {
        let Some(left) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            break;
        };
        match queue.pop_timeout(left) {
            Some(item) => batch.push(item),
            None => break,
        }
    }
    Some(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(window_ms: u64, max_batch: usize) -> BatchPolicy {
        BatchPolicy {
            window: Duration::from_millis(window_ms),
            max_batch,
        }
    }

    #[test]
    fn gather_takes_what_is_queued() {
        let q = Bounded::new(8, "unit_batch");
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let batch = gather(&q, &policy(5, 8)).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn gather_caps_at_max_batch() {
        let q = Bounded::new(8, "unit_batch_cap");
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let batch = gather(&q, &policy(50, 4)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        // The remainder stays for the next gather.
        assert_eq!(gather(&q, &policy(1, 4)).unwrap(), vec![4, 5]);
    }

    #[test]
    fn gather_returns_none_when_closed_and_drained() {
        let q: Bounded<u8> = Bounded::new(2, "unit_batch_close");
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(gather(&q, &policy(1, 8)).unwrap(), vec![7]);
        assert_eq!(gather(&q, &policy(1, 8)), None);
    }

    #[test]
    fn adaptive_window_tracks_observed_dwell() {
        // One test drives both directions sequentially: the controller
        // and this test share the process-global dwell histogram, so
        // splitting them across concurrently-run tests would cross-feed.
        let adaptive = AdaptivePolicy {
            min_window: Duration::from_micros(100),
            max_window: Duration::from_millis(4),
            period: 2,
        };
        let mut ctl = BatchController::new(policy(1, 8), Some(adaptive));
        assert_eq!(ctl.policy().window, Duration::from_millis(1));
        let dwell = at_obs::stages::stage_histogram(at_obs::stages::SERVE_QUEUE);

        // Light load: dwell ≈ a few µs ⇒ the window decays to the floor.
        for _ in 0..64 {
            dwell.observe(1e-6);
        }
        ctl.on_batch();
        ctl.on_batch();
        assert_eq!(ctl.policy().window, adaptive.min_window);

        // Backlog: dwell ≈ 100 ms ⇒ the window expands to the cap.
        for _ in 0..64 {
            dwell.observe(0.1);
        }
        ctl.on_batch();
        ctl.on_batch();
        assert_eq!(ctl.policy().window, adaptive.max_window);

        // Quiet period (no dwell recorded): the window holds steady.
        ctl.on_batch();
        ctl.on_batch();
        assert_eq!(ctl.policy().window, adaptive.max_window);
    }

    #[test]
    fn pinned_window_never_moves() {
        let mut ctl = BatchController::new(policy(7, 8), None);
        for _ in 0..100 {
            ctl.on_batch();
        }
        assert_eq!(ctl.policy().window, Duration::from_millis(7));
    }

    #[test]
    fn window_bounds_light_load_latency() {
        let q: Bounded<u8> = Bounded::new(2, "unit_batch_window");
        q.try_push(1).unwrap();
        let start = Instant::now();
        let batch = gather(&q, &policy(10, 8)).unwrap();
        assert_eq!(batch, vec![1]);
        // The single request waited roughly one window, not forever.
        assert!(start.elapsed() < Duration::from_millis(200));
    }
}
