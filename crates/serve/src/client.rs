//! A blocking client for the location service.
//!
//! The client keeps one TCP connection and speaks the request-response
//! protocol of [`crate::proto`]: every call writes one frame and reads one
//! reply. Robustness mirrors the testbed's acquisition retry policy
//! (`at-testbed::acquire`): a bounded number of attempts (default 3, the
//! same budget `AcquireConfig` gives spectrum acquisition) with a fixed
//! backoff, applied to connecting and — because the server sheds load by
//! design — to [`Client::localize`] calls answered with `Overloaded`,
//! honoring the server's retry hint.
//!
//! Three client types share that machinery:
//! - [`Client`] — the legacy single-session peer: its own spectra, its own
//!   fixes, one connection (protocol v1).
//! - [`ApClient`] — the ingestion role: a long-lived AP-process connection
//!   streaming keyed spectra into the server's session store (v2), under
//!   a configurable wire [`Encoding`] (raw / quantized / lossless-delta,
//!   v3) with automatic fallback to raw against pre-v3 servers.
//! - [`AppClient`] — the query role: an application connection localizing
//!   a key's store-resident spectra (v2).

use crate::codec::Encoding;
use crate::proto::{self, ApHealthReport, ClientKey, Frame, ReadError};
use at_channel::geometry::Point;
use at_core::health::LocalizeError;
use at_core::synthesis::LocationEstimate;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Connection and retry policy.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Budget for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established connection (`None` = block).
    pub io_timeout: Option<Duration>,
    /// Total attempts for connect and for overloaded localize calls —
    /// the same budget as the testbed's `AcquireConfig::max_attempts`.
    pub max_attempts: u32,
    /// Backoff between attempts (the server's `retry_after_ms` hint is
    /// used instead when it is longer).
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Some(Duration::from_secs(10)),
            max_attempts: 3,
            backoff: Duration::from_millis(5),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The peer broke the wire protocol (undecodable frame, or the server
    /// answered with a `ProtocolError` frame — code and message attached).
    Protocol(String),
    /// The server refused to localize, with the same typed error the
    /// in-process `try_localize` returns.
    Localize(LocalizeError),
    /// Admission control shed the request on every attempt.
    Overloaded {
        /// The server's last retry hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The request's deadline expired before the server could serve it.
    DeadlineExceeded,
    /// The server is draining and no longer admits requests.
    ShuttingDown,
    /// The server answered with a frame type this call did not expect.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Localize(e) => write!(f, "localize failed: {e}"),
            Self::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms} ms)")
            }
            Self::DeadlineExceeded => write!(f, "deadline exceeded"),
            Self::ShuttingDown => write!(f, "server shutting down"),
            Self::Unexpected(what) => write!(f, "unexpected response frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ReadError> for ClientError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(e) => Self::Io(e),
            ReadError::Decode(e) => Self::Protocol(e.to_string()),
        }
    }
}

/// The server's topology as received over the wire (protocol v5): the
/// current epoch number, the canonical `at-config` fingerprint of its
/// system config, and the live AP poses in deployment-id order.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteTopology {
    /// Topology epoch (0 = the config the server started with).
    pub epoch: u64,
    /// Canonical fingerprint of the epoch's system config.
    pub fingerprint: u64,
    /// AP poses, indexed by the wire protocol's `ap_id`.
    pub poses: Vec<at_core::synthesis::ApPose>,
}

/// A location fix as received over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteFix {
    /// Estimated client position.
    pub position: Point,
    /// Likelihood at the estimate (comparable within one query only).
    pub likelihood: f64,
    /// Health of every AP the session cited, as the fusion saw it.
    pub health: Vec<ApHealthReport>,
}

impl RemoteFix {
    /// The fix as an in-process [`LocationEstimate`] (for bit-exact
    /// comparison against `ArrayTrackServer::try_localize`).
    pub fn estimate(&self) -> LocationEstimate {
        LocationEstimate {
            position: self.position,
            likelihood: self.likelihood,
        }
    }
}

/// A blocking connection to a location server.
pub struct Client {
    stream: TcpStream,
    cfg: ClientConfig,
    /// Resolved peer addresses, kept for in-place reconnects (the
    /// compressed-uplink raw fallback re-dials after an old server hangs
    /// up on a frame it does not speak).
    addrs: Vec<SocketAddr>,
}

impl Client {
    /// Connects to `addr`, retrying up to `cfg.max_attempts` times with
    /// `cfg.backoff` between attempts.
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        Self::connect_resolved(addrs, cfg)
    }

    fn connect_resolved(addrs: Vec<SocketAddr>, cfg: ClientConfig) -> Result<Self, ClientError> {
        assert!(cfg.max_attempts >= 1, "need at least one attempt");
        if addrs.is_empty() {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )));
        }
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..cfg.max_attempts {
            if attempt > 0 {
                thread::sleep(cfg.backoff);
            }
            for a in &addrs {
                match TcpStream::connect_timeout(a, cfg.connect_timeout) {
                    Ok(stream) => {
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(cfg.io_timeout)?;
                        stream.set_write_timeout(cfg.io_timeout)?;
                        return Ok(Self { stream, cfg, addrs });
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        Err(ClientError::Io(last_err.expect("at least one attempt ran")))
    }

    /// Drops the current connection and dials the same peer again with
    /// the same retry policy.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let fresh = Self::connect_resolved(self.addrs.clone(), self.cfg)?;
        *self = fresh;
        Ok(())
    }

    /// One request-response exchange.
    fn request(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        proto::write_frame(&mut self.stream, frame)?;
        match proto::read_frame(&mut self.stream)? {
            Some(reply) => Ok(reply),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Interprets replies every call can receive; `Ok` passes the frame
    /// through for call-specific handling.
    fn common(reply: Frame) -> Result<Frame, ClientError> {
        match reply {
            Frame::ProtocolError { code, message } => Err(ClientError::Protocol(format!(
                "server code {code}: {message}"
            ))),
            Frame::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Ok(other),
        }
    }

    /// Submits a spectrum from deployment AP `ap_id`, `age` refresh
    /// intervals old, into this connection's session. Returns the
    /// session's observation count.
    pub fn submit(
        &mut self,
        ap_id: u32,
        age: u64,
        spectrum: &at_core::AoaSpectrum,
    ) -> Result<u32, ClientError> {
        let reply = self.request(&Frame::SubmitSpectrum {
            ap_id,
            age,
            spectrum: spectrum.clone(),
        })?;
        match Self::common(reply)? {
            Frame::SubmitAck { observations } => Ok(observations),
            _ => Err(ClientError::Unexpected("wanted SubmitAck")),
        }
    }

    /// Submits a spectrum compressed with `mode` into this connection's
    /// session (protocol v3). No fallback machinery — the policy-driven
    /// path with automatic raw fallback is [`ApClient::submit`].
    pub fn submit_compressed(
        &mut self,
        ap_id: u32,
        age: u64,
        mode: crate::codec::CompressedMode,
        spectrum: &at_core::AoaSpectrum,
    ) -> Result<u32, ClientError> {
        let reply = self.request(&Frame::SubmitCompressed {
            ap_id,
            age,
            mode,
            spectrum: spectrum.clone(),
        })?;
        match Self::common(reply)? {
            Frame::SubmitAck { observations } => Ok(observations),
            _ => Err(ClientError::Unexpected("wanted SubmitAck")),
        }
    }

    /// Reports a failed spectrum acquisition from AP `ap_id` (drives the
    /// server-side health tracker).
    pub fn report_failure(&mut self, ap_id: u32) -> Result<(), ClientError> {
        let reply = self.request(&Frame::ReportFailure { ap_id })?;
        match Self::common(reply)? {
            Frame::SubmitAck { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted SubmitAck")),
        }
    }

    /// Drops this connection's accumulated spectra (server-side health
    /// state survives, as with the in-process server's `clear`).
    pub fn clear(&mut self) -> Result<(), ClientError> {
        let reply = self.request(&Frame::ClearSession)?;
        match Self::common(reply)? {
            Frame::SubmitAck { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted SubmitAck")),
        }
    }

    /// Liveness probe: round-trips `token` through the server without
    /// touching the localize queues.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        let reply = self.request(&Frame::Ping { token })?;
        match Self::common(reply)? {
            Frame::Pong { token: echoed } if echoed == token => Ok(()),
            Frame::Pong { .. } => Err(ClientError::Unexpected("pong with a foreign token")),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Scrapes the server's live metrics (protocol v4): one
    /// snapshot-consistent `at_obs` registry rendering in Prometheus text
    /// form. Read-only and role-neutral, so ops tooling can ride any
    /// existing connection.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.request(&Frame::MetricsQuery)?;
        match Self::common(reply)? {
            Frame::MetricsReport { text } => Ok(text),
            _ => Err(ClientError::Unexpected("wanted MetricsReport")),
        }
    }

    /// Asks the server for its current topology epoch (protocol v5).
    /// Read-only and role-neutral, like [`Client::metrics`].
    pub fn topology(&mut self) -> Result<RemoteTopology, ClientError> {
        let reply = self.request(&Frame::TopologyQuery)?;
        match Self::common(reply)? {
            Frame::TopologyInfo {
                epoch,
                fingerprint,
                poses,
            } => Ok(RemoteTopology {
                epoch,
                fingerprint,
                poses,
            }),
            _ => Err(ClientError::Unexpected("wanted TopologyInfo")),
        }
    }

    /// Applies one topology operation on the live server (protocol v5):
    /// add, remove, or move an AP. The server drains in-flight requests
    /// onto the old epoch, swaps, and answers with the new topology; an
    /// invalid op is refused with a `ProtocolError` (`BAD_CONFIG`) and
    /// the epoch is unchanged.
    pub fn reconfigure(
        &mut self,
        op: &at_config::TopologyOp,
    ) -> Result<RemoteTopology, ClientError> {
        let reply = self.request(&Frame::Reconfigure { op: *op })?;
        match Self::common(reply)? {
            Frame::TopologyInfo {
                epoch,
                fingerprint,
                poses,
            } => Ok(RemoteTopology {
                epoch,
                fingerprint,
                poses,
            }),
            _ => Err(ClientError::Unexpected("wanted TopologyInfo")),
        }
    }

    /// Localizes this session's spectra. `deadline` is the time budget the
    /// server may spend (`None` = unbounded). `Overloaded` replies are
    /// retried up to `max_attempts` total tries, sleeping the longer of
    /// the configured backoff and the server's hint between tries.
    pub fn localize(&mut self, deadline: Option<Duration>) -> Result<RemoteFix, ClientError> {
        let deadline_ms = deadline_to_ms(deadline);
        self.localize_exchange(&Frame::Localize { deadline_ms })
    }

    /// Sends a localize-shaped `frame` and interprets the reply, retrying
    /// `Overloaded` answers up to `max_attempts` total tries (sleeping the
    /// longer of the configured backoff and the server's hint). Shared by
    /// the legacy in-session [`Client::localize`] and the keyed
    /// [`AppClient::localize`].
    fn localize_exchange(&mut self, frame: &Frame) -> Result<RemoteFix, ClientError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let reply = self.request(frame)?;
            match Self::common(reply)? {
                Frame::Fix {
                    x,
                    y,
                    likelihood,
                    health,
                } => {
                    return Ok(RemoteFix {
                        position: Point { x, y },
                        likelihood,
                        health,
                    })
                }
                Frame::Failed { error } => return Err(ClientError::Localize(error)),
                Frame::DeadlineExceeded => return Err(ClientError::DeadlineExceeded),
                Frame::Overloaded { retry_after_ms } => {
                    if attempt >= self.cfg.max_attempts {
                        return Err(ClientError::Overloaded { retry_after_ms });
                    }
                    let hint = Duration::from_millis(u64::from(retry_after_ms));
                    thread::sleep(self.cfg.backoff.max(hint));
                }
                _ => return Err(ClientError::Unexpected("wanted Fix or Failed")),
            }
        }
    }
}

fn deadline_to_ms(deadline: Option<Duration>) -> u32 {
    deadline.map_or(0, |d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX))
}

/// The ingestion role: a long-lived AP-process connection streaming keyed
/// spectra into the server's session store.
///
/// One `ApClient` is one AP process from the paper's Figure 1 deployment:
/// it connects once and then streams `SubmitKeyed` frames for every client
/// key it observes. The first keyed frame types the connection as an
/// ingestion peer server-side; issuing queries from it is a role violation
/// the server rejects (use [`AppClient`] for those).
///
/// The `encoding` policy picks the uplink wire form:
/// [`Encoding::Raw`] sends v2 `SubmitKeyed` frames (every server),
/// [`Encoding::Quantized`] / [`Encoding::LosslessDelta`] send v3
/// `SubmitCompressedKeyed` frames (~10× / ~1.5× smaller). A pre-v3
/// server answers the first compressed frame with a `ProtocolError` and
/// hangs up — the client detects that, reconnects, downgrades itself to
/// raw, and resubmits, so a fleet rollout never needs the APs and the
/// server upgraded in lockstep.
pub struct ApClient {
    inner: Client,
    encoding: Encoding,
}

impl ApClient {
    /// Connects an ingestion session (same retry policy as
    /// [`Client::connect`]) streaming raw spectra — the
    /// every-server-compatible default.
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, ClientError> {
        Self::connect_with(addr, cfg, Encoding::Raw)
    }

    /// Connects an ingestion session with an explicit uplink encoding
    /// policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
        encoding: Encoding,
    ) -> Result<Self, ClientError> {
        Ok(Self {
            inner: Client::connect(addr, cfg)?,
            encoding,
        })
    }

    /// The uplink encoding currently in effect (observably downgraded to
    /// [`Encoding::Raw`] after a fallback against an old server).
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Changes the uplink encoding for subsequent submissions.
    pub fn set_encoding(&mut self, encoding: Encoding) {
        self.encoding = encoding;
    }

    /// True when the error pattern-matches "the server does not speak
    /// this frame": a `ProtocolError` reply (a courteous old server
    /// reports the undecodable version before closing) or a hangup
    /// mid-exchange (a terse one just closes).
    fn version_rejection(e: &ClientError) -> bool {
        match e {
            ClientError::Protocol(_) => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            ),
            _ => false,
        }
    }

    /// Streams one spectrum from deployment AP `ap_id` for client `key`,
    /// `age` refresh intervals old, compressed per the client's
    /// `encoding` policy. Returns the key's resident spectrum count after
    /// the store update.
    ///
    /// With a compressed policy against a pre-v3 server, the first
    /// submission triggers the raw fallback: reconnect, downgrade the
    /// policy to [`Encoding::Raw`], resubmit the same spectrum losslessly.
    pub fn submit(
        &mut self,
        key: ClientKey,
        ap_id: u32,
        age: u64,
        spectrum: &at_core::AoaSpectrum,
    ) -> Result<u32, ClientError> {
        if let Some(mode) = self.encoding.mode() {
            let frame = Frame::SubmitCompressedKeyed {
                key,
                ap_id,
                age,
                mode,
                spectrum: spectrum.clone(),
            };
            match self.submit_frame(&frame) {
                Err(e) if Self::version_rejection(&e) => {
                    // The server dropped the connection with the refusal;
                    // dial again and fall back to the raw wire form.
                    self.inner.reconnect()?;
                    self.encoding = Encoding::Raw;
                }
                other => return other,
            }
        }
        self.submit_frame(&Frame::SubmitKeyed {
            key,
            ap_id,
            age,
            spectrum: spectrum.clone(),
        })
    }

    fn submit_frame(&mut self, frame: &Frame) -> Result<u32, ClientError> {
        let reply = self.inner.request(frame)?;
        match Client::common(reply)? {
            Frame::SubmitAck { observations } => Ok(observations),
            _ => Err(ClientError::Unexpected("wanted SubmitAck")),
        }
    }

    /// Reports a failed acquisition from AP `ap_id` (drives the shared
    /// server-side health tracker, exactly like [`Client::report_failure`]).
    pub fn report_failure(&mut self, ap_id: u32) -> Result<(), ClientError> {
        self.inner.report_failure(ap_id)
    }

    /// Liveness probe (role-neutral).
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.inner.ping(token)
    }

    /// Scrapes the server's live metrics (role-neutral, protocol v4).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.inner.metrics()
    }

    /// Asks the server for its current topology (role-neutral, v5).
    pub fn topology(&mut self) -> Result<RemoteTopology, ClientError> {
        self.inner.topology()
    }
}

/// The query role: an application connection asking "where is key K?"
///
/// An `AppClient` never submits spectra; it fuses whatever the server's
/// session store currently holds for a key. The first `LocalizeKey` frame
/// types the connection as a query peer server-side; submitting keyed
/// spectra from it is a role violation the server rejects (use
/// [`ApClient`] for ingestion).
pub struct AppClient {
    inner: Client,
}

impl AppClient {
    /// Connects a query session (same retry policy as [`Client::connect`]).
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, ClientError> {
        Ok(Self {
            inner: Client::connect(addr, cfg)?,
        })
    }

    /// Localizes whatever spectra the store holds for `key`, with the
    /// same deadline semantics and `Overloaded` retry discipline as
    /// [`Client::localize`].
    pub fn localize(
        &mut self,
        key: ClientKey,
        deadline: Option<Duration>,
    ) -> Result<RemoteFix, ClientError> {
        let deadline_ms = deadline_to_ms(deadline);
        self.inner
            .localize_exchange(&Frame::LocalizeKey { key, deadline_ms })
    }

    /// Liveness probe (role-neutral).
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.inner.ping(token)
    }

    /// Scrapes the server's live metrics (role-neutral, protocol v4).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.inner.metrics()
    }

    /// Asks the server for its current topology (role-neutral, v5).
    pub fn topology(&mut self) -> Result<RemoteTopology, ClientError> {
        self.inner.topology()
    }

    /// Applies one topology operation on the live server (role-neutral,
    /// v5); see [`Client::reconfigure`].
    pub fn reconfigure(
        &mut self,
        op: &at_config::TopologyOp,
    ) -> Result<RemoteTopology, ClientError> {
        self.inner.reconfigure(op)
    }
}
