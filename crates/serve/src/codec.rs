//! `SpectrumCodec`: the wire-level spectrum compression behind protocol
//! v3's `SubmitCompressed` frames.
//!
//! A 720-bin spectrum costs 5.7 KB as raw `f64` bins — the dominant AP
//! uplink cost once six AP processes fan into one server. Pseudospectra
//! are smooth in the log domain and flat across their noise floor, so two
//! compressed representations cover the deployment spectrum:
//!
//! - **Quantized** ([`CompressedMode::Quantized`], lossy): each bin maps
//!   to a 16-bit code on a log-domain grid spanning [`DYNAMIC_RANGE_NATS`]
//!   below the spectrum's peak (code 0 is reserved for zero / below-floor
//!   bins). Codes are delta-encoded bin to bin, zigzag-mapped, and written
//!   as LEB128 varints; a zero delta is followed by a varint run length,
//!   so the flat noise floor of a lobe spectrum collapses to a few bytes.
//!   The grid step is `DYNAMIC_RANGE_NATS / 65534` ≈ 4.2e-4 nats, i.e. a
//!   worst-case relative error of ~2.1e-4 per bin — far below anything
//!   the localization engine can resolve (the loadgen gate holds p50 fix
//!   displacement under 1 mm).
//! - **Lossless** ([`CompressedMode::Lossless`], bit-exact): consecutive
//!   bins' `f64` bit patterns are XORed (adjacent bins share sign,
//!   exponent, and high mantissa bits, so the XOR is small) and written as
//!   varints with the same zero-run tail. Decoding reproduces every bin
//!   `to_bits`-identically — the replay/parity mode.
//!
//! Both decoders are **total**: any byte slice yields either a spectrum
//! that already satisfies the [`AoaSpectrum`] invariants (finite,
//! non-negative, ≥ 8 bins) or a typed [`CodecError`] — never a panic,
//! never an allocation beyond the declared (and capped) bin count. The
//! `codec_proptests` suite fuzzes this over arbitrary byte strings.
//!
//! Quantization is **idempotent**: compressing an already-dequantized
//! spectrum reproduces the same codes (the peak bin always maps to the
//! top code, so the stored peak value is exact), which is what lets a
//! decoded [`crate::proto::Frame::SubmitCompressed`] re-encode to the
//! same bytes.

use crate::proto::MAX_BINS;
use at_core::AoaSpectrum;
use std::fmt;

/// Log-domain span of the quantizer grid, in nats: bins more than this
/// far below the spectrum peak collapse to code 0 (decoded as exactly
/// zero). ln(1e12) — twelve decades, comfortably beyond the dynamic range
/// a MUSIC pseudospectrum carries meaningful shape in.
pub const DYNAMIC_RANGE_NATS: f64 = 27.631021115928547; // ln(1e12)

/// Number of non-zero quantizer codes (codes `1..=QMAX` span the grid;
/// code 0 is the below-floor sentinel).
const QMAX: u32 = 65_535;

/// Grid step in nats.
const STEP_NATS: f64 = DYNAMIC_RANGE_NATS / (QMAX - 1) as f64;

/// Worst-case relative error of one quantize→dequantize trip for a bin
/// within the representable range: half a grid step in the log domain.
/// (`codec_proptests` asserts the bound across the full dynamic range.)
pub const MAX_RELATIVE_ERROR: f64 = 2.2e-4; // exp(STEP_NATS / 2) - 1, padded

/// Wire byte identifying the quantized payload layout.
const MODE_QUANTIZED: u8 = 1;
/// Wire byte identifying the lossless payload layout.
const MODE_LOSSLESS: u8 = 2;

/// How an [`crate::client::ApClient`] puts spectra on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Raw `f64` bins in a legacy (v1/v2) submit frame. Interoperates
    /// with every server.
    Raw,
    /// 16-bit log-domain quantized (lossy, ~2e-4 relative error,
    /// typically ≥8× smaller). Requires a v3 server.
    Quantized,
    /// XOR-delta compressed `f64` bits (bit-exact, modest savings).
    /// Requires a v3 server.
    LosslessDelta,
}

impl Encoding {
    /// The compressed-frame mode this policy maps to; `None` for raw.
    pub fn mode(self) -> Option<CompressedMode> {
        match self {
            Encoding::Raw => None,
            Encoding::Quantized => Some(CompressedMode::Quantized),
            Encoding::LosslessDelta => Some(CompressedMode::Lossless),
        }
    }

    /// Metric label value (`encoding` label on the uplink counters).
    pub fn label(self) -> &'static str {
        match self {
            Encoding::Raw => "raw",
            Encoding::Quantized => "quantized",
            Encoding::LosslessDelta => "lossless",
        }
    }
}

/// Payload layout of one compressed spectrum blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressedMode {
    /// Delta-encoded 16-bit log-domain codes with a varint/run-length
    /// tail (lossy).
    Quantized,
    /// XOR-delta `f64` bit patterns with the same varint/run-length tail
    /// (bit-exact).
    Lossless,
}

impl CompressedMode {
    fn wire_byte(self) -> u8 {
        match self {
            CompressedMode::Quantized => MODE_QUANTIZED,
            CompressedMode::Lossless => MODE_LOSSLESS,
        }
    }

    /// The client policy that produces this mode.
    pub fn encoding(self) -> Encoding {
        match self {
            CompressedMode::Quantized => Encoding::Quantized,
            CompressedMode::Lossless => Encoding::LosslessDelta,
        }
    }
}

/// Why a byte slice is not a valid compressed spectrum. Every variant
/// carries a static reason so the framing layer can surface it as a
/// [`crate::proto::DecodeError::Malformed`] without allocating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The blob ended before the declared structure did.
    Truncated(&'static str),
    /// The mode byte names no known layout.
    UnknownMode(u8),
    /// The declared bin count is outside `8..=MAX_BINS`.
    BinCountOutOfRange(usize),
    /// The bytes parse but violate an invariant (overlong varint, code
    /// out of range, run past the bin count, non-finite or negative
    /// reconstruction, trailing bytes).
    Corrupt(&'static str),
}

impl CodecError {
    /// Static human-readable reason (also the `Malformed` reason at the
    /// framing layer).
    pub fn reason(self) -> &'static str {
        match self {
            CodecError::Truncated(r) | CodecError::Corrupt(r) => r,
            CodecError::UnknownMode(_) => "unknown codec mode byte",
            CodecError::BinCountOutOfRange(_) => "compressed bin count out of range",
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(r) => write!(f, "truncated compressed spectrum: {r}"),
            CodecError::UnknownMode(b) => write!(f, "unknown codec mode byte 0x{b:02x}"),
            CodecError::BinCountOutOfRange(n) => {
                write!(f, "compressed bin count {n} outside 8..={MAX_BINS}")
            }
            CodecError::Corrupt(r) => write!(f, "corrupt compressed spectrum: {r}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// varint primitives (LEB128, little-endian 7-bit groups)
// ---------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one varint; rejects overlong encodings past 10 bytes and
/// payloads that overflow 64 bits.
fn read_varint(b: &[u8], i: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = b.get(*i) else {
            return Err(CodecError::Truncated("varint ran off the blob"));
        };
        *i += 1;
        let group = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(CodecError::Corrupt("varint overflows 64 bits"));
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

// ---------------------------------------------------------------------
// quantizer
// ---------------------------------------------------------------------

/// Maps one bin value to its 16-bit code, given the spectrum peak.
fn quantize_bin(v: f64, vmax: f64) -> u32 {
    if v <= 0.0 || vmax <= 0.0 {
        return 0;
    }
    let r = (v / vmax).ln(); // ≤ 0 for v ≤ vmax
    if r <= -DYNAMIC_RANGE_NATS {
        return 0;
    }
    // r ∈ (-D, 0] maps onto codes 1..=QMAX; the peak (r = 0) always
    // lands on QMAX exactly, which is what makes requantization
    // idempotent (the stored peak is exact).
    let code = 1 + ((r + DYNAMIC_RANGE_NATS) / STEP_NATS).round() as i64;
    code.clamp(1, i64::from(QMAX)) as u32
}

/// Maps one code back to its bin value.
fn dequantize_bin(code: u32, vmax: f64) -> f64 {
    if code == 0 {
        return 0.0;
    }
    vmax * ((code - 1) as f64 * STEP_NATS - DYNAMIC_RANGE_NATS).exp()
}

/// The spectrum as the quantized wire path delivers it: every bin snapped
/// to the 16-bit log-domain grid. `compress`-then-`decompress` in
/// [`CompressedMode::Quantized`] equals this exactly, so it is the
/// reference for accuracy comparisons without any sockets involved.
pub fn quantized(spectrum: &AoaSpectrum) -> AoaSpectrum {
    let vmax = spectrum.max_value();
    AoaSpectrum::from_values(
        spectrum
            .values()
            .iter()
            .map(|&v| dequantize_bin(quantize_bin(v, vmax), vmax))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// compress
// ---------------------------------------------------------------------

/// Appends the compressed blob for `spectrum` to `out`.
///
/// Blob layout (all little-endian):
///
/// ```text
/// mode: u8          1 = quantized, 2 = lossless
/// bins: u32
/// quantized:  vmax: f64 bits, then per bin: varint(zigzag(Δcode));
///             a zero delta is followed by varint(extra repeats)
/// lossless:   first bin: f64 bits, then per bin: varint(bits ⊕ prev);
///             a zero XOR is followed by varint(extra repeats)
/// ```
pub fn compress_into(out: &mut Vec<u8>, spectrum: &AoaSpectrum, mode: CompressedMode) {
    out.push(mode.wire_byte());
    out.extend_from_slice(&(spectrum.bins() as u32).to_le_bytes());
    match mode {
        CompressedMode::Quantized => {
            let vmax = spectrum.max_value();
            out.extend_from_slice(&vmax.to_bits().to_le_bytes());
            let mut prev: i64 = 0;
            let values = spectrum.values();
            let mut i = 0;
            while i < values.len() {
                let code = i64::from(quantize_bin(values[i], vmax));
                push_varint(out, zigzag(code - prev));
                if code == prev {
                    // Run-length the flat stretch (noise floors, zeroed
                    // tails): count bins repeating this exact code.
                    let mut run = 0u64;
                    while i + 1 < values.len()
                        && i64::from(quantize_bin(values[i + 1], vmax)) == code
                    {
                        run += 1;
                        i += 1;
                    }
                    push_varint(out, run);
                }
                prev = code;
                i += 1;
            }
        }
        CompressedMode::Lossless => {
            let values = spectrum.values();
            out.extend_from_slice(&values[0].to_bits().to_le_bytes());
            let mut prev = values[0].to_bits();
            let mut i = 1;
            while i < values.len() {
                let bits = values[i].to_bits();
                push_varint(out, bits ^ prev);
                if bits == prev {
                    let mut run = 0u64;
                    while i + 1 < values.len() && values[i + 1].to_bits() == bits {
                        run += 1;
                        i += 1;
                    }
                    push_varint(out, run);
                }
                prev = bits;
                i += 1;
            }
        }
    }
}

/// The compressed blob as a fresh buffer.
pub fn compress(spectrum: &AoaSpectrum, mode: CompressedMode) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(&mut out, spectrum, mode);
    out
}

/// Raw wire cost of the same spectrum in a legacy `f64` submit payload
/// (`u32` bin count + 8 bytes per bin) — the denominator of the
/// compression-ratio gauge.
pub fn raw_wire_bytes(bins: usize) -> u64 {
    4 + 8 * bins as u64
}

// ---------------------------------------------------------------------
// decompress
// ---------------------------------------------------------------------

/// Decodes a compressed blob back into a validated [`AoaSpectrum`].
///
/// Total: any byte slice returns either a spectrum satisfying the
/// `AoaSpectrum` invariants or a typed [`CodecError`] — never a panic.
/// The whole slice must be consumed (trailing bytes are
/// [`CodecError::Corrupt`], so a frame's declared payload length stays
/// authoritative).
pub fn decompress(blob: &[u8]) -> Result<(CompressedMode, AoaSpectrum), CodecError> {
    let mut i = 0usize;
    let Some(&mode_byte) = blob.first() else {
        return Err(CodecError::Truncated("empty blob"));
    };
    i += 1;
    let mode = match mode_byte {
        MODE_QUANTIZED => CompressedMode::Quantized,
        MODE_LOSSLESS => CompressedMode::Lossless,
        other => return Err(CodecError::UnknownMode(other)),
    };
    let bins = {
        let Some(raw) = blob.get(i..i + 4) else {
            return Err(CodecError::Truncated("bin count"));
        };
        i += 4;
        u32::from_le_bytes(raw.try_into().expect("4-byte slice")) as usize
    };
    if !(8..=MAX_BINS).contains(&bins) {
        return Err(CodecError::BinCountOutOfRange(bins));
    }
    let mut values = Vec::with_capacity(bins);
    match mode {
        CompressedMode::Quantized => {
            let Some(raw) = blob.get(i..i + 8) else {
                return Err(CodecError::Truncated("peak value"));
            };
            i += 8;
            let vmax = f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8-byte slice")));
            if !vmax.is_finite() || vmax < 0.0 {
                return Err(CodecError::Corrupt("peak must be finite and non-negative"));
            }
            let mut prev: i64 = 0;
            while values.len() < bins {
                let z = read_varint(blob, &mut i)?;
                let code = prev + unzigzag(z);
                if !(0..=i64::from(QMAX)).contains(&code) {
                    return Err(CodecError::Corrupt("quantizer code out of range"));
                }
                values.push(dequantize_bin(code as u32, vmax));
                if code == prev {
                    let run = read_varint(blob, &mut i)?;
                    if run > (bins - values.len()) as u64 {
                        return Err(CodecError::Corrupt("run length past the bin count"));
                    }
                    let v = dequantize_bin(code as u32, vmax);
                    for _ in 0..run {
                        values.push(v);
                    }
                }
                prev = code;
            }
        }
        CompressedMode::Lossless => {
            let Some(raw) = blob.get(i..i + 8) else {
                return Err(CodecError::Truncated("first bin"));
            };
            i += 8;
            let mut prev = u64::from_le_bytes(raw.try_into().expect("8-byte slice"));
            push_checked(&mut values, prev)?;
            while values.len() < bins {
                let x = read_varint(blob, &mut i)?;
                let bits = prev ^ x;
                push_checked(&mut values, bits)?;
                if x == 0 {
                    let run = read_varint(blob, &mut i)?;
                    if run > (bins - values.len()) as u64 {
                        return Err(CodecError::Corrupt("run length past the bin count"));
                    }
                    let v = f64::from_bits(bits);
                    for _ in 0..run {
                        values.push(v);
                    }
                }
                prev = bits;
            }
        }
    }
    if i != blob.len() {
        return Err(CodecError::Corrupt("trailing bytes after the last bin"));
    }
    Ok((mode, AoaSpectrum::from_values(values)))
}

/// Pushes a reconstructed bit pattern, enforcing the spectrum invariants
/// before `AoaSpectrum::from_values` could assert on them.
fn push_checked(values: &mut Vec<f64>, bits: u64) -> Result<(), CodecError> {
    let v = f64::from_bits(bits);
    if !v.is_finite() || v < 0.0 {
        return Err(CodecError::Corrupt(
            "reconstructed bin is not finite and non-negative",
        ));
    }
    values.push(v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The loadgen workload's spectrum shape: one clean lobe over a flat
    /// floor, 720 bins.
    fn lobe(bins: usize, bearing: f64) -> AoaSpectrum {
        AoaSpectrum::from_fn(bins, |t| {
            let d = at_channel::geometry::angle_diff(t, bearing);
            (-(d / 0.22).powi(2)).exp() + 0.01
        })
    }

    /// A noisy pseudospectrum: deterministic scrambled bins over ten
    /// decades.
    fn noisy(bins: usize, seed: u64) -> AoaSpectrum {
        let mut state = seed | 1;
        AoaSpectrum::from_values(
            (0..bins)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                    10f64.powf(u * 10.0 - 5.0)
                })
                .collect(),
        )
    }

    #[test]
    fn lossless_roundtrip_is_bit_exact() {
        for s in [lobe(720, 1.3), noisy(720, 7), noisy(8, 9), lobe(64, 0.0)] {
            let blob = compress(&s, CompressedMode::Lossless);
            let (mode, back) = decompress(&blob).expect("own blob decodes");
            assert_eq!(mode, CompressedMode::Lossless);
            assert_eq!(back.bins(), s.bins());
            for (a, b) in back.values().iter().zip(s.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn quantized_roundtrip_matches_the_quantized_reference() {
        for s in [lobe(720, 2.1), noisy(720, 42)] {
            let blob = compress(&s, CompressedMode::Quantized);
            let (mode, back) = decompress(&blob).expect("own blob decodes");
            assert_eq!(mode, CompressedMode::Quantized);
            let reference = quantized(&s);
            for (a, b) in back.values().iter().zip(reference.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn quantization_is_idempotent() {
        // Re-compressing the dequantized spectrum reproduces the exact
        // blob: the property that lets a decoded compressed frame
        // re-encode byte-identically.
        for s in [lobe(720, 0.7), noisy(720, 3)] {
            let blob = compress(&s, CompressedMode::Quantized);
            let (_, back) = decompress(&blob).expect("decodes");
            assert_eq!(compress(&back, CompressedMode::Quantized), blob);
        }
    }

    #[test]
    fn quantizer_error_is_bounded() {
        let s = noisy(720, 11);
        let q = quantized(&s);
        let vmax = s.max_value();
        for (&orig, &deq) in s.values().iter().zip(q.values()) {
            if orig >= vmax * 1e-11 {
                let rel = (deq - orig).abs() / orig;
                assert!(rel <= MAX_RELATIVE_ERROR, "rel err {rel:e} at {orig:e}");
            } else {
                assert!((deq - orig).abs() <= vmax * 1e-11);
            }
        }
    }

    #[test]
    fn lobe_spectrum_compresses_at_least_8x() {
        let s = lobe(720, 4.0);
        let blob = compress(&s, CompressedMode::Quantized);
        let raw = raw_wire_bytes(s.bins());
        let ratio = raw as f64 / blob.len() as f64;
        assert!(
            ratio >= 8.0,
            "quantized lobe ratio {ratio:.1}x ({} of {raw} bytes)",
            blob.len()
        );
    }

    #[test]
    fn all_zero_and_flat_spectra_work() {
        let zero = AoaSpectrum::from_values(vec![0.0; 720]);
        let flat = AoaSpectrum::from_values(vec![3.5; 720]);
        for s in [&zero, &flat] {
            for mode in [CompressedMode::Quantized, CompressedMode::Lossless] {
                let blob = compress(s, mode);
                // A constant spectrum is one token plus a run: tiny.
                assert!(blob.len() < 64, "flat blob is {} bytes", blob.len());
                let (_, back) = decompress(&blob).expect("decodes");
                for (a, b) in back.values().iter().zip(s.values()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn hostile_blobs_fail_typed() {
        assert_eq!(decompress(&[]), Err(CodecError::Truncated("empty blob")));
        assert_eq!(decompress(&[9]), Err(CodecError::UnknownMode(9)));
        // Bin count of 4 is under the spectrum minimum.
        let mut b = vec![MODE_LOSSLESS];
        b.extend_from_slice(&4u32.to_le_bytes());
        assert_eq!(decompress(&b), Err(CodecError::BinCountOutOfRange(4)));
        // Negative first bin violates the spectrum invariant.
        let mut b = vec![MODE_LOSSLESS];
        b.extend_from_slice(&8u32.to_le_bytes());
        b.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(matches!(decompress(&b), Err(CodecError::Corrupt(_))));
        // NaN peak is rejected before any bin decodes.
        let mut b = vec![MODE_QUANTIZED];
        b.extend_from_slice(&8u32.to_le_bytes());
        b.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(decompress(&b), Err(CodecError::Corrupt(_))));
        // Trailing bytes after a complete spectrum are corrupt.
        let mut blob = compress(&lobe(64, 1.0), CompressedMode::Quantized);
        blob.push(0);
        assert_eq!(
            decompress(&blob),
            Err(CodecError::Corrupt("trailing bytes after the last bin"))
        );
    }

    #[test]
    fn truncated_blobs_fail_typed() {
        let blob = compress(&lobe(720, 1.0), CompressedMode::Quantized);
        for cut in 0..blob.len() {
            match decompress(&blob[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("decoded a spectrum from a {cut}-byte prefix"),
            }
        }
    }
}
