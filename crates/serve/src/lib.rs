//! # at-serve — the networked location service
//!
//! ArrayTrack is designed as a *service*: many APs stream processed AoA
//! spectra into a central server, many clients ask it "where am I?" (§1;
//! the §4.4 latency budget is an end-to-end service number). This crate is
//! that network boundary, built entirely on `std::net` + threads:
//!
//! - [`proto`] — a versioned, length-prefixed binary wire protocol with a
//!   total decoder: arbitrary bytes yield a frame, a "need more" signal,
//!   or a typed error, never a panic;
//! - [`codec`] — wire-level spectrum compression (protocol v3): 16-bit
//!   log-domain quantization with a delta/varint/run-length tail for the
//!   AP uplink (~10× smaller), plus a lossless XOR-delta mode for
//!   bit-exact replay; the decompressor is total like the frame decoder;
//! - [`queue`] — bounded closing queues, the backpressure primitive;
//! - [`batch`] — the coalescing window that turns concurrent localize
//!   requests into one shared-engine sweep;
//! - [`server`] — the thread-pool TCP server: admission control that
//!   sheds load with typed `Overloaded` frames instead of queuing
//!   unboundedly, client-propagated deadlines enforced before the
//!   expensive stages, request batching, and drain-then-stop shutdown;
//! - [`client`] — a blocking client with the same bounded-attempts retry
//!   discipline as the testbed's acquisition layer.
//!
//! The server fuses through [`at_core::plan_fusion`] /
//! [`at_core::execute_fusion`] — the exact code path behind the in-process
//! `ArrayTrackServer::try_localize` — so a networked fix is bit-exact with
//! the in-process one and degraded deployments keep their typed
//! `LocalizeError`/health semantics across the wire. Every stage records
//! into `at-obs` (queue-depth gauges, shed and deadline-miss counters,
//! `serve_*` stage histograms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod codec;
pub mod proto;
pub mod queue;
pub mod server;
pub mod store;

pub use batch::{AdaptivePolicy, BatchController, BatchPolicy, BATCH_WINDOW_GAUGE};
pub use client::{
    ApClient, AppClient, Client, ClientConfig, ClientError, RemoteFix, RemoteTopology,
};
pub use codec::{CodecError, CompressedMode, Encoding};
pub use proto::{ApHealthReport, ClientKey, DecodeError, Frame, ReadError};
pub use server::{
    spawn, spawn_recorded, RecordTap, ServeConfig, ServerHandle, ServiceConfig, StatsSnapshot,
};
pub use store::{KeyedObs, SessionPolicy, SessionStore, StoreStats};
